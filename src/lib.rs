//! `xqjg` — a purely relational XQuery processor built around **join graph
//! isolation** (Grust, Mayr, Rittinger; ICDE 2009).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`Processor`] / [`Mode`] — the end-to-end pipeline (parse → normalize →
//!   loop-lifting compilation → join graph isolation → SQL → cost-based
//!   relational execution),
//! * [`xml`] — XML parsing and the pre/size/level infoset encoding,
//! * [`xquery`] — the XQuery front end and reference interpreter,
//! * [`algebra`] / [`compiler`] / [`core`] — the table algebra, the
//!   loop-lifting compiler and the isolation pass,
//! * [`engine`] / [`store`] — the relational back-end (B-trees, optimizer,
//!   executor, index advisor),
//! * [`purexml`] — the navigational baseline,
//! * [`data`] — synthetic XMark-like / DBLP-like document generators.

pub use xqjg_algebra as algebra;
pub use xqjg_compiler as compiler;
pub use xqjg_core as core;
pub use xqjg_data as data;
pub use xqjg_engine as engine;
pub use xqjg_purexml as purexml;
pub use xqjg_store as store;
pub use xqjg_xml as xml;
pub use xqjg_xquery as xquery;

pub use xqjg_core::{Mode, Outcome, Prepared, Processor, QueryError};
pub use xqjg_xml::{DocTable, Pre};
