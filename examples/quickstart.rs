//! Quickstart: load an XML document, run an XQuery through the full
//! relational pipeline, inspect the emitted SQL and the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xqjg::{Mode, Processor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xml = r#"<site>
        <open_auctions>
          <open_auction id="a1"><initial>15</initial>
            <bidder><time>18:43</time><increase>4.20</increase></bidder>
          </open_auction>
          <open_auction id="a2"><initial>20</initial></open_auction>
        </open_auctions>
      </site>"#;

    let mut processor = Processor::new();
    processor.load_document("auction.xml", xml)?;
    processor.create_default_indexes();

    let query = r#"doc("auction.xml")/descendant::open_auction[bidder]"#;

    // Inspect the compilation artifacts.
    let prepared = processor.prepare(query)?;
    println!("=== emitted SQL (join graph isolation) ===");
    for sql in prepared.sql() {
        println!("{sql}\n");
    }

    // Execute in all three modes; they must agree.
    for mode in [Mode::Interpreter, Mode::Stacked, Mode::JoinGraph] {
        let out = processor.execute(query, mode)?;
        println!(
            "{mode:?}: {} result node(s) in {:?}",
            out.items.len(),
            out.elapsed
        );
    }

    let out = processor.execute(query, Mode::JoinGraph)?;
    println!(
        "\n=== serialized result ===\n{}",
        processor.serialize(&out.items)
    );
    Ok(())
}
