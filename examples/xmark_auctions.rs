//! Run the paper's XMark workload (Q1–Q4) against a generated auction
//! instance and compare the stacked and isolated execution strategies.
//!
//! ```text
//! cargo run --release --example xmark_auctions -- [scale]
//! ```

use xqjg::data::{generate_xmark_encoded, XmarkConfig};
use xqjg::{Mode, Processor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("generating XMark-like instance at scale {scale} …");
    let doc = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(scale));
    println!("{} nodes encoded", doc.len());

    let mut processor = Processor::new();
    processor.load_encoded("auction.xml", doc);
    processor.create_default_indexes();

    let queries = [
        (
            "Q1",
            r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
        ),
        (
            "Q2",
            r#"let $a := doc("auction.xml")
               for $ca in $a//closed_auction[price > 500],
                   $i in $a//item,
                   $c in $a//category
               where $ca/itemref/@item = $i/@id
                 and $i/incategory/@category = $c/@id
               return $c/name"#,
        ),
        ("Q3", r#"/site/people/person[@id = "person0"]/name/text()"#),
        ("Q4", "//closed_auction/price/text()"),
    ];

    println!(
        "{:<4} {:>9} {:>12} {:>12} {:>9}",
        "", "# results", "stacked (s)", "isolated (s)", "speed-up"
    );
    for (id, text) in queries {
        let isolated = processor.execute(text, Mode::JoinGraph)?;
        // The stacked plan for Q2 is very slow beyond small scales — skip.
        let stacked_secs = if id == "Q2" && scale > 0.3 {
            None
        } else {
            Some(
                processor
                    .execute(text, Mode::Stacked)?
                    .elapsed
                    .as_secs_f64(),
            )
        };
        let iso_secs = isolated.elapsed.as_secs_f64();
        match stacked_secs {
            Some(s) => println!(
                "{:<4} {:>9} {:>12.4} {:>12.4} {:>8.1}x",
                id,
                isolated.items.len(),
                s,
                iso_secs,
                s / iso_secs.max(1e-9)
            ),
            None => println!(
                "{:<4} {:>9} {:>12} {:>12.4} {:>9}",
                id,
                isolated.items.len(),
                "skipped",
                iso_secs,
                "-"
            ),
        }
    }
    Ok(())
}
