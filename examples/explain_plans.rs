//! Inspect the artifacts the paper's figures show: the stacked plan, the
//! isolated plan, the emitted SQL, the advisor's index proposals, and the
//! execution plan the cost-based optimizer picks (XPath step reordering and
//! axis reversal are visible in the join order).
//!
//! ```text
//! cargo run --release --example explain_plans -- [scale]
//! ```

use xqjg::data::{generate_xmark_encoded, XmarkConfig};
use xqjg::engine::{explain_with_stats, optimize, QueryRequest};
use xqjg::Processor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let doc = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(scale));
    let mut processor = Processor::new();
    processor.load_encoded("auction.xml", doc);

    let query = r#"let $a := doc("auction.xml")
                   for $ca in $a//closed_auction[price > 500],
                       $i in $a//item
                   where $ca/itemref/@item = $i/@id
                   return $i/name"#;

    // Let the index advisor design the physical layout for this workload.
    println!("=== index advisor proposals ===");
    for p in processor.advise_and_deploy(&[query])? {
        println!(
            "{:<10} key=({})  include=({}){}",
            p.name,
            p.key_columns.join(","),
            p.include_columns.join(","),
            if p.clustered { "  [clustered]" } else { "" }
        );
    }

    let prepared = processor.prepare(query)?;
    let branch = &prepared.branches[0];
    println!(
        "\n=== stacked plan ({} operators) ===",
        branch.stacked.size()
    );
    println!("{}", xqjg::algebra::render_text(&branch.stacked));
    println!(
        "=== isolated plan ({} operators) ===",
        branch.isolated_plan.size()
    );
    println!("{}", xqjg::algebra::render_text(&branch.isolated_plan));
    println!("=== emitted SQL ===\n{}\n", branch.isolated.sql());

    println!("=== optimizer execution plan (with operator actuals) ===");
    let db = processor.database();
    let plan = optimize(&branch.isolated.query, db)?;
    // Run the plan through the pipelined executor so the explain output
    // carries the per-operator work counters next to the estimates.
    let stats = QueryRequest::new(&plan, db).expect_run().stats;
    println!("{}", explain_with_stats(&plan, &stats));
    Ok(())
}
