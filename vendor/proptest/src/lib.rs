//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace's property tests use: the [`strategy::Strategy`] trait with
//! `prop_map`/`boxed`, [`strategy::Just`], range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], the [`prop_oneof!`] / [`proptest!`]
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, by design of a shim: generation is a
//! plain deterministic PRNG per test case and failures panic immediately —
//! there is no shrinking. Call sites are source-compatible, so deleting
//! `vendor/proptest` restores the real dependency once the build has
//! network access.

/// Test-case RNG and configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic stream (one per test case), backed by the same
    /// generator as the `rand` shim.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for the `case`-th run of a property (fixed base seed, so
        /// failures reproduce exactly).
        pub fn for_case(case: u32) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(
                    0x5eed_cafe_f00d_0001 ^ ((case as u64) << 32 | case as u64),
                ),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform `usize` in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Per-property configuration (only the case count is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; the shim keeps CI quick.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a clonable, shareable strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `size` and elements drawn
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategy expressions; every arm is boxed, so arms
/// may have different concrete types as long as they generate the same
/// value type. Weighted arms (`w => strat`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (panics on failure — the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Define property tests: each `arg in strategy` binding is drawn fresh per
/// case, and the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_map_compose() {
        let s = prop_oneof![
            (0u32..10).prop_map(|n| format!("n{n}")),
            Just("fixed".to_string()),
        ]
        .boxed();
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == "fixed" || v.starts_with('n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0i64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!((0..5).contains(&x));
            }
        }

        #[test]
        fn tuples_generate_componentwise((n, b) in (0usize..3, prop::bool::ANY)) {
            prop_assert!(n < 3);
            let _ = b;
        }
    }
}
