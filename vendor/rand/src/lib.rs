//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, and [`Rng::gen_bool`].
//!
//! The workspace builds without network access, so the real crate cannot be
//! fetched; this shim keeps the call sites identical so the real dependency
//! can be swapped back in by deleting `vendor/rand` and the `[patch]`-free
//! path entry in the workspace manifest. Generation is deterministic per
//! seed (splitmix64 stream), which is all the synthetic data generators in
//! `xqjg-data` rely on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // `start + frac * span` can round up to exactly `end`; keep the
        // half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64). Not the real `StdRng`
    /// algorithm, but the same API and statistical quality class for the
    /// synthetic-data purposes of this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            let u: usize = rng.gen_range(0..17);
            assert!(u < 17);
            let f = rng.gen_range(1.0..2.0f64);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
