//! Offline stand-in for the subset of the `criterion` 0.5 API the
//! `xqjg-bench` bench targets use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a real (if simple) measurement harness, not a no-op: each
//! benchmark warms up, runs a fixed number of timed samples, and reports
//! the per-iteration median and min/max to stdout. Swap the real crate
//! back in by deleting `vendor/criterion` once the build has network
//! access — no call site changes needed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Time `routine`, auto-calibrating the per-sample iteration count so
    /// one sample takes roughly a millisecond.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: grow the batch until it costs >= 1 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Identifier for a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_count: usize,
    /// `--test` / `cargo test` mode: run each routine once, skip timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_count: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_count: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, self.sample_count, &mut f);
        self
    }

    fn run<F>(&self, id: &str, sample_count: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        // Under `--test`, smoke-run only: a single sample per benchmark.
        let mut bencher = Bencher::new(if self.test_mode { 1 } else { sample_count });
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of related benchmarks sharing a name prefix and sample budget.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n);
        self
    }

    /// Run a benchmark identified by `id` over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        self.criterion
            .run(&full, samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Run an input-less benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        self.criterion.run(&full, samples, &mut f);
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Opaque value barrier, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
