#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_exec.json against the
committed baseline and fail on order-of-magnitude throughput regressions.

Usage:
    python3 scripts/bench_gate.py COMMITTED.json FRESH.json [--tolerance 10]

The tolerance is deliberately generous: the committed baseline was measured
on some developer machine at some scale, the fresh run happens on a CI
runner (usually at a smaller scale), so only catastrophic slowdowns — like
the Q2 cost-model misranking this gate exists to guard (a ~680x cliff) —
should trip it.  Per-query `pipelined_rows_per_sec` is the compared figure;
a fresh throughput below `committed / tolerance` fails the gate.

The gate also checks typed-kernel engagement: when both measurements ran
with `typed_kernels` enabled and the committed baseline engaged the
kernels on a query (`kernel_rows > 0`), the fresh run must engage them
too — kernel-row *counts* vary with scale, but engagement silently
dropping to zero means a compile-time lowering regressed.
"""

import argparse
import json
import sys


def throughputs(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for q in doc.get("queries", []):
        out[q["id"]] = {
            "rows_per_sec": float(q["pipelined_rows_per_sec"]),
            "rows": int(q.get("rows", 0)),
            "scale": doc.get("scale"),
            # Older baselines predate the counter: treat absence as 0.
            "kernel_rows": int(q.get("kernel_rows", 0)),
            "typed_kernels": bool(doc.get("typed_kernels", False)),
        }
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("committed", help="baseline BENCH_exec.json (committed)")
    ap.add_argument("fresh", help="freshly measured BENCH_exec.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="allowed slowdown factor before failing (default: 10)",
    )
    args = ap.parse_args()

    base = throughputs(args.committed)
    fresh = throughputs(args.fresh)
    if not base:
        print("gate: committed baseline has no queries — nothing to compare")
        return 0

    failures = []
    for qid, b in sorted(base.items()):
        f = fresh.get(qid)
        if f is None:
            failures.append(f"{qid}: missing from the fresh measurement")
            continue
        floor = b["rows_per_sec"] / args.tolerance
        verdict = "ok" if f["rows_per_sec"] >= floor else "FAIL"
        print(
            f"{qid}: committed {b['rows_per_sec']:>12.1f} rows/s (scale {b['scale']})"
            f" | fresh {f['rows_per_sec']:>12.1f} rows/s (scale {f['scale']})"
            f" | floor {floor:>12.1f}"
            f" | kernel_rows {b['kernel_rows']} -> {f['kernel_rows']} | {verdict}"
        )
        if verdict == "FAIL":
            failures.append(
                f"{qid}: {f['rows_per_sec']:.1f} rows/s is more than "
                f"{args.tolerance:g}x below the committed {b['rows_per_sec']:.1f} rows/s"
            )
        if (
            b["typed_kernels"]
            and f["typed_kernels"]
            and b["kernel_rows"] > 0
            and f["kernel_rows"] == 0
        ):
            failures.append(
                f"{qid}: the committed baseline engaged the typed kernels "
                f"({b['kernel_rows']} kernel rows) but the fresh run engaged none"
            )

    if failures:
        print("\nbench gate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed (tolerance {args.tolerance:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
