#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_exec.json against the
committed baseline and fail on order-of-magnitude throughput regressions.

Usage:
    python3 scripts/bench_gate.py COMMITTED.json FRESH.json [--tolerance 10]

The tolerance is deliberately generous: the committed baseline was measured
on some developer machine at some scale, the fresh run happens on a CI
runner (usually at a smaller scale), so only catastrophic slowdowns — like
the Q2 cost-model misranking this gate exists to guard (a ~680x cliff) —
should trip it.  Per-query `pipelined_rows_per_sec` is the compared figure;
a fresh throughput below `committed / tolerance` fails the gate.

The gate also checks typed-kernel engagement: when both measurements ran
with `typed_kernels` enabled and the committed baseline engaged the
kernels on a query (`kernel_rows > 0`), the fresh run must engage them
too — kernel-row *counts* vary with scale, but engagement silently
dropping to zero means a compile-time lowering regressed.  The same check
runs per operator on each query's kernel-coverage ratio
(`kernel_rows / rows_in`): an operator whose committed coverage was
positive but whose fresh coverage is zero fails the gate naming the
query and the operator.

Finally, the gate guards the cross-query caching layer against silent
disengagement: when both measurements ran with the build, plan and
postings caches enabled and the committed baseline's repeated-query
phase recorded warm cache hits on a query, the fresh run's warm hit
total (plan + build + postings) collapsing to zero fails the gate —
warm *counts* vary with scale, but all-zero means the caches stopped
engaging.

With `--serve BENCH_serve.json` the gate instead validates a closed-loop
service measurement: at least two concurrency levels, positive throughput
and latency percentiles at every level, byte-identical responses, and no
admission rejections or queue timeouts (which would mean the service
benchmark deadlocked its way through the admission controller).
"""

import argparse
import json
import sys


def throughputs(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for q in doc.get("queries", []):
        out[q["id"]] = {
            "rows_per_sec": float(q["pipelined_rows_per_sec"]),
            "rows": int(q.get("rows", 0)),
            "scale": doc.get("scale"),
            # Older baselines predate the counter: treat absence as 0.
            "kernel_rows": int(q.get("kernel_rows", 0)),
            "typed_kernels": bool(doc.get("typed_kernels", False)),
            "operators": [
                {
                    "name": o["name"],
                    "rows_in": int(o.get("rows_in", 0)),
                    "kernel_rows": int(o.get("kernel_rows", 0)),
                }
                for o in q.get("operators", [])
            ],
        }
    return out


def cache_report(path):
    """Cache-engagement view of one measurement: whether all three cache
    knobs were on, and the per-query warm hit totals of the repeated
    phase (absent on baselines predating the phase)."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    caches_on = all(
        bool(doc.get(k, False)) for k in ("build_cache", "plan_cache", "postings_cache")
    )
    hits = {}
    for r in doc.get("repeated", []):
        hits[r["id"]] = (
            int(r.get("plan_cache_hits", 0))
            + int(r.get("build_cache_hits", 0))
            + int(r.get("postings_hits", 0))
        )
    return caches_on, hits


def coverage(op):
    """Kernel-coverage ratio of one operator: kernel rows per input row.

    Fused multi-term passes count one kernel row per (row, term), so the
    ratio can legitimately exceed 1; what the gate cares about is coverage
    collapsing to zero where the baseline had some.
    """
    return op["kernel_rows"] / op["rows_in"] if op["rows_in"] else 0.0


def serve_gate(path):
    """Validate one BENCH_serve.json measurement (no baseline needed —
    absolute latencies are hardware-bound; what must hold everywhere is
    liveness, coverage and byte-identity)."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    failures = []
    levels = doc.get("levels", [])
    if len(levels) < 2:
        failures.append(f"expected >= 2 concurrency levels, found {len(levels)}")
    for lvl in levels:
        n = lvl.get("clients", "?")
        qps = float(lvl.get("throughput_qps", 0.0))
        p50 = lvl.get("p50_us")
        p99 = lvl.get("p99_us")
        print(
            f"serve {n} client(s): {lvl.get('queries', 0)} queries, "
            f"{qps:.1f} q/s, p50 {p50} us, p99 {p99} us, "
            f"queued {lvl.get('queued', 0)}, rejected {lvl.get('rejected', 0)}, "
            f"timeouts {lvl.get('timeouts', 0)}"
        )
        if int(lvl.get("queries", 0)) <= 0:
            failures.append(f"{n} client(s): no queries measured")
        if qps <= 0.0:
            failures.append(f"{n} client(s): throughput is not positive ({qps})")
        if p50 is None or p99 is None or int(p50) <= 0 or int(p99) <= 0:
            failures.append(f"{n} client(s): latency percentiles missing or zero")
        if not lvl.get("byte_identical", False):
            failures.append(f"{n} client(s): responses not byte-identical")
        if int(lvl.get("rejected", 0)) != 0 or int(lvl.get("timeouts", 0)) != 0:
            failures.append(
                f"{n} client(s): admission rejected/timed out queries "
                f"(rejected {lvl.get('rejected', 0)}, timeouts {lvl.get('timeouts', 0)})"
            )
    if failures:
        print("\nserve gate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("\nserve gate passed.")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "committed", nargs="?", help="baseline BENCH_exec.json (committed)"
    )
    ap.add_argument("fresh", nargs="?", help="freshly measured BENCH_exec.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="allowed slowdown factor before failing (default: 10)",
    )
    ap.add_argument(
        "--serve",
        metavar="BENCH_SERVE_JSON",
        help="validate a BENCH_serve.json service measurement instead",
    )
    args = ap.parse_args()

    if args.serve:
        return serve_gate(args.serve)
    if not args.committed or not args.fresh:
        ap.error("COMMITTED and FRESH are required unless --serve is given")

    base = throughputs(args.committed)
    fresh = throughputs(args.fresh)
    if not base:
        print("gate: committed baseline has no queries — nothing to compare")
        return 0

    failures = []
    for qid, b in sorted(base.items()):
        f = fresh.get(qid)
        if f is None:
            failures.append(f"{qid}: missing from the fresh measurement")
            continue
        floor = b["rows_per_sec"] / args.tolerance
        verdict = "ok" if f["rows_per_sec"] >= floor else "FAIL"
        print(
            f"{qid}: committed {b['rows_per_sec']:>12.1f} rows/s (scale {b['scale']})"
            f" | fresh {f['rows_per_sec']:>12.1f} rows/s (scale {f['scale']})"
            f" | floor {floor:>12.1f}"
            f" | kernel_rows {b['kernel_rows']} -> {f['kernel_rows']} | {verdict}"
        )
        if verdict == "FAIL":
            failures.append(
                f"{qid}: {f['rows_per_sec']:.1f} rows/s is more than "
                f"{args.tolerance:g}x below the committed {b['rows_per_sec']:.1f} rows/s"
            )
        if (
            b["typed_kernels"]
            and f["typed_kernels"]
            and b["kernel_rows"] > 0
            and f["kernel_rows"] == 0
        ):
            failures.append(
                f"{qid}: the committed baseline engaged the typed kernels "
                f"({b['kernel_rows']} kernel rows) but the fresh run engaged none"
            )
        # Per-operator kernel coverage: same plan shape (operator names
        # line up) means each operator's coverage must not collapse to
        # zero where the baseline had some.
        if b["typed_kernels"] and f["typed_kernels"]:
            fresh_ops = {o["name"]: o for o in f["operators"]}
            for bo in b["operators"]:
                fo = fresh_ops.get(bo["name"])
                if fo is None:
                    continue  # plan shape changed; throughput gate governs
                b_cov, f_cov = coverage(bo), coverage(fo)
                if b_cov > 0 and fo["rows_in"] > 0 and f_cov == 0:
                    failures.append(
                        f"{qid} / {bo['name']}: kernel coverage collapsed "
                        f"(committed {b_cov:.2f} kernel rows/row over "
                        f"{bo['rows_in']} rows, fresh 0.00 over "
                        f"{fo['rows_in']} rows)"
                    )

    # Cache-disengagement check over the repeated-query phase.
    b_on, b_hits = cache_report(args.committed)
    f_on, f_hits = cache_report(args.fresh)
    if b_on and f_on:
        for qid, hits in sorted(b_hits.items()):
            fresh_hits = f_hits.get(qid)
            if fresh_hits is None:
                failures.append(f"{qid}: missing from the fresh repeated phase")
                continue
            verdict = "ok" if hits == 0 or fresh_hits > 0 else "FAIL"
            print(f"{qid}: repeated warm hits committed {hits} | fresh {fresh_hits} | {verdict}")
            if verdict == "FAIL":
                failures.append(
                    f"{qid}: the committed baseline's repeated phase recorded "
                    f"{hits} warm cache hits but the fresh run recorded none "
                    f"(caches silently disengaged)"
                )

    if failures:
        print("\nbench gate FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed (tolerance {args.tolerance:g}x).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
