//! Property-based tests over the core invariants:
//!
//! * the pre/size/level encoding round-trips through serialization,
//! * axis predicates agree with naive tree navigation,
//! * B-tree range scans agree with sorted-vector filtering,
//! * randomly generated path queries evaluate identically through the
//!   interpreter, the stacked plan and the isolated join graph.

use proptest::prelude::*;
use xqjg::store::{BPlusTree, Value};
use xqjg::xml::{encode_document, parse_document, DocTable, Pre};
use xqjg::{Mode, Processor};

/// Strategy producing a small random XML document built from a fixed
/// element vocabulary.
fn arb_xml(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..100).prop_map(|n| format!("<v>{n}</v>")),
        Just("<item/>".to_string()),
        (0u32..5).prop_map(|n| format!("<name>n{n}</name>")),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_xml(depth - 1);
    prop_oneof![
        leaf,
        (prop::collection::vec(inner.clone(), 1..4), 0u32..3).prop_map(|(children, id)| {
            format!("<entry id=\"e{id}\">{}</entry>", children.join(""))
        }),
        prop::collection::vec(inner, 1..3)
            .prop_map(|children| format!("<group>{}</group>", children.join(""))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encoding_round_trips_through_serialization(body in arb_xml(3)) {
        let xml = format!("<root>{body}</root>");
        let table = encode_document("t.xml", &xml).unwrap();
        let rendered = xqjg::xml::serialize_nodes(&table, &[Pre(0)]);
        let reparsed = DocTable::from_document("t.xml", &parse_document(&rendered).unwrap());
        prop_assert_eq!(table.len(), reparsed.len());
        for (a, b) in table.rows().zip(reparsed.rows()) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.size, b.size);
            prop_assert_eq!(a.level, b.level);
        }
    }

    #[test]
    fn encoding_structure_invariants(body in arb_xml(3)) {
        let xml = format!("<root>{body}</root>");
        let table = encode_document("t.xml", &xml).unwrap();
        // The document root spans the whole table; every subtree stays in bounds.
        prop_assert_eq!(table.row(Pre(0)).size as usize, table.len() - 1);
        for row in table.rows() {
            prop_assert!((row.pre as usize + row.size as usize) < table.len());
            if row.pre > 0 {
                prop_assert!(row.level >= 1);
            }
        }
    }

    #[test]
    fn btree_range_scan_matches_vector_filter(
        keys in prop::collection::vec(0i64..500, 1..300),
        lo in 0i64..500,
        width in 0i64..100,
    ) {
        let entries: Vec<(Vec<Value>, usize)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (vec![Value::Int(k)], i))
            .collect();
        let tree = BPlusTree::bulk_load(entries);
        let hi = lo + width;
        let lo_key = vec![Value::Int(lo)];
        let hi_key = vec![Value::Int(hi)];
        let mut got: Vec<usize> = tree
            .range(std::ops::Bound::Included(&lo_key), std::ops::Bound::Included(&hi_key))
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn random_path_queries_agree_across_evaluation_strategies(
        body in arb_xml(3),
        axis_choice in 0usize..3,
        name_choice in 0usize..3,
        with_pred in proptest::bool::ANY,
    ) {
        let xml = format!("<root>{body}</root>");
        let axis = ["descendant", "child", "descendant-or-self"][axis_choice];
        let name = ["entry", "group", "v"][name_choice];
        let pred = if with_pred { "[v > 10]" } else { "" };
        let query = format!("doc(\"t.xml\")/{axis}::{name}{pred}");

        let mut p = Processor::new();
        p.load_document("t.xml", &xml).unwrap();
        p.create_default_indexes();
        let oracle = p.execute(&query, Mode::Interpreter).unwrap().items;
        let stacked = p.execute(&query, Mode::Stacked).unwrap().items;
        let isolated = p.execute(&query, Mode::JoinGraph).unwrap().items;
        prop_assert_eq!(&stacked, &oracle, "stacked differs for {}", query);
        prop_assert_eq!(&isolated, &oracle, "isolated differs for {}", query);
    }

    #[test]
    fn nested_for_loops_agree_across_strategies(body in arb_xml(2)) {
        let xml = format!("<root>{body}</root>");
        let query = "for $e in doc(\"t.xml\")//entry return $e/descendant::name";
        let mut p = Processor::new();
        p.load_document("t.xml", &xml).unwrap();
        p.create_default_indexes();
        let oracle = p.execute(query, Mode::Interpreter).unwrap().items;
        let isolated = p.execute(query, Mode::JoinGraph).unwrap().items;
        prop_assert_eq!(isolated, oracle);
    }
}
