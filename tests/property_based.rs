//! Property-based tests over the core invariants:
//!
//! * the pre/size/level encoding round-trips through serialization,
//! * axis predicates agree with naive tree navigation,
//! * B-tree range scans agree with sorted-vector filtering,
//! * randomly generated path queries evaluate identically through the
//!   interpreter, the stacked plan and the isolated join graph,
//! * join-edge semantics: NULL hash/probe keys never match, residual
//!   predicates filter *after* the join, and nested-loop and hash joins
//!   return identical binding sets for the same plan.

use proptest::prelude::*;
use xqjg::engine::{
    optimize, Access, ExecStats, JoinMethod, JoinNode, PhysPlan, QueryRequest, SelectItem, SqlCmp,
    SqlExpr, SqlPredicate,
};
use xqjg::store::{BPlusTree, Database, ExecConfig, Schema, Table, Value};

/// The old entry points, expressed over the unified [`QueryRequest`] API
/// (the only execution path this suite drives).
fn execute(plan: &PhysPlan, db: &Database) -> Table {
    QueryRequest::new(plan, db).expect_run().rows
}

fn execute_with_stats_config(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
) -> (Table, ExecStats) {
    let out = QueryRequest::new(plan, db).config(cfg).expect_run();
    (out.rows, out.stats)
}
use xqjg::xml::{encode_document, parse_document, DocTable, Pre};
use xqjg::{Mode, Processor};

/// The batch capacities the columnar ≡ row properties are pinned at
/// (acceptance criterion of the vectorization work).
const PROBE_CAPACITIES: [usize; 3] = [1, 64, 1024];

/// Strategy producing a small random XML document built from a fixed
/// element vocabulary.
fn arb_xml(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0u32..100).prop_map(|n| format!("<v>{n}</v>")),
        Just("<item/>".to_string()),
        (0u32..5).prop_map(|n| format!("<name>n{n}</name>")),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_xml(depth - 1);
    prop_oneof![
        leaf,
        (prop::collection::vec(inner.clone(), 1..4), 0u32..3).prop_map(|(children, id)| {
            format!("<entry id=\"e{id}\">{}</entry>", children.join(""))
        }),
        prop::collection::vec(inner, 1..3)
            .prop_map(|children| format!("<group>{}</group>", children.join(""))),
    ]
    .boxed()
}

/// Strategy producing a nullable join key over a tiny domain (so matches,
/// collisions and NULLs all occur).
fn arb_key() -> BoxedStrategy<Option<i64>> {
    prop_oneof![
        Just(None),
        (0i64..4).prop_map(Some),
        (0i64..4).prop_map(Some),
    ]
    .boxed()
}

/// Two-table database for the join-edge properties: `l(k, v)` joins
/// `r(k2, w)` on `k = k2`.
fn join_db(left: &[(Option<i64>, i64)], right: &[(Option<i64>, Option<i64>)]) -> Database {
    let mut lt = Table::new(Schema::new(["k", "v"]));
    for (k, v) in left {
        lt.push(vec![Value::from(*k), Value::Int(*v)]);
    }
    let mut rt = Table::new(Schema::new(["k2", "w"]));
    for (k2, w) in right {
        rt.push(vec![Value::from(*k2), Value::from(*w)]);
    }
    let mut db = Database::new();
    db.create_table("l", lt);
    db.create_table("r", rt);
    db
}

/// A two-alias plan joining `l` and `r` on `l.k = r.k2`, optionally with
/// the residual `l.v <= r.w`, via either join method.
fn join_plan(method: JoinMethod, with_residual: bool) -> PhysPlan {
    let key_pred = SqlPredicate::new(SqlExpr::col("r", "k2"), SqlCmp::Eq, SqlExpr::col("l", "k"));
    let (access_preds, hash_keys) = match method {
        // Nested loop: the key predicate is evaluated per probed row.
        JoinMethod::NestedLoop => (vec![key_pred], vec![]),
        // Hash join: the key becomes the build/probe key.
        JoinMethod::Hash => (vec![], vec![(SqlExpr::col("l", "k"), "k2".to_string())]),
    };
    let residual = if with_residual {
        vec![SqlPredicate::new(
            SqlExpr::col("l", "v"),
            SqlCmp::Le,
            SqlExpr::col("r", "w"),
        )]
    } else {
        vec![]
    };
    PhysPlan {
        root: JoinNode::Join {
            outer: Box::new(JoinNode::Leaf {
                alias: "l".into(),
                table: "l".into(),
                access: Access::TableScan { preds: vec![] },
                est_rows: 0.0,
            }),
            alias: "r".into(),
            table: "r".into(),
            access: Access::TableScan {
                preds: access_preds,
            },
            method,
            hash_keys,
            residual,
            est_rows: 0.0,
        },
        select: vec![SelectItem::Star("l".into()), SelectItem::Star("r".into())],
        distinct: false,
        order_by: vec![],
        est_cost: 0.0,
        est_rows: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encoding_round_trips_through_serialization(body in arb_xml(3)) {
        let xml = format!("<root>{body}</root>");
        let table = encode_document("t.xml", &xml).unwrap();
        let rendered = xqjg::xml::serialize_nodes(&table, &[Pre(0)]);
        let reparsed = DocTable::from_document("t.xml", &parse_document(&rendered).unwrap());
        prop_assert_eq!(table.len(), reparsed.len());
        for (a, b) in table.rows().zip(reparsed.rows()) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.size, b.size);
            prop_assert_eq!(a.level, b.level);
        }
    }

    #[test]
    fn encoding_structure_invariants(body in arb_xml(3)) {
        let xml = format!("<root>{body}</root>");
        let table = encode_document("t.xml", &xml).unwrap();
        // The document root spans the whole table; every subtree stays in bounds.
        prop_assert_eq!(table.row(Pre(0)).size as usize, table.len() - 1);
        for row in table.rows() {
            prop_assert!((row.pre as usize + row.size as usize) < table.len());
            if row.pre > 0 {
                prop_assert!(row.level >= 1);
            }
        }
    }

    #[test]
    fn btree_range_scan_matches_vector_filter(
        keys in prop::collection::vec(0i64..500, 1..300),
        lo in 0i64..500,
        width in 0i64..100,
    ) {
        let entries: Vec<(Vec<Value>, usize)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (vec![Value::Int(k)], i))
            .collect();
        let tree = BPlusTree::bulk_load(entries);
        let hi = lo + width;
        let lo_key = vec![Value::Int(lo)];
        let hi_key = vec![Value::Int(hi)];
        let mut got: Vec<usize> = tree
            .range(std::ops::Bound::Included(&lo_key), std::ops::Bound::Included(&hi_key))
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn random_path_queries_agree_across_evaluation_strategies(
        body in arb_xml(3),
        axis_choice in 0usize..3,
        name_choice in 0usize..3,
        with_pred in proptest::bool::ANY,
    ) {
        let xml = format!("<root>{body}</root>");
        let axis = ["descendant", "child", "descendant-or-self"][axis_choice];
        let name = ["entry", "group", "v"][name_choice];
        let pred = if with_pred { "[v > 10]" } else { "" };
        let query = format!("doc(\"t.xml\")/{axis}::{name}{pred}");

        let mut p = Processor::new();
        p.load_document("t.xml", &xml).unwrap();
        p.create_default_indexes();
        let oracle = p.execute(&query, Mode::Interpreter).unwrap().items;
        let stacked = p.execute(&query, Mode::Stacked).unwrap().items;
        let isolated = p.execute(&query, Mode::JoinGraph).unwrap().items;
        prop_assert_eq!(&stacked, &oracle, "stacked differs for {}", query);
        prop_assert_eq!(&isolated, &oracle, "isolated differs for {}", query);
    }

    #[test]
    fn join_edge_semantics_hold_for_both_join_methods(
        left in prop::collection::vec((arb_key(), 0i64..10), 0..12),
        right in prop::collection::vec((arb_key(), arb_key()), 0..12),
    ) {
        let db = join_db(&left, &right);
        // Nested-loop and hash join execute the same logical join edge.
        let mut hash_rows = execute(&join_plan(JoinMethod::Hash, true), &db).into_rows();
        let mut nl_rows = execute(&join_plan(JoinMethod::NestedLoop, true), &db).into_rows();
        hash_rows.sort();
        nl_rows.sort();
        prop_assert_eq!(&hash_rows, &nl_rows, "join methods must agree");

        // Reference semantics: NULL keys never match, residual (l.v <= r.w,
        // NULL-rejecting) filters the joined bindings.
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for (lk, lv) in &left {
            let Some(lk) = lk else { continue };
            for (rk, w) in &right {
                if *rk != Some(*lk) {
                    continue;
                }
                if w.map(|w| *lv <= w) != Some(true) {
                    continue;
                }
                expected.push(vec![
                    Value::Int(*lk),
                    Value::Int(*lv),
                    Value::from(*rk),
                    Value::from(*w),
                ]);
            }
        }
        expected.sort();
        prop_assert_eq!(&hash_rows, &expected, "NULL-key and residual semantics");
        for row in &hash_rows {
            prop_assert!(!row[0].is_null() && !row[2].is_null(), "NULL key matched");
        }

        // Residual predicates apply after the join: dropping the residual
        // yields a superset, and re-applying it recovers the filtered set.
        let mut unfiltered = execute(&join_plan(JoinMethod::Hash, false), &db).into_rows();
        prop_assert!(unfiltered.len() >= hash_rows.len());
        unfiltered.retain(|row| match (row[1].as_i64(), row[3].as_i64()) {
            (Some(v), Some(w)) => v <= w,
            _ => false,
        });
        unfiltered.sort();
        prop_assert_eq!(unfiltered, hash_rows, "residual is a post-join filter");
    }

    #[test]
    fn columnar_and_row_paths_agree_over_random_predicates(
        body in arb_xml(3),
        axis_choice in 0usize..3,
        name_choice in 0usize..3,
        pred_choice in 0usize..4,
    ) {
        // A random document, a random path query with a random value /
        // attribute predicate — optimized once, then executed through the
        // vectorized (columnar, selection-vector) executor and the scalar
        // row-at-a-time fallback at every pinned batch capacity.  Rows,
        // row order, aggregate counters and per-operator actuals must all
        // agree.
        let xml = format!("<root>{body}</root>");
        let axis = ["descendant", "child", "descendant-or-self"][axis_choice];
        let name = ["entry", "group", "v"][name_choice];
        let pred = ["", "[v > 10]", "[@id = \"e1\"]", "[v >= 3 and v < 42]"][pred_choice];
        let query = format!("doc(\"t.xml\")/{axis}::{name}{pred}");

        let mut p = Processor::new();
        p.load_document("t.xml", &xml).unwrap();
        p.create_default_indexes();
        // Not every generated predicate shape compiles to SQL; the
        // property is about executor parity, not frontend coverage.
        if let Ok(prepared) = p.prepare(&query) {
            let db = p.database();
            for b in &prepared.branches {
                let plan = optimize(&b.isolated.query, db).unwrap();
                let (t_ref, _) = execute_with_stats_config(
                    &plan,
                    db,
                    &ExecConfig::sequential().with_vectorize(false),
                );
                for cap in PROBE_CAPACITIES {
                    let scalar = ExecConfig::sequential()
                        .with_vectorize(false)
                        .with_batch_capacity(cap);
                    let vectorized = ExecConfig::sequential()
                        .with_vectorize(true)
                        .with_batch_capacity(cap);
                    let (t_row, s_row) = execute_with_stats_config(&plan, db, &scalar);
                    let (t_col, s_col) = execute_with_stats_config(&plan, db, &vectorized);
                    prop_assert_eq!(&t_row, &t_ref, "{} cap {}", query, cap);
                    prop_assert_eq!(&t_col, &t_row, "{} cap {}", query, cap);
                    // The kernel-engagement counter reports which
                    // representation ran and is the one actual allowed to
                    // differ between the two repertoires.
                    let mut s_col_k = s_col.clone();
                    let mut s_row_k = s_row.clone();
                    for op in s_col_k.operators.iter_mut().chain(s_row_k.operators.iter_mut()) {
                        op.kernel_rows = 0;
                    }
                    prop_assert_eq!(&s_col_k, &s_row_k,
                        "{} cap {}: aggregate counters and actuals must match", query, cap);
                    // Adaptive chunk sizing must not change anything either.
                    let (t_fix, s_fix) = execute_with_stats_config(
                        &plan, db, &vectorized.clone().with_adaptive(false));
                    prop_assert_eq!(&t_fix, &t_col, "{} cap {}", query, cap);
                    prop_assert_eq!(&s_fix, &s_col, "{} cap {}", query, cap);
                }
            }
        }
    }

    #[test]
    fn vectorized_join_edge_matches_scalar_at_every_capacity(
        left in prop::collection::vec((arb_key(), 0i64..10), 0..12),
        right in prop::collection::vec((arb_key(), arb_key()), 0..12),
    ) {
        // NULL keys, hash collisions and residual predicates under both
        // join methods: the columnar path must reproduce the scalar rows
        // *in order* at every batch capacity.
        let db = join_db(&left, &right);
        for method in [JoinMethod::Hash, JoinMethod::NestedLoop] {
            let plan = join_plan(method, true);
            let (t_ref, s_ref) = execute_with_stats_config(
                &plan,
                &db,
                &ExecConfig::sequential().with_vectorize(false),
            );
            for cap in PROBE_CAPACITIES {
                let (t, s) = execute_with_stats_config(
                    &plan,
                    &db,
                    &ExecConfig::sequential().with_vectorize(true).with_batch_capacity(cap),
                );
                prop_assert_eq!(&t, &t_ref, "{:?} cap {}", method, cap);
                prop_assert_eq!(s.probes, s_ref.probes, "{:?} cap {}", method, cap);
                prop_assert_eq!(s.bindings, s_ref.bindings, "{:?} cap {}", method, cap);
                prop_assert_eq!(s.scan_rows, s_ref.scan_rows, "{:?} cap {}", method, cap);
                prop_assert_eq!(s.index_rows, s_ref.index_rows, "{:?} cap {}", method, cap);
            }
        }
    }

    #[test]
    fn nested_for_loops_agree_across_strategies(body in arb_xml(2)) {
        let xml = format!("<root>{body}</root>");
        let query = "for $e in doc(\"t.xml\")//entry return $e/descendant::name";
        let mut p = Processor::new();
        p.load_document("t.xml", &xml).unwrap();
        p.create_default_indexes();
        let oracle = p.execute(query, Mode::Interpreter).unwrap().items;
        let isolated = p.execute(query, Mode::JoinGraph).unwrap().items;
        prop_assert_eq!(isolated, oracle);
    }

    #[test]
    fn morsel_partitioning_covers_each_rid_exactly_once(
        domain in 0usize..6000,
        morsel_size in 1usize..700,
    ) {
        let morsels = xqjg::store::partition_morsels(domain, morsel_size);
        // At least one pipeline instance always runs, even on empty input.
        prop_assert!(!morsels.is_empty());
        // Morsels are contiguous, ordered, bounded by the requested size,
        // and tile the domain without gap or overlap — every rid is
        // covered exactly once.
        let mut next_expected = 0usize;
        for m in &morsels {
            prop_assert_eq!(m.start, next_expected, "gap or overlap at {}", m.start);
            prop_assert!(m.end >= m.start);
            prop_assert!(m.len() <= morsel_size);
            next_expected = m.end;
        }
        prop_assert_eq!(next_expected, domain, "domain fully covered");
        let covered: usize = morsels.iter().map(|m| m.len()).sum();
        prop_assert_eq!(covered, domain);
        // The parallel exchange claims each morsel exactly once and
        // returns results in morsel order, at any DOP.
        for threads in [1usize, 3] {
            let echoed = xqjg::store::execute_morsels(
                threads,
                morsels.clone(),
                |idx, m| (idx, m.start, m.end),
            );
            prop_assert_eq!(echoed.len(), morsels.len());
            for (i, (idx, start, end)) in echoed.iter().enumerate() {
                prop_assert_eq!(*idx, i);
                prop_assert_eq!(*start, morsels[i].start);
                prop_assert_eq!(*end, morsels[i].end);
            }
        }
    }
}
