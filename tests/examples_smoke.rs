//! Smoke test: every example must run to completion (exit status 0).
//!
//! The examples double as end-to-end demos of the pipeline (parse →
//! loop-lift → isolate → SQL → execute), so a panic or non-zero exit in
//! any of them is a regression even when the unit suites stay green.

use std::process::Command;

/// Run `cargo run --example <name>` with the same cargo/toolchain that is
/// running this test and return the exit status.
fn run_example(name: &str) -> std::process::ExitStatus {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(manifest_dir)
        // Keep the example's own (possibly verbose) stdout out of the test
        // log; stderr stays visible for diagnostics on failure.
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"))
}

#[test]
fn all_examples_exit_zero() {
    for name in ["quickstart", "explain_plans", "xmark_auctions"] {
        let status = run_example(name);
        assert!(status.success(), "example {name} exited with {status:?}");
    }
}
