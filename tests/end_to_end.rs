//! Cross-crate integration tests: the four evaluation paths (reference
//! interpreter, stacked plan, isolated join graph, navigational baseline)
//! must agree on the paper's query set over generated data.

use xqjg::data::{generate_dblp_encoded, generate_xmark_encoded, DblpConfig, XmarkConfig};
use xqjg::purexml::{PureXmlStore, Storage};
use xqjg::xquery::parse_and_normalize;
use xqjg::{Mode, Processor};

fn xmark_processor(scale: f64) -> Processor {
    let mut p = Processor::new();
    p.load_encoded(
        "auction.xml",
        generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(scale)),
    );
    p.create_default_indexes();
    p
}

fn dblp_processor(scale: f64) -> Processor {
    let mut p = Processor::new();
    p.load_encoded(
        "dblp.xml",
        generate_dblp_encoded("dblp.xml", &DblpConfig::with_scale(scale)),
    );
    p.create_default_indexes();
    p
}

fn assert_modes_agree(p: &mut Processor, query: &str) -> usize {
    let oracle = p.execute(query, Mode::Interpreter).expect("interpreter");
    let stacked = p.execute(query, Mode::Stacked).expect("stacked");
    let isolated = p.execute(query, Mode::JoinGraph).expect("join graph");
    assert_eq!(stacked.items, oracle.items, "stacked differs for {query}");
    assert_eq!(
        isolated.items, oracle.items,
        "join graph differs for {query}"
    );
    oracle.items.len()
}

#[test]
fn q1_descendant_filter() {
    let mut p = xmark_processor(0.03);
    let n = assert_modes_agree(
        &mut p,
        r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
    );
    assert!(n > 0, "Q1 must select auctions with bidders");
}

#[test]
fn q2_triple_value_join() {
    let mut p = xmark_processor(0.03);
    let n = assert_modes_agree(
        &mut p,
        r#"let $a := doc("auction.xml")
           for $ca in $a//closed_auction[price > 500],
               $i in $a//item,
               $c in $a//category
           where $ca/itemref/@item = $i/@id
             and $i/incategory/@category = $c/@id
           return $c/name"#,
    );
    assert!(n > 0, "Q2 must return category names");
}

#[test]
fn q3_point_lookup_and_q4_path_scan() {
    let mut p = xmark_processor(0.03);
    let n3 = assert_modes_agree(
        &mut p,
        r#"/site/people/person[@id = "person0"]/name/text()"#,
    );
    assert_eq!(n3, 1);
    let n4 = assert_modes_agree(&mut p, "//closed_auction/price/text()");
    assert!(n4 > 5);
}

#[test]
fn q5_wildcard_with_key_and_q6_theses() {
    let mut p = dblp_processor(0.03);
    let n5 = assert_modes_agree(
        &mut p,
        r#"/dblp/*[@key = "conf/vldb2001" and editor and title]/title"#,
    );
    assert_eq!(n5, 1);
    // Q6 uses a comma sequence: the relational pipeline decomposes it, so
    // compare the multiset of result nodes against the interpreter.
    let q6 = r#"for $thesis in /dblp/phdthesis[year < "1994" and author and title]
                return ($thesis/title, $thesis/author, $thesis/year)"#;
    let oracle = p.execute(q6, Mode::Interpreter).unwrap();
    let isolated = p.execute(q6, Mode::JoinGraph).unwrap();
    let mut a = oracle.items.clone();
    let mut b = isolated.items.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn reverse_axis_queries_agree() {
    let mut p = xmark_processor(0.02);
    assert_modes_agree(
        &mut p,
        "for $b in //bidder return $b/ancestor::open_auction",
    );
    assert_modes_agree(
        &mut p,
        "for $pr in //price return $pr/parent::closed_auction",
    );
    assert_modes_agree(
        &mut p,
        "for $x in //open_auction[bidder] return $x/descendant-or-self::bidder",
    );
}

#[test]
fn navigational_baseline_agrees_on_single_document_queries() {
    let doc = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(0.02));
    let mut p = Processor::new();
    p.load_encoded("auction.xml", doc.clone());
    p.create_default_indexes();
    for (query, indexed_path) in [
        (
            r#"/site/people/person[@id = "person0"]/name/text()"#,
            vec!["person", "@id"],
        ),
        (
            "//closed_auction/price/text()",
            vec!["closed_auction", "price"],
        ),
        (
            r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
            vec![],
        ),
    ] {
        let expected = p.execute(query, Mode::JoinGraph).unwrap().items;
        let core = parse_and_normalize(query, Some("auction.xml")).unwrap();
        for storage in [Storage::Whole, Storage::Segmented { depth: 3 }] {
            let mut store = PureXmlStore::new(&doc, storage);
            if !indexed_path.is_empty() {
                store.create_pattern_index(&indexed_path);
            }
            let (items, _) = store.evaluate(&core);
            assert_eq!(items, expected, "{query} under {storage:?}");
        }
    }
}

#[test]
fn isolation_produces_compact_sql_for_the_whole_query_set() {
    let p = xmark_processor(0.02);
    let q1 = p
        .prepare(r#"doc("auction.xml")/descendant::open_auction[bidder]"#)
        .unwrap();
    assert_eq!(q1.branches[0].isolated.query.from.len(), 3);
    let q2 = p
        .prepare(
            r#"let $a := doc("auction.xml")
               for $ca in $a//closed_auction[price > 500],
                   $i in $a//item,
                   $c in $a//category
               where $ca/itemref/@item = $i/@id
                 and $i/incategory/@category = $c/@id
               return $c/name"#,
        )
        .unwrap();
    // Fig. 9 describes a 12-fold self-join over doc.
    assert_eq!(q2.branches[0].isolated.query.from.len(), 12);
    assert!(q2.branches[0].isolated.query.order_by.len() >= 4);
    // The stacked plans are an order of magnitude larger than the SQL.
    assert!(q2.branches[0].stacked.size() > 100);
}

#[test]
fn serialization_round_trips_query_results() {
    let mut p = xmark_processor(0.02);
    let out = p
        .execute(
            r#"/site/people/person[@id = "person0"]/name"#,
            Mode::JoinGraph,
        )
        .unwrap();
    let xml_text = p.serialize(&out.items);
    assert!(xml_text.starts_with("<name>"));
    assert!(xml_text.ends_with("</name>"));
    assert_eq!(out.serialized_nodes, 2);
}
