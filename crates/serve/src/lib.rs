//! `xqjg-serve` — the query service layer over the join-graph-isolation
//! engine.
//!
//! A long-lived server owns one relational catalog (a prepared
//! [`xqjg_core::Processor`] behind an `Arc`) plus the shared cross-query
//! caches, and serves many concurrent sessions over a single TCP port that
//! speaks both a minimal line-oriented wire protocol and HTTP/1.1 (the
//! first request line decides which).  The per-query memory budget of the
//! execution layer is promoted into a *global admission controller*
//! ([`xqjg_store::AdmissionController`]): when the aggregate demand of the
//! active sessions would oversubscribe `XQJG_GLOBAL_BUDGET`, new queries
//! are queued (bounded FIFO, `XQJG_QUEUE_TIMEOUT`) and admitted with a
//! *reduced* grant that forces them to spill rather than fail.
//!
//! * [`engine`] — the [`Engine`]: shared processor + admission + session
//!   registry; the one execution path (`QueryRequest` underneath).
//! * [`session`] — per-session pinned [`xqjg_store::ExecConfig`] knobs,
//!   evaluation mode and cancellation token.
//! * [`response`] — the single typed [`Response`] enum every entry point
//!   returns, with line-protocol and JSON renderings.
//! * [`protocol`] — wire dispatch: `QUERY` / `EXPLAIN` / `SET` / `MODE` /
//!   `STATS` / `CANCEL` / `ID` / `PING` / `QUIT`, plus the HTTP routes
//!   `GET /health`, `GET /stats`, `POST /query`, `POST /explain`.
//! * [`server`] — the thread-pooled TCP [`Server`] with clean shutdown
//!   (drains the admission controller).

pub mod engine;
pub mod protocol;
pub mod response;
pub mod server;
pub mod session;

pub use engine::{Engine, ServerStats};
pub use response::{QueryResult, Response, ServeError};
pub use server::{Server, DEFAULT_WORKERS};
pub use session::Session;
