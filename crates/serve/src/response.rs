//! The single typed response every service entry point returns, with the
//! two wire renderings (line protocol and JSON) kept side by side so they
//! cannot drift apart.

use crate::engine::ServerStats;
use xqjg_core::QueryError;
use xqjg_store::{ConfigError, ExecError};
use xqjg_xml::Pre;

/// A successful query execution, ready for rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Result node sequence (`pre` ranks in sequence order) — the payload
    /// the byte-identical parity checks compare.
    pub items: Vec<Pre>,
    /// Number of nodes a full serialization would emit (Table IX's
    /// "# nodes" column).
    pub serialized_nodes: usize,
    /// Wall-clock execution time in microseconds (excludes compilation).
    pub elapsed_us: u128,
    /// Bytes of the global budget granted by admission (`None` when the
    /// server runs without a global budget and the session pinned none).
    pub granted: Option<usize>,
}

/// A service-level error: a stable machine-readable `kind` plus the
/// human-readable message.  Every error source of the stack — compilation
/// stages, typed runtime errors, admission verdicts, knob parsing and the
/// wire protocol itself — folds into this one shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Stable error class: a pipeline stage name (`parse`, `optimize`,
    /// `catalog`, …) or a runtime class (`io`, `corrupt`, `budget`,
    /// `cancelled`, `timeout`, `overloaded`, `config`, `protocol`,
    /// `session`).
    pub kind: &'static str,
    /// Description (single logical message; newlines are collapsed on the
    /// line protocol).
    pub message: String,
}

impl ServeError {
    /// A protocol-level error (unknown command, malformed arguments).
    pub fn protocol(message: impl Into<String>) -> ServeError {
        ServeError {
            kind: "protocol",
            message: message.into(),
        }
    }

    /// A session-registry error (unknown session id).
    pub fn session(message: impl Into<String>) -> ServeError {
        ServeError {
            kind: "session",
            message: message.into(),
        }
    }
}

/// The runtime error class names used by [`ServeError::kind`]; shared with
/// `QueryError::Exec` folding so admission errors and in-flight execution
/// errors render identically.
fn exec_kind(e: &ExecError) -> &'static str {
    match e {
        ExecError::Io { .. } => "io",
        ExecError::Corrupt { .. } => "corrupt",
        ExecError::Budget { .. } => "budget",
        ExecError::Cancelled => "cancelled",
        ExecError::Timeout { .. } => "timeout",
        ExecError::Overloaded { .. } => "overloaded",
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> ServeError {
        ServeError {
            kind: exec_kind(&e),
            message: e.to_string(),
        }
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> ServeError {
        match e {
            QueryError::Stage { stage, message } => ServeError {
                kind: stage,
                message,
            },
            QueryError::Exec(e) => e.into(),
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> ServeError {
        ServeError {
            kind: "config",
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ServeError {}

/// The unified response enum: results, EXPLAIN output, server counters and
/// typed errors all flow through here, whichever protocol carried the
/// request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Simple acknowledgement (`SET`, `MODE`, `PING`, …) with a detail
    /// string.
    Ok(String),
    /// A query result.
    Result(QueryResult),
    /// EXPLAIN text, one block per executed SQL statement.
    Explain(Vec<String>),
    /// Server-wide counters (admission + session + query tallies).
    Stats(ServerStats),
    /// A typed error.
    Error(ServeError),
}

impl From<ServeError> for Response {
    fn from(e: ServeError) -> Response {
        Response::Error(e)
    }
}

/// Collapse a message to one physical line for the line protocol.
fn one_line(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

impl Response {
    /// Render for the line protocol.  Single-line responses are
    /// self-delimiting; multi-line payloads (`RESULT`, `EXPLAIN`) carry a
    /// trailing `END` sentinel, with free-form payload lines prefixed by
    /// `| ` so a client can never confuse them with framing.
    pub fn render_line(&self) -> String {
        match self {
            Response::Ok(detail) if detail.is_empty() => "OK\n".to_string(),
            Response::Ok(detail) => format!("OK {}\n", one_line(detail)),
            Response::Result(r) => {
                let granted = r.granted.map_or_else(|| "-".to_string(), |g| g.to_string());
                let mut s = format!(
                    "RESULT rows={} nodes={} elapsed_us={} granted={}\nITEMS",
                    r.items.len(),
                    r.serialized_nodes,
                    r.elapsed_us,
                    granted
                );
                for p in &r.items {
                    s.push(' ');
                    s.push_str(&p.0.to_string());
                }
                s.push_str("\nEND\n");
                s
            }
            Response::Explain(blocks) => {
                let mut s = format!("EXPLAIN blocks={}\n", blocks.len());
                for b in blocks {
                    for line in b.lines() {
                        s.push_str("| ");
                        s.push_str(line);
                        s.push('\n');
                    }
                }
                s.push_str("END\n");
                s
            }
            Response::Stats(st) => {
                let a = &st.admission;
                format!(
                    "STATS sessions={} ok={} err={} active={} waiting={} \
                     in_use={} peak={} admitted={} queued={} timeouts={} \
                     cancelled={} rejected={} released={}\n",
                    st.sessions,
                    st.queries_ok,
                    st.queries_err,
                    a.active,
                    a.waiting,
                    a.in_use,
                    a.peak_in_use,
                    a.admitted,
                    a.queued,
                    a.timeouts,
                    a.cancelled,
                    a.rejected,
                    a.released
                )
            }
            Response::Error(e) => format!("ERR {} {}\n", e.kind, one_line(&e.message)),
        }
    }

    /// Render as a JSON document (for the HTTP endpoints).
    pub fn render_json(&self) -> String {
        match self {
            Response::Ok(detail) => format!("{{\"ok\":true,\"detail\":{}}}", json_str(detail)),
            Response::Result(r) => {
                let items: Vec<String> = r.items.iter().map(|p| p.0.to_string()).collect();
                format!(
                    "{{\"rows\":{},\"nodes\":{},\"elapsed_us\":{},\"granted\":{},\"items\":[{}]}}",
                    r.items.len(),
                    r.serialized_nodes,
                    r.elapsed_us,
                    r.granted
                        .map_or_else(|| "null".to_string(), |g| g.to_string()),
                    items.join(",")
                )
            }
            Response::Explain(blocks) => {
                let blocks: Vec<String> = blocks.iter().map(|b| json_str(b)).collect();
                format!("{{\"blocks\":[{}]}}", blocks.join(","))
            }
            Response::Stats(st) => {
                let a = &st.admission;
                format!(
                    "{{\"sessions\":{},\"queries_ok\":{},\"queries_err\":{},\
                     \"admission\":{{\"active\":{},\"waiting\":{},\"in_use\":{},\
                     \"peak_in_use\":{},\"admitted\":{},\"queued\":{},\
                     \"timeouts\":{},\"cancelled\":{},\"rejected\":{},\
                     \"released\":{}}}}}",
                    st.sessions,
                    st.queries_ok,
                    st.queries_err,
                    a.active,
                    a.waiting,
                    a.in_use,
                    a.peak_in_use,
                    a.admitted,
                    a.queued,
                    a.timeouts,
                    a.cancelled,
                    a.rejected,
                    a.released
                )
            }
            Response::Error(e) => format!(
                "{{\"error\":{{\"kind\":{},\"message\":{}}}}}",
                json_str(e.kind),
                json_str(&e.message)
            ),
        }
    }

    /// HTTP status for this response.
    pub fn http_status(&self) -> (u16, &'static str) {
        match self {
            Response::Error(e) => match e.kind {
                "overloaded" => (503, "Service Unavailable"),
                "timeout" => (504, "Gateway Timeout"),
                "io" | "corrupt" | "budget" => (500, "Internal Server Error"),
                // Compilation stages, config, protocol, session, cancelled:
                // the request itself was unservable as posed.
                _ => (400, "Bad Request"),
            },
            _ => (200, "OK"),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rendering_frames_multiline_payloads() {
        let r = Response::Result(QueryResult {
            items: vec![Pre(3), Pre(7)],
            serialized_nodes: 5,
            elapsed_us: 42,
            granted: Some(1024),
        });
        let s = r.render_line();
        assert!(s.starts_with("RESULT rows=2 nodes=5 elapsed_us=42 granted=1024\n"));
        assert!(s.contains("ITEMS 3 7\n"));
        assert!(s.ends_with("END\n"));

        let e = Response::Explain(vec!["line one\nEND".to_string()]);
        let s = e.render_line();
        // Payload lines are prefixed so a literal END in EXPLAIN text can
        // never terminate the frame early.
        assert!(s.contains("| END\n"));
        assert!(s.ends_with("\nEND\n"));
    }

    #[test]
    fn error_folding_keeps_kinds_stable() {
        let e: ServeError = ExecError::Overloaded {
            queued: 4,
            depth: 4,
        }
        .into();
        assert_eq!(e.kind, "overloaded");
        assert_eq!(Response::from(e).http_status().0, 503);

        let e: ServeError = ExecError::Timeout { limit_ms: 10 }.into();
        assert_eq!(e.kind, "timeout");

        let e: ServeError = QueryError::Stage {
            stage: "parse",
            message: "oops".into(),
        }
        .into();
        assert_eq!(e.kind, "parse");
        assert_eq!(Response::from(e).http_status().0, 400);
    }

    #[test]
    fn json_rendering_escapes() {
        let r = Response::Error(ServeError::protocol("bad \"quote\"\nline"));
        let s = r.render_json();
        assert!(s.contains("\\\"quote\\\""));
        assert!(s.contains("\\n"));
        assert!(!s.contains('\n'));
    }
}
