//! The thread-pooled TCP server: one listener, an accept thread feeding a
//! bounded hand-off queue, and a fixed pool of connection workers.  All of
//! it is `std::net` + `std::thread` — no runtime, no external crates.
//!
//! Shutdown is cooperative and *clean*: the flag flips, the accept loop is
//! unblocked by a self-connection, in-flight readers observe the flag at
//! their next 100 ms read poll, and [`Server::shutdown`] joins every
//! thread before asserting the admission controller has fully drained
//! (every granted byte released, no query active or queued).

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Engine;
use crate::protocol::handle_connection;

/// Default size of the connection-worker pool.
pub const DEFAULT_WORKERS: usize = 8;

/// Hand-off queue between the accept thread and the workers.
struct Handoff {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

/// A running server.  Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, drains the workers and joins every thread.
pub struct Server {
    engine: Arc<Engine>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handoff: Arc<Handoff>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the accept loop plus `workers` connection handlers.
    pub fn start(engine: Arc<Engine>, addr: &str, workers: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handoff = Arc::new(Handoff {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shutdown = Arc::clone(&shutdown);
            let handoff = Arc::clone(&handoff);
            threads.push(
                std::thread::Builder::new()
                    .name("xqjg-accept".to_string())
                    .spawn(move || accept_loop(listener, handoff, shutdown))?,
            );
        }
        for i in 0..workers.max(1) {
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            let handoff = Arc::clone(&handoff);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("xqjg-worker-{i}"))
                    .spawn(move || worker_loop(engine, handoff, shutdown))?,
            );
        }
        Ok(Server {
            engine,
            addr,
            shutdown,
            handoff,
            threads,
        })
    }

    /// The bound address (resolves the port when started on `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stop accepting, drain the workers, join every thread, and assert
    /// the admission controller drained (no leaked grant or slot).
    pub fn shutdown(mut self) {
        self.stop();
        assert!(
            self.engine.admission().drained(),
            "admission controller not drained at shutdown: {:?}",
            self.engine.admission().stats()
        );
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop; the probe connection is never handled.
        let _ = TcpStream::connect(self.addr);
        self.handoff.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, handoff: Arc<Handoff>, shutdown: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                let mut queue = handoff.queue.lock().expect("handoff poisoned");
                queue.push_back(stream);
                drop(queue);
                handoff.available.notify_one();
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

fn worker_loop(engine: Arc<Engine>, handoff: Arc<Handoff>, shutdown: Arc<AtomicBool>) {
    loop {
        let stream = {
            let mut queue = handoff.queue.lock().expect("handoff poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (q, _) = handoff
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("handoff poisoned");
                queue = q;
            }
        };
        match stream {
            Some(stream) => handle_connection(&engine, stream, &shutdown),
            None => return,
        }
    }
}
