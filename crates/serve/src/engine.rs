//! The service engine: one shared, prepared [`Processor`] (catalog +
//! cross-query caches), the global [`AdmissionController`], and the
//! session registry.  Every query of every protocol goes through
//! [`Engine::execute`] — admission, per-session knobs, cancellation and
//! the unified `QueryRequest` execution path underneath.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::response::{QueryResult, Response, ServeError};
use crate::session::Session;
use xqjg_core::{Outcome, Processor};
use xqjg_store::{
    AdmissionConfig, AdmissionController, AdmissionStats, CancelToken, ConfigError, ExecConfig,
};

/// Server-wide counters: the admission controller's tallies plus the
/// session registry and query outcome counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Admission-controller counters.
    pub admission: AdmissionStats,
    /// Currently open sessions.
    pub sessions: usize,
    /// Queries that returned a result.
    pub queries_ok: u64,
    /// Queries that returned an error (any kind, including admission).
    pub queries_err: u64,
}

/// The long-lived heart of the service.  `Engine` is `Send + Sync`;
/// sessions on any thread execute through `&self` — the processor's
/// catalog is immutable after construction and its caches are concurrent,
/// so sessions genuinely warm each other.
pub struct Engine {
    processor: Arc<Processor>,
    admission: Arc<AdmissionController>,
    defaults: ExecConfig,
    sessions: Mutex<HashMap<u64, CancelToken>>,
    next_session: AtomicU64,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
}

impl Engine {
    /// Wrap a loaded processor into a shareable engine.  Builds the
    /// relational catalog eagerly (the one mutation sessions would need),
    /// so concurrent sessions only ever see an immutable processor.
    /// Deploy any indexes (e.g. [`Processor::create_default_indexes`])
    /// *before* calling this.
    pub fn new(
        mut processor: Processor,
        defaults: ExecConfig,
        admission: AdmissionConfig,
    ) -> Arc<Engine> {
        processor.database();
        Arc::new(Engine {
            processor: Arc::new(processor),
            admission: AdmissionController::new(admission),
            defaults,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
        })
    }

    /// Build an engine from the environment: the strict knob parser for
    /// the execution defaults ([`ExecConfig::try_from_env`]) and the
    /// admission knobs (`XQJG_GLOBAL_BUDGET`, `XQJG_MAX_SESSIONS`,
    /// `XQJG_QUEUE_TIMEOUT`).  A malformed variable is a clean startup
    /// error, not a silently-default knob.
    pub fn from_env(processor: Processor) -> Result<Arc<Engine>, ConfigError> {
        Ok(Engine::new(
            processor,
            ExecConfig::try_from_env()?,
            AdmissionConfig::try_from_env()?,
        ))
    }

    /// The shared processor.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The global admission controller (behind its `Arc` — admission
    /// takes `&Arc<Self>` so permits can hold their way home).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// The server-default execution knobs new sessions start from.
    pub fn defaults(&self) -> &ExecConfig {
        &self.defaults
    }

    /// Open a session: assign an id, register its cancellation token.
    pub fn open_session(&self) -> Session {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .insert(id, cancel.clone());
        Session::new(id, self.defaults.clone(), cancel)
    }

    /// Close a session (deregisters its cancellation token).
    pub fn close_session(&self, id: u64) {
        self.sessions
            .lock()
            .expect("session registry poisoned")
            .remove(&id);
    }

    /// Cancel session `id`'s in-flight (or queued) query.  Returns whether
    /// the session exists.
    pub fn cancel(&self, id: u64) -> bool {
        let registry = self.sessions.lock().expect("session registry poisoned");
        match registry.get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Execute a query for a session and fold the outcome into the typed
    /// [`Response`].
    pub fn execute(&self, session: &Session, query: &str) -> Response {
        match self.run(session, query) {
            Ok((out, granted)) => {
                self.queries_ok.fetch_add(1, Ordering::Relaxed);
                Response::Result(QueryResult {
                    items: out.items,
                    serialized_nodes: out.serialized_nodes,
                    elapsed_us: out.elapsed.as_micros(),
                    granted,
                })
            }
            Err(e) => {
                self.queries_err.fetch_add(1, Ordering::Relaxed);
                Response::Error(e)
            }
        }
    }

    /// Execute a query and return its EXPLAIN blocks instead of rows.
    pub fn explain(&self, session: &Session, query: &str) -> Response {
        match self.run(session, query) {
            Ok((out, _)) => {
                self.queries_ok.fetch_add(1, Ordering::Relaxed);
                Response::Explain(out.explain)
            }
            Err(e) => {
                self.queries_err.fetch_add(1, Ordering::Relaxed);
                Response::Error(e)
            }
        }
    }

    /// The one execution path: re-arm the token, prepare, pass admission
    /// (the session's pinned `mem_budget` is the demand; the grant — which
    /// may be a *reduced* slice under global pressure, forcing a spill —
    /// replaces it), run shared, release the permit.
    fn run(&self, session: &Session, query: &str) -> Result<(Outcome, Option<usize>), ServeError> {
        session.cancel_token().clear();
        let prepared = self.processor.prepare(query).map_err(ServeError::from)?;
        let permit = self
            .admission
            .admit(session.config().mem_budget, Some(session.cancel_token()))
            .map_err(ServeError::from)?;
        let granted = permit.granted();
        let cfg = session.config().clone().with_mem_budget(granted);
        let out = self.processor.execute_prepared_shared(
            &prepared,
            session.mode(),
            &cfg,
            session.cancel_token(),
        );
        drop(permit);
        match out {
            Ok(o) => Ok((o, granted)),
            Err(e) => Err(e.into()),
        }
    }

    /// Server-wide counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admission: self.admission.stats(),
            sessions: self
                .sessions
                .lock()
                .expect("session registry poisoned")
                .len(),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}
