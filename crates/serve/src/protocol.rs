//! Wire dispatch for one accepted connection.  The first request line
//! decides the protocol: `GET ` / `POST ` prefixes route to the HTTP/1.1
//! handler (one request per connection), anything else opens a
//! line-protocol session.
//!
//! Line protocol (one command per line, responses framed by
//! [`crate::Response::render_line`]).  The *client speaks first* — the
//! server cannot tell the protocols apart before the first request line —
//! and the `HELLO` banner precedes the response to that first command:
//!
//! ```text
//! HELLO xqjg-serve/1 session=<id>        <- banner, once the first command arrives
//! QUERY <xquery on one line>             -> RESULT/ITEMS/END or ERR
//! EXPLAIN <xquery on one line>           -> EXPLAIN/|.../END or ERR
//! SET <knob> <value>                     -> OK <knob>=<value> (XQJG_ prefix optional)
//! SET <knob>                             -> OK (resets the knob to its default)
//! MODE interpreter|stacked|joingraph     -> OK mode=<mode>
//! STATS                                  -> STATS <counters>
//! CANCEL <session-id>                    -> OK cancelled <id> or ERR session
//! ID                                     -> OK session=<id>
//! PING                                   -> OK pong
//! QUIT                                   -> OK bye (server closes)
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Engine;
use crate::response::{Response, ServeError};
use crate::session::Session;

/// Read timeout installed on every accepted socket so blocked readers can
/// observe the shutdown flag.
pub(crate) const READ_POLL: Duration = Duration::from_millis(100);

/// Handle one accepted connection to completion.
pub(crate) fn handle_connection(
    engine: &Arc<Engine>,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let first = match read_line(&mut stream, shutdown) {
        Ok(Some(line)) => line,
        _ => return,
    };
    if first.starts_with("GET ") || first.starts_with("POST ") {
        handle_http(engine, &first, &mut stream, shutdown);
    } else {
        handle_line_session(engine, first, &mut stream, shutdown);
    }
}

fn handle_line_session(
    engine: &Arc<Engine>,
    first: String,
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) {
    let mut session = engine.open_session();
    let banner = format!("HELLO xqjg-serve/1 session={}\n", session.id());
    if stream.write_all(banner.as_bytes()).is_err() {
        engine.close_session(session.id());
        return;
    }
    let mut line = Some(first);
    loop {
        let cmd = match line.take() {
            Some(l) => l,
            None => match read_line(stream, shutdown) {
                Ok(Some(l)) => l,
                _ => break,
            },
        };
        if cmd.trim().is_empty() {
            continue;
        }
        let (response, quit) = dispatch(engine, &mut session, cmd.trim());
        if stream.write_all(response.render_line().as_bytes()).is_err() || quit {
            break;
        }
    }
    engine.close_session(session.id());
}

/// Execute one line-protocol command.  Returns the response and whether
/// the connection should close.
pub fn dispatch(engine: &Engine, session: &mut Session, line: &str) -> (Response, bool) {
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd.to_ascii_uppercase().as_str() {
        "QUERY" if !rest.is_empty() => (engine.execute(session, rest), false),
        "EXPLAIN" if !rest.is_empty() => (engine.explain(session, rest), false),
        "QUERY" | "EXPLAIN" => (
            ServeError::protocol(format!("{cmd} requires a query on the same line")).into(),
            false,
        ),
        "SET" => {
            let (var, value) = match rest.split_once(char::is_whitespace) {
                Some((v, w)) => (v, w.trim()),
                None if !rest.is_empty() => (rest, ""),
                None => {
                    return (
                        ServeError::protocol("SET requires a knob name").into(),
                        false,
                    )
                }
            };
            match session.set_knob(var, value) {
                Ok(()) => (Response::Ok(format!("{var}={value}")), false),
                Err(e) => (ServeError::from(e).into(), false),
            }
        }
        "MODE" => match session.set_mode(rest) {
            Ok(mode) => (Response::Ok(format!("mode={mode:?}")), false),
            Err(e) => (e.into(), false),
        },
        "STATS" => (Response::Stats(engine.stats()), false),
        "CANCEL" => match rest.parse::<u64>() {
            Ok(id) if engine.cancel(id) => (Response::Ok(format!("cancelled {id}")), false),
            Ok(id) => (
                ServeError::session(format!("no such session: {id}")).into(),
                false,
            ),
            Err(_) => (
                ServeError::protocol("CANCEL requires a numeric session id").into(),
                false,
            ),
        },
        "ID" => (Response::Ok(format!("session={}", session.id())), false),
        "PING" => (Response::Ok("pong".to_string()), false),
        "QUIT" => (Response::Ok("bye".to_string()), true),
        other => (
            ServeError::protocol(format!("unknown command {other:?}")).into(),
            false,
        ),
    }
}

fn handle_http(
    engine: &Arc<Engine>,
    request_line: &str,
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    // Drain headers; the only one we act on is Content-Length.
    let mut content_length = 0usize;
    loop {
        match read_line(stream, shutdown) {
            Ok(Some(h)) if h.trim().is_empty() => break,
            Ok(Some(h)) => {
                if let Some((name, value)) = h.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    }
                }
            }
            _ => return,
        }
    }
    let body = match read_exact(stream, content_length, shutdown) {
        Ok(b) => String::from_utf8_lossy(&b).into_owned(),
        Err(_) => return,
    };
    let (status, reason, content_type, payload) = match (method, path) {
        ("GET", "/health") => (200, "OK", "text/plain", "ok\n".to_string()),
        ("GET", "/stats") => {
            let r = Response::Stats(engine.stats());
            (200, "OK", "application/json", r.render_json())
        }
        ("POST", "/query") | ("POST", "/explain") => {
            let session = engine.open_session();
            let query = body.trim();
            let r = if query.is_empty() {
                Response::Error(ServeError::protocol("empty request body"))
            } else if path == "/query" {
                engine.execute(&session, query)
            } else {
                engine.explain(&session, query)
            };
            engine.close_session(session.id());
            let (status, reason) = r.http_status();
            (status, reason, "application/json", r.render_json())
        }
        _ => (
            404,
            "Not Found",
            "application/json",
            Response::Error(ServeError::protocol(format!("no route {method} {path}")))
                .render_json(),
        ),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(payload.as_bytes());
}

/// Read one `\n`-terminated line (CR stripped), polling the shutdown flag
/// on read timeouts.  `Ok(None)` means EOF or shutdown.
fn read_line(stream: &mut TcpStream, shutdown: &AtomicBool) -> std::io::Result<Option<String>> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Ok((!line.is_empty()).then(|| String::from_utf8_lossy(&line).into_owned()))
            }
            Ok(_) => match byte[0] {
                b'\n' => return Ok(Some(String::from_utf8_lossy(&line).into_owned())),
                b'\r' => {}
                b => line.push(b),
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Read exactly `len` bytes, polling the shutdown flag on timeouts.
fn read_exact(
    stream: &mut TcpStream,
    len: usize,
    shutdown: &AtomicBool,
) -> std::io::Result<Vec<u8>> {
    let mut buf = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match stream.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "body shorter than Content-Length",
                ))
            }
            Ok(n) => read += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "server shutting down",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(buf)
}
