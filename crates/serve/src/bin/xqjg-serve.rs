//! The `xqjg-serve` binary: load (or generate) a document, build the
//! catalog and standing indexes, and serve queries until killed.
//!
//! ```text
//! xqjg-serve [--addr HOST:PORT] [--workers N] [--scale F | --xml FILE [--uri URI]]
//! ```
//!
//! With `--xml`, the file is parsed and served under `URI` (default: the
//! file name).  Without it, an XMark-like auction instance is generated at
//! `--scale` (default 0.1) under `auction.xml` — handy for smoke tests.
//!
//! Execution defaults come from the `XQJG_*` environment knobs through the
//! strict parser; admission from `XQJG_GLOBAL_BUDGET`, `XQJG_MAX_SESSIONS`
//! and `XQJG_QUEUE_TIMEOUT`.  A malformed variable is a startup error.

use std::process::ExitCode;

use xqjg_core::Processor;
use xqjg_data::{generate_xmark_encoded, XmarkConfig};
use xqjg_serve::{Engine, Server, DEFAULT_WORKERS};

struct Args {
    addr: String,
    workers: usize,
    scale: f64,
    xml: Option<String>,
    uri: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4817".to_string(),
        workers: DEFAULT_WORKERS,
        scale: 0.1,
        xml: None,
        uri: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--xml" => args.xml = Some(value("--xml")?),
            "--uri" => args.uri = Some(value("--uri")?),
            "--help" | "-h" => {
                return Err("usage: xqjg-serve [--addr HOST:PORT] [--workers N] \
                     [--scale F | --xml FILE [--uri URI]]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut processor = Processor::new();
    match &args.xml {
        Some(path) => {
            let xml = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xqjg-serve: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let uri = args.uri.clone().unwrap_or_else(|| {
                std::path::Path::new(path)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.clone())
            });
            if let Err(e) = processor.load_document(&uri, &xml) {
                eprintln!("xqjg-serve: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("xqjg-serve: serving {uri}");
        }
        None => {
            let doc = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(args.scale));
            processor.load_encoded("auction.xml", doc);
            eprintln!(
                "xqjg-serve: serving generated auction.xml (scale {})",
                args.scale
            );
        }
    }
    processor.create_default_indexes();
    let engine = match Engine::from_env(processor) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("xqjg-serve: bad configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(engine, &args.addr, args.workers) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xqjg-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    // Serve until the process is killed; the Drop impl handles teardown if
    // this thread ever unparks.
    loop {
        std::thread::park();
    }
}
