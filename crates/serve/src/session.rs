//! Per-session state: a pinned copy of the server's default execution
//! knobs (mutable through `SET`, parsed by the *same*
//! [`ExecConfig::apply_knob`] the environment goes through), the
//! evaluation mode, and the cancellation token registered with the engine
//! so other sessions can `CANCEL` this one's in-flight query.

use crate::response::ServeError;
use xqjg_core::Mode;
use xqjg_store::{CancelToken, ConfigError, ExecConfig};

/// One client session.  Sessions are plain data — the [`crate::Engine`]
/// owns the registry that maps session ids to cancellation tokens.
#[derive(Debug, Clone)]
pub struct Session {
    id: u64,
    mode: Mode,
    cfg: ExecConfig,
    cancel: CancelToken,
}

impl Session {
    pub(crate) fn new(id: u64, cfg: ExecConfig, cancel: CancelToken) -> Session {
        Session {
            id,
            mode: Mode::JoinGraph,
            cfg,
            cancel,
        }
    }

    /// The server-assigned session id (announced in the `HELLO` banner;
    /// the argument other sessions pass to `CANCEL`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The evaluation mode queries of this session run under.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The session's pinned knobs.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// The session's cancellation token (shared with the engine registry).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Apply one `SET` command.  Knob names accept both the full
    /// environment spelling (`XQJG_THREADS`) and the bare suffix
    /// (`threads`); values go through the one central parser, so the wire
    /// protocol and the environment agree on syntax, defaults and errors.
    pub fn set_knob(&mut self, var: &str, value: &str) -> Result<(), ConfigError> {
        let upper = var.to_ascii_uppercase();
        let full = if upper.starts_with("XQJG_") {
            upper
        } else {
            format!("XQJG_{upper}")
        };
        self.cfg.apply_knob(&full, value)
    }

    /// Switch the evaluation mode (`MODE` command).
    pub fn set_mode(&mut self, name: &str) -> Result<Mode, ServeError> {
        let mode = match name.to_ascii_lowercase().as_str() {
            "interpreter" => Mode::Interpreter,
            "stacked" => Mode::Stacked,
            "joingraph" | "join-graph" | "join_graph" => Mode::JoinGraph,
            other => {
                return Err(ServeError::protocol(format!(
                    "unknown mode {other:?}: expected interpreter, stacked or joingraph"
                )))
            }
        };
        self.mode = mode;
        Ok(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(1, ExecConfig::sequential(), CancelToken::new())
    }

    #[test]
    fn set_knob_accepts_both_spellings() {
        let mut s = session();
        s.set_knob("threads", "3").unwrap();
        assert_eq!(s.config().threads, 3);
        s.set_knob("XQJG_THREADS", "5").unwrap();
        assert_eq!(s.config().threads, 5);
        s.set_knob("mem_budget", "64k").unwrap();
        assert_eq!(s.config().mem_budget, Some(64 << 10));
        // Same strict parser as the environment: malformed is typed.
        let err = s.set_knob("threads", "lots").unwrap_err();
        assert_eq!(err.var, "XQJG_THREADS");
        // Unknown knobs are errors, not silent no-ops.
        assert!(s.set_knob("bogus", "1").is_err());
    }

    #[test]
    fn set_mode_parses() {
        let mut s = session();
        assert_eq!(s.set_mode("interpreter").unwrap(), Mode::Interpreter);
        assert_eq!(s.set_mode("JOINGRAPH").unwrap(), Mode::JoinGraph);
        assert_eq!(s.set_mode("stacked").unwrap(), Mode::Stacked);
        assert!(s.set_mode("vectorwise").is_err());
    }
}
