//! End-to-end smoke tests for the query service: real TCP connections,
//! both protocols, concurrent sessions under admission pressure, and a
//! clean shutdown that leaves the admission controller fully drained.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use xqjg_core::{Mode, Processor};
use xqjg_data::{generate_xmark_encoded, XmarkConfig};
use xqjg_serve::{Engine, Server};
use xqjg_store::{AdmissionConfig, ExecConfig};

const Q1: &str = r#"doc("auction.xml")/descendant::open_auction[bidder]"#;
const Q4: &str = "//closed_auction/price/text()";

fn processor(scale: f64) -> Processor {
    let doc = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(scale));
    let mut p = Processor::new();
    p.load_encoded("auction.xml", doc);
    p.create_default_indexes();
    p
}

fn engine(admission: AdmissionConfig) -> Arc<Engine> {
    Engine::new(processor(0.02), ExecConfig::sequential(), admission)
}

/// A line-protocol test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect and perform the client-speaks-first handshake (PING draws
    /// the HELLO banner).  Returns the client and its session id.
    fn connect(server: &Server) -> (Client, u64) {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut c = Client {
            reader,
            writer: stream,
        };
        c.send("PING");
        let hello = c.line();
        assert!(
            hello.starts_with("HELLO xqjg-serve/1 session="),
            "banner: {hello}"
        );
        let id = hello
            .rsplit_once('=')
            .expect("banner id")
            .1
            .parse()
            .expect("numeric id");
        assert_eq!(c.line(), "OK pong");
        (c, id)
    }

    fn line(&mut self) -> String {
        let mut s = String::new();
        self.reader.read_line(&mut s).expect("read line");
        s.trim_end().to_string()
    }

    fn send(&mut self, cmd: &str) {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
    }

    /// Send a command and read one single-line response.
    fn roundtrip(&mut self, cmd: &str) -> String {
        self.send(cmd);
        self.line()
    }

    /// Send `QUERY` and collect the framed response up to `END`; returns
    /// (RESULT header, ITEMS payload).
    fn query(&mut self, q: &str) -> (String, String) {
        self.send(&format!("QUERY {q}"));
        let header = self.line();
        if header.starts_with("ERR") {
            return (header, String::new());
        }
        let items = self.line();
        let end = self.line();
        assert_eq!(end, "END", "frame terminator");
        (header, items)
    }
}

/// The reference: single-session items for a query, rendered exactly as
/// the wire protocol renders them.
fn reference_items(engine: &Engine, query: &str, mode: Mode) -> String {
    let prepared = engine.processor().prepare(query).expect("prepare");
    let out = engine
        .processor()
        .execute_prepared_shared(
            &prepared,
            mode,
            &ExecConfig::sequential(),
            &xqjg_store::CancelToken::new(),
        )
        .expect("reference execution");
    let mut s = "ITEMS".to_string();
    for p in out.items {
        s.push(' ');
        s.push_str(&p.0.to_string());
    }
    s
}

#[test]
fn line_protocol_session_lifecycle() {
    let engine = engine(AdmissionConfig::default());
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 4).expect("start");

    let (mut c, id) = Client::connect(&server);
    assert_eq!(c.roundtrip("ID"), format!("OK session={id}"));

    // Queries return the byte-identical item sequence of a single-session
    // execution, in every mode.
    let expected = reference_items(&engine, Q1, Mode::JoinGraph);
    let (header, items) = c.query(Q1);
    assert!(header.starts_with("RESULT rows="), "header: {header}");
    assert_eq!(items, expected);

    assert_eq!(c.roundtrip("MODE interpreter"), "OK mode=Interpreter");
    let expected = reference_items(&engine, Q4, Mode::Interpreter);
    let (_, items) = c.query(Q4);
    assert_eq!(items, expected, "interpreter mode over the wire");
    assert_eq!(c.roundtrip("MODE joingraph"), "OK mode=JoinGraph");

    // SET goes through the one central knob parser: both spellings, typed
    // errors, unknown knobs rejected.
    assert_eq!(c.roundtrip("SET threads 2"), "OK threads=2");
    assert_eq!(
        c.roundtrip("SET XQJG_VECTORIZE off"),
        "OK XQJG_VECTORIZE=off"
    );
    assert!(c.roundtrip("SET threads lots").starts_with("ERR config"));
    assert!(c.roundtrip("SET warp_drive 1").starts_with("ERR config"));
    let (_, items) = c.query(Q1);
    assert_eq!(items, reference_items(&engine, Q1, Mode::JoinGraph));

    // EXPLAIN frames free-form plan text with a payload prefix.
    c.send(&format!("EXPLAIN {Q1}"));
    let header = c.line();
    assert!(header.starts_with("EXPLAIN blocks="), "header: {header}");
    let mut saw_payload = false;
    loop {
        let line = c.line();
        if line == "END" {
            break;
        }
        assert!(line.starts_with("| "), "payload framing: {line}");
        saw_payload = true;
    }
    assert!(saw_payload, "EXPLAIN produced plan text");

    // Protocol errors are typed, not connection-fatal.
    assert!(c.roundtrip("FROBNICATE").starts_with("ERR protocol"));
    assert!(c.roundtrip("QUERY").starts_with("ERR protocol"));
    assert!(c
        .roundtrip("QUERY let $x := (return 1")
        .starts_with("ERR parse"));
    assert_eq!(c.roundtrip("QUIT"), "OK bye");

    let stats = engine.stats();
    assert!(stats.queries_ok >= 4, "ok counter: {stats:?}");
    assert!(stats.queries_err >= 1, "err counter: {stats:?}");
    server.shutdown();
    assert!(engine.admission().drained());
}

fn http_roundtrip(server: &Server, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    (head.to_string(), body.to_string())
}

#[test]
fn http_endpoints() {
    let engine = engine(AdmissionConfig::default());
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 4).expect("start");

    let (head, body) = http_roundtrip(&server, "GET /health HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(body, "ok\n");

    let (head, body) = http_roundtrip(&server, "GET /stats HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(body.contains("\"admission\""), "{body}");

    let expected = reference_items(&engine, Q1, Mode::JoinGraph)
        .trim_start_matches("ITEMS")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(",");
    let request = format!(
        "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        Q1.len(),
        Q1
    );
    let (head, body) = http_roundtrip(&server, &request);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        body.contains(&format!("\"items\":[{expected}]")),
        "byte-identical items over HTTP: {body}"
    );

    let request = format!(
        "POST /explain HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        Q1.len(),
        Q1
    );
    let (head, body) = http_roundtrip(&server, &request);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(body.starts_with("{\"blocks\":["), "{body}");

    let bad = "POST /query HTTP/1.1\r\nContent-Length: 3\r\n\r\n(((";
    let (head, body) = http_roundtrip(&server, bad);
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("\"error\""), "{body}");

    let (head, _) = http_roundtrip(&server, "GET /nope HTTP/1.1\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    server.shutdown();
    assert!(engine.admission().drained());
}

#[test]
fn concurrent_sessions_queue_and_stay_byte_identical() {
    // One admission slot, eight clients: while the test holds the slot,
    // every arrival must wait in the FIFO queue, and once released every
    // response must still be byte-identical to the single-session
    // reference.
    let engine = engine(
        AdmissionConfig::default()
            .with_max_sessions(1)
            .with_queue_depth(16)
            .with_queue_timeout(Duration::from_secs(60)),
    );
    let server = Arc::new(Server::start(Arc::clone(&engine), "127.0.0.1:0", 8).expect("start"));
    let expected = Arc::new(reference_items(&engine, Q1, Mode::JoinGraph));

    // Occupy the only slot so the clients' first queries genuinely queue.
    let gate = engine.admission().admit(None, None).expect("gate permit");

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let server = Arc::clone(&server);
            let expected = Arc::clone(&expected);
            std::thread::Builder::new()
                .name(format!("client-{i}"))
                .spawn(move || {
                    let (mut c, _) = Client::connect(&server);
                    for _ in 0..3 {
                        let (header, items) = c.query(Q1);
                        assert!(header.starts_with("RESULT"), "{header}");
                        assert_eq!(items, *expected);
                    }
                    c.roundtrip("QUIT");
                })
                .expect("spawn")
        })
        .collect();
    // Wait until a good share of the fleet is visibly parked in the
    // queue, then open the gate.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while engine.admission().stats().waiting < 4 {
        assert!(std::time::Instant::now() < deadline, "clients never queued");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(gate);
    for c in clients {
        c.join().expect("client");
    }

    let stats = engine.stats();
    assert_eq!(stats.queries_ok, 24, "{stats:?}");
    assert_eq!(stats.queries_err, 0, "{stats:?}");
    assert!(stats.admission.queued >= 4, "queueing happened: {stats:?}");
    assert_eq!(stats.admission.rejected, 0, "{stats:?}");
    let server = Arc::into_inner(server).expect("sole owner");
    server.shutdown();
    assert!(engine.admission().drained());
}

#[test]
fn cancel_across_sessions_and_unknown_ids() {
    let engine = engine(AdmissionConfig::default());
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 4).expect("start");

    let (mut a, id_a) = Client::connect(&server);
    let (mut b, _) = Client::connect(&server);
    // B cancels A by id: the registry resolves it.  A's *next* query
    // re-arms its token, so the session stays usable.
    assert_eq!(
        b.roundtrip(&format!("CANCEL {id_a}")),
        format!("OK cancelled {id_a}")
    );
    let (header, _) = a.query(Q1);
    assert!(
        header.starts_with("RESULT"),
        "session survives a stale cancel: {header}"
    );

    assert!(b.roundtrip("CANCEL 999999").starts_with("ERR session"));
    assert!(b.roundtrip("CANCEL soon").starts_with("ERR protocol"));

    drop(a);
    drop(b);
    server.shutdown();
    let stats = engine.stats();
    assert_eq!(stats.admission.in_use, 0, "{stats:?}");
    assert_eq!(stats.sessions, 0, "sessions deregistered: {stats:?}");
}
