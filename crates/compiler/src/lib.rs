//! The loop-lifting XQuery compiler (rules of Fig. 13).
//!
//! Every X Query Core subexpression `e` compiles into an algebraic plan that
//! yields a table with schema `iter | pos | item`: row `[i, p, v]` states
//! that in iteration `i` of `e`'s innermost enclosing `for` loop, `e`'s
//! value contains the node with `pre` rank `v` at sequence position `p`.
//!
//! The compilation is fully compositional — which is exactly what produces
//! the tall, stacked plans of Fig. 4 that `xqjg-core` subsequently rewrites
//! into join graphs.

use std::collections::HashMap;
use std::fmt;
use xqjg_algebra::{CmpOp, Comparison, OpId, OpKind, Plan, Predicate, Scalar};
use xqjg_store::Value;
use xqjg_xml::{Axis, NodeKind, NodeTest};
use xqjg_xquery::{Condition, CoreExpr, GenCmp, Literal, Operand};

/// Compilation error (constructs outside the relational fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description.
    pub message: String,
}

impl CompileError {
    fn new(m: impl Into<String>) -> Self {
        CompileError { message: m.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// Result of compiling a query: the algebra plan rooted at a serialization
/// point.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The plan DAG (root is the serialization operator).
    pub plan: Plan,
}

/// Compile a normalized query into its initial (stacked) algebra plan.
pub fn compile(expr: &CoreExpr) -> Result<Compiled, CompileError> {
    let mut c = Compiler::new();
    // The top-level pseudo loop: a singleton table with column `iter`.
    let loop0 = c.plan.add(OpKind::Literal {
        columns: vec!["iter".to_string()],
        rows: vec![vec![Value::Int(1)]],
    });
    let env = Env::new();
    let q0 = c.compile_expr(expr, &env, loop0)?;
    let root = c.plan.add(OpKind::Serialize { input: q0 });
    c.plan.set_root(root);
    Ok(Compiled { plan: c.plan })
}

type Env = HashMap<String, OpId>;

struct Compiler {
    plan: Plan,
    doc: Option<OpId>,
}

impl Compiler {
    fn new() -> Self {
        Compiler {
            plan: Plan::new(),
            doc: None,
        }
    }

    /// The single shared `doc` leaf (all node references resolve against it,
    /// making it the only shared base relation of the DAG — cf. Fig. 4).
    fn doc_node(&mut self) -> OpId {
        if let Some(d) = self.doc {
            return d;
        }
        let d = self.plan.add(OpKind::DocTable);
        self.doc = Some(d);
        d
    }

    fn project(&mut self, input: OpId, cols: &[(&str, &str)]) -> OpId {
        self.plan.add(OpKind::Project {
            input,
            cols: cols
                .iter()
                .map(|(n, o)| (n.to_string(), o.to_string()))
                .collect(),
        })
    }

    fn compile_expr(
        &mut self,
        expr: &CoreExpr,
        env: &Env,
        loop_: OpId,
    ) -> Result<OpId, CompileError> {
        match expr {
            CoreExpr::Empty => {
                // The empty sequence: a literal iter|pos|item table with no rows.
                Ok(self.plan.add(OpKind::Literal {
                    columns: vec!["iter".to_string(), "pos".to_string(), "item".to_string()],
                    rows: vec![],
                }))
            }
            CoreExpr::Var(v) => env
                .get(v)
                .copied()
                .ok_or_else(|| CompileError::new(format!("unbound variable ${v}"))),
            CoreExpr::Doc(uri) => Ok(self.rule_doc(uri, loop_)),
            CoreExpr::Ddo(e) => {
                let q = self.compile_expr(e, env, loop_)?;
                Ok(self.rule_ddo(q))
            }
            CoreExpr::Step { input, axis, test } => {
                let q = self.compile_expr(input, env, loop_)?;
                self.rule_step(q, *axis, test)
            }
            CoreExpr::If { cond, then } => self.rule_if(cond, then, env, loop_),
            CoreExpr::For { var, seq, body } => self.rule_for(var, seq, body, env, loop_),
            CoreExpr::Let { var, value, body } => {
                let q_value = self.compile_expr(value, env, loop_)?;
                let mut env2 = env.clone();
                env2.insert(var.clone(), q_value);
                self.compile_expr(body, &env2, loop_)
            }
            CoreExpr::Seq(_) => Err(CompileError::new(
                "comma sequences must be decomposed into one query per item before relational compilation",
            )),
        }
    }

    /// Rule DOC.
    fn rule_doc(&mut self, uri: &str, loop_: OpId) -> OpId {
        let doc = self.doc_node();
        let selected = self.plan.add(OpKind::Select {
            input: doc,
            pred: Predicate::all([
                Comparison::col_eq_const("kind", NodeKind::Document.label()),
                Comparison::col_eq_const("name", uri),
            ]),
        });
        let loop_pos = self.plan.add(OpKind::Attach {
            input: loop_,
            col: "pos".to_string(),
            value: Value::Int(1),
        });
        let cross = self.plan.add(OpKind::Cross {
            left: selected,
            right: loop_pos,
        });
        self.project(cross, &[("iter", "iter"), ("pos", "pos"), ("item", "pre")])
    }

    /// Rule DDO: `ϱ pos:⟨item⟩ (δ (π iter,item (q)))`.
    fn rule_ddo(&mut self, q: OpId) -> OpId {
        let proj = self.project(q, &[("iter", "iter"), ("item", "item")]);
        let distinct = self.plan.add(OpKind::Distinct { input: proj });
        self.plan.add(OpKind::Rank {
            input: distinct,
            col: "pos".to_string(),
            order_by: vec!["item".to_string()],
        })
    }

    /// Rule STEP.
    fn rule_step(&mut self, q: OpId, axis: Axis, test: &NodeTest) -> Result<OpId, CompileError> {
        let axis_pred = axis_predicate(axis)?;
        let doc = self.doc_node();
        // Right branch: fetch the context nodes' structural properties.
        let ctx_join = self.plan.add(OpKind::Join {
            left: doc,
            right: q,
            pred: Predicate::single(Comparison::col_eq_col("pre", "item")),
        });
        let ctx = self.project(
            ctx_join,
            &[
                ("iter", "iter"),
                ("pre_o", "pre"),
                ("size_o", "size"),
                ("level_o", "level"),
            ],
        );
        // Left branch: candidate nodes satisfying the kind and name tests.
        let (kind, name) = test.predicates(axis);
        let mut conjuncts = Vec::new();
        if let Some(kind) = kind {
            conjuncts.push(Comparison::col_eq_const("kind", kind.label()));
        }
        if let Some(name) = name {
            conjuncts.push(Comparison::col_eq_const("name", name));
        }
        let candidates = if conjuncts.is_empty() {
            doc
        } else {
            self.plan.add(OpKind::Select {
                input: doc,
                pred: Predicate::all(conjuncts),
            })
        };
        let step_join = self.plan.add(OpKind::Join {
            left: candidates,
            right: ctx,
            pred: axis_pred,
        });
        let projected = self.project(step_join, &[("iter", "iter"), ("item", "pre")]);
        Ok(self.plan.add(OpKind::Rank {
            input: projected,
            col: "pos".to_string(),
            order_by: vec!["item".to_string()],
        }))
    }

    /// Rule IF (plus the COMP rule for general comparisons in conditions).
    fn rule_if(
        &mut self,
        cond: &Condition,
        then: &CoreExpr,
        env: &Env,
        loop_: OpId,
    ) -> Result<OpId, CompileError> {
        // Compile the condition into a table whose iter column lists the
        // iterations in which the condition holds.
        let q_if = match cond {
            Condition::Exists(e) => self.compile_expr(e, env, loop_)?,
            Condition::Compare { lhs, op, rhs } => self.rule_comp(lhs, *op, rhs, env, loop_)?,
        };
        // loopif ≡ δ(π iter (q_if))
        let iter_only = self.project(q_if, &[("iter", "iter")]);
        let loop_if = self.plan.add(OpKind::Distinct { input: iter_only });
        // Restrict every visible variable to the surviving iterations.
        let loop_if_renamed = self.project(loop_if, &[("iter1", "iter")]);
        let mut env2 = Env::new();
        for (var, q_var) in env {
            let join = self.plan.add(OpKind::Join {
                left: loop_if_renamed,
                right: *q_var,
                pred: Predicate::single(Comparison::col_eq_col("iter1", "iter")),
            });
            let restricted =
                self.project(join, &[("iter", "iter"), ("pos", "pos"), ("item", "item")]);
            env2.insert(var.clone(), restricted);
        }
        self.compile_expr(then, &env2, loop_if)
    }

    /// Rule COMP, generalized to literal and node-valued operands.
    ///
    /// Produces `@item:1 (@pos:1 (δ (π iter (σ cmp (…)))))` — a table listing
    /// the iterations in which the (existentially quantified) comparison
    /// holds.
    fn rule_comp(
        &mut self,
        lhs: &Operand,
        op: GenCmp,
        rhs: &Operand,
        env: &Env,
        loop_: OpId,
    ) -> Result<OpId, CompileError> {
        let filtered = match (lhs, rhs) {
            (Operand::Nodes(e), Operand::Literal(lit)) => {
                let atom = self.atomize(e, env, loop_, "")?;
                self.compare_with_literal(atom, op, lit)
            }
            (Operand::Literal(lit), Operand::Nodes(e)) => {
                let atom = self.atomize(e, env, loop_, "")?;
                self.compare_with_literal(atom, flip(op), lit)
            }
            (Operand::Nodes(l), Operand::Nodes(r)) => {
                let left = self.atomize(l, env, loop_, "_l")?;
                let right = self.atomize(r, env, loop_, "_r")?;
                let join = self.plan.add(OpKind::Join {
                    left,
                    right,
                    pred: Predicate::single(Comparison::col_eq_col("iter_l", "iter_r")),
                });
                let cmp = self.plan.add(OpKind::Select {
                    input: join,
                    pred: Predicate::single(Comparison::new(
                        Scalar::col("value_l"),
                        cmp_op(op),
                        Scalar::col("value_r"),
                    )),
                });
                self.project(cmp, &[("iter", "iter_l")])
            }
            (Operand::Literal(_), Operand::Literal(_)) => {
                return Err(CompileError::new(
                    "comparisons between two literals are not part of the data-bound fragment",
                ))
            }
        };
        let iter_proj = self.project(filtered, &[("iter", "iter")]);
        let distinct = self.plan.add(OpKind::Distinct { input: iter_proj });
        let with_pos = self.plan.add(OpKind::Attach {
            input: distinct,
            col: "pos".to_string(),
            value: Value::Int(1),
        });
        Ok(self.plan.add(OpKind::Attach {
            input: with_pos,
            col: "item".to_string(),
            value: Value::Int(1),
        }))
    }

    /// Atomization: join the operand's items with `doc` on `pre = item` to
    /// expose the `value` / `data` columns, with a column-name suffix so two
    /// atomized operands can be joined.
    fn atomize(
        &mut self,
        e: &CoreExpr,
        env: &Env,
        loop_: OpId,
        suffix: &str,
    ) -> Result<OpId, CompileError> {
        let q = self.compile_expr(e, env, loop_)?;
        let doc = self.doc_node();
        let join = self.plan.add(OpKind::Join {
            left: doc,
            right: q,
            pred: Predicate::single(Comparison::col_eq_col("pre", "item")),
        });
        let iter = format!("iter{suffix}");
        let value = format!("value{suffix}");
        let data = format!("data{suffix}");
        Ok(self.plan.add(OpKind::Project {
            input: join,
            cols: vec![
                (iter, "iter".to_string()),
                (value, "value".to_string()),
                (data, "data".to_string()),
            ],
        }))
    }

    /// `σ value/data cmp literal` over an atomized operand.
    fn compare_with_literal(&mut self, atom: OpId, op: GenCmp, lit: &Literal) -> OpId {
        let (column, value) = match lit {
            Literal::String(s) => ("value", Value::str(s.clone())),
            Literal::Integer(i) => ("data", Value::Dec(*i as f64)),
            Literal::Decimal(d) => ("data", Value::Dec(*d)),
        };
        self.plan.add(OpKind::Select {
            input: atom,
            pred: Predicate::single(Comparison::new(
                Scalar::col(column),
                cmp_op(op),
                Scalar::Const(value),
            )),
        })
    }

    /// Rule FOR.
    fn rule_for(
        &mut self,
        var: &str,
        seq: &CoreExpr,
        body: &CoreExpr,
        env: &Env,
        loop_: OpId,
    ) -> Result<OpId, CompileError> {
        let q_in = self.compile_expr(seq, env, loop_)?;
        // q$x ≡ #inner(q_in)
        let q_x = self.plan.add(OpKind::RowNum {
            input: q_in,
            col: "inner".to_string(),
        });
        // map ≡ π outer:iter, inner, sort:pos (q$x)
        let map = self.project(
            q_x,
            &[("outer", "iter"), ("inner", "inner"), ("sort", "pos")],
        );
        // New environment: lift the visible variables into the new loop.
        let mut env2 = Env::new();
        for (v, q_v) in env {
            let join = self.plan.add(OpKind::Join {
                left: map,
                right: *q_v,
                pred: Predicate::single(Comparison::col_eq_col("outer", "iter")),
            });
            let lifted = self.project(join, &[("iter", "inner"), ("pos", "pos"), ("item", "item")]);
            env2.insert(v.clone(), lifted);
        }
        // $x ↦ @pos:1 (π iter:inner, item (q$x))
        let x_proj = self.project(q_x, &[("iter", "inner"), ("item", "item")]);
        let x_bound = self.plan.add(OpKind::Attach {
            input: x_proj,
            col: "pos".to_string(),
            value: Value::Int(1),
        });
        env2.insert(var.to_string(), x_bound);
        // loop' ≡ π iter:inner (map)
        let loop_inner = self.project(map, &[("iter", "inner")]);
        let q_body = self.compile_expr(body, &env2, loop_inner)?;
        // Result: π iter:outer, pos:pos1, item (ϱ pos1:⟨sort,pos⟩ (q ⋈ iter=inner map))
        let join_back = self.plan.add(OpKind::Join {
            left: q_body,
            right: map,
            pred: Predicate::single(Comparison::col_eq_col("iter", "inner")),
        });
        let ranked = self.plan.add(OpKind::Rank {
            input: join_back,
            col: "pos1".to_string(),
            order_by: vec!["sort".to_string(), "pos".to_string()],
        });
        Ok(self.project(
            ranked,
            &[("iter", "outer"), ("pos", "pos1"), ("item", "item")],
        ))
    }
}

fn flip(op: GenCmp) -> GenCmp {
    match op {
        GenCmp::Lt => GenCmp::Gt,
        GenCmp::Le => GenCmp::Ge,
        GenCmp::Gt => GenCmp::Lt,
        GenCmp::Ge => GenCmp::Le,
        other => other,
    }
}

fn cmp_op(op: GenCmp) -> CmpOp {
    match op {
        GenCmp::Eq => CmpOp::Eq,
        GenCmp::Ne => CmpOp::Ne,
        GenCmp::Lt => CmpOp::Lt,
        GenCmp::Le => CmpOp::Le,
        GenCmp::Gt => CmpOp::Gt,
        GenCmp::Ge => CmpOp::Ge,
    }
}

/// The structural join predicate `axis(α)` of Fig. 3, phrased over the
/// candidate columns (`pre`, `size`, `level`) and the context columns
/// (`pre_o`, `size_o`, `level_o`).
pub fn axis_predicate(axis: Axis) -> Result<Predicate, CompileError> {
    use CmpOp::*;
    let pre = || Scalar::col("pre");
    let size = || Scalar::col("size");
    let level = || Scalar::col("level");
    let pre_o = || Scalar::col("pre_o");
    let size_o = || Scalar::col("size_o");
    let level_o = || Scalar::col("level_o");
    let one = || Scalar::cnst(1i64);
    let pred = match axis {
        Axis::Child | Axis::Attribute => Predicate::all([
            Comparison::new(pre_o(), Lt, pre()),
            Comparison::new(pre(), Le, pre_o() + size_o()),
            Comparison::new(level_o() + one(), Eq, level()),
        ]),
        Axis::Descendant => Predicate::all([
            Comparison::new(pre_o(), Lt, pre()),
            Comparison::new(pre(), Le, pre_o() + size_o()),
        ]),
        Axis::DescendantOrSelf => Predicate::all([
            Comparison::new(pre_o(), Le, pre()),
            Comparison::new(pre(), Le, pre_o() + size_o()),
        ]),
        Axis::Parent => Predicate::all([
            Comparison::new(pre(), Lt, pre_o()),
            Comparison::new(pre_o(), Le, pre() + size()),
            Comparison::new(level() + one(), Eq, level_o()),
        ]),
        Axis::Ancestor => Predicate::all([
            Comparison::new(pre(), Lt, pre_o()),
            Comparison::new(pre_o(), Le, pre() + size()),
        ]),
        Axis::AncestorOrSelf => Predicate::all([
            Comparison::new(pre(), Le, pre_o()),
            Comparison::new(pre_o(), Le, pre() + size()),
        ]),
        Axis::Following => Predicate::all([Comparison::new(pre(), Gt, pre_o() + size_o())]),
        Axis::Preceding => Predicate::all([Comparison::new(pre() + size(), Lt, pre_o())]),
        Axis::SelfAxis => Predicate::all([Comparison::new(pre(), Eq, pre_o())]),
        Axis::FollowingSibling | Axis::PrecedingSibling => {
            return Err(CompileError::new(format!(
                "the {} axis cannot be expressed as a conjunctive pre/size/level predicate; \
                 rewrite it via parent/child steps",
                axis.name()
            )))
        }
    };
    Ok(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqjg_algebra::{doc_relation, evaluate, histogram, result_items, EvalContext};
    use xqjg_xml::{encode_document, Pre};
    use xqjg_xquery::{interpret, parse_and_normalize};

    fn auction() -> xqjg_xml::DocTable {
        let xml = r#"<site>
            <open_auction id="a1"><initial>10</initial><bidder><increase>5</increase></bidder></open_auction>
            <open_auction id="a2"><initial>20</initial></open_auction>
            <open_auction id="a3"><initial>7</initial><bidder><increase>1</increase></bidder><bidder><increase>2</increase></bidder></open_auction>
            <closed_auction><price>600</price><itemref item="i1"/></closed_auction>
            <closed_auction><price>100</price><itemref item="i2"/></closed_auction>
            <item id="i1"><name>bike</name></item>
            <item id="i2"><name>car</name></item>
          </site>"#;
        encode_document("auction.xml", xml).unwrap()
    }

    /// Compile a query, evaluate the stacked plan directly, and compare the
    /// resulting node sequence against the reference interpreter.
    fn assert_matches_interpreter(query: &str) -> Vec<Pre> {
        let doc = auction();
        let core = parse_and_normalize(query, Some("auction.xml")).unwrap();
        let expected = interpret(&core, &doc).unwrap();
        let compiled = compile(&core).unwrap();
        let rel = doc_relation(&doc);
        let result = evaluate(&compiled.plan, &EvalContext { doc: &rel });
        let actual = result_items(&result);
        assert_eq!(actual, expected, "query {query:?}");
        expected
    }

    #[test]
    fn q1_like_stacked_plan_matches_interpreter() {
        let r =
            assert_matches_interpreter(r#"doc("auction.xml")/descendant::open_auction[bidder]"#);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn value_predicates_match_interpreter() {
        assert_matches_interpreter(r#"//closed_auction[price > 500]"#);
        assert_matches_interpreter(r#"//open_auction[@id = "a2"]/initial"#);
        assert_matches_interpreter(r#"//closed_auction[price > 5000]"#);
    }

    #[test]
    fn nested_for_loops_match_interpreter() {
        assert_matches_interpreter(r#"for $a in //open_auction return $a/bidder/increase"#);
        assert_matches_interpreter(
            r#"for $a in //open_auction[bidder] return $a/descendant::increase"#,
        );
    }

    #[test]
    fn value_join_matches_interpreter() {
        assert_matches_interpreter(
            r#"for $ca in //closed_auction[price > 500], $i in //item
               where $ca/itemref/@item = $i/@id
               return $i/name"#,
        );
    }

    #[test]
    fn let_and_text_steps_match_interpreter() {
        assert_matches_interpreter(
            r#"let $d := doc("auction.xml") for $i in $d//item return $i/name/text()"#,
        );
        assert_matches_interpreter(r#"//item/name/text()"#);
    }

    #[test]
    fn reverse_axes_match_interpreter() {
        assert_matches_interpreter(r#"for $b in //bidder return $b/ancestor::open_auction"#);
        assert_matches_interpreter(r#"for $i in //increase return $i/parent::bidder"#);
    }

    #[test]
    fn stacked_plan_has_scattered_blocking_operators() {
        // The compositional compilation of Q1 produces the Fig. 4 shape:
        // several ϱ and δ operators spread over the plan, one shared doc leaf.
        let core = parse_and_normalize(
            r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
            None,
        )
        .unwrap();
        let compiled = compile(&core).unwrap();
        let h = histogram(&compiled.plan);
        assert!(h.rank >= 4, "expected several ϱ operators, got {h:?}");
        assert!(h.distinct >= 3, "expected several δ operators, got {h:?}");
        assert!(
            h.join >= 5,
            "expected joins spread over the plan, got {h:?}"
        );
        assert_eq!(h.doc, 1, "doc must be a single shared leaf");
        assert!(h.total > 25, "stacked plans are large, got {h:?}");
    }

    #[test]
    fn sequences_are_rejected() {
        let core = parse_and_normalize(
            r#"for $i in //item return ($i/name, $i/name)"#,
            Some("auction.xml"),
        )
        .unwrap();
        assert!(compile(&core).is_err());
    }

    #[test]
    fn sibling_axes_are_rejected_with_guidance() {
        let err = axis_predicate(Axis::FollowingSibling).unwrap_err();
        assert!(err.message.contains("parent/child"));
    }

    #[test]
    fn empty_sequence_compiles_to_empty_result() {
        let core = parse_and_normalize("()", None).unwrap();
        let compiled = compile(&core).unwrap();
        let doc = auction();
        let rel = doc_relation(&doc);
        let result = evaluate(&compiled.plan, &EvalContext { doc: &rel });
        assert_eq!(result.len(), 0);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let core = CoreExpr::Var("nope".to_string());
        assert!(compile(&core).is_err());
    }
}
