//! The SQL subset the join-graph-isolating compiler emits.
//!
//! A query is a single `SELECT [DISTINCT] … FROM … WHERE … ORDER BY …`
//! block over base-table aliases — no grouping, no aggregation, no nesting
//! (Section III-C / Fig. 8).  This module defines the AST plus a printer and
//! a parser for exactly this subset, so the XQuery front half and the
//! relational back half communicate through ordinary SQL text, as in the
//! paper's setup.

use std::collections::HashSet;
use std::fmt;
use xqjg_store::Value;

/// A column reference `alias.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Table alias.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Build a column reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// A scalar SQL expression (column, literal, or sum).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference.
    Col(ColRef),
    /// Literal value.
    Lit(Value),
    /// `a + b`
    Add(Box<SqlExpr>, Box<SqlExpr>),
}

impl std::ops::Add for SqlExpr {
    type Output = SqlExpr;

    fn add(self, other: SqlExpr) -> Self {
        SqlExpr::Add(Box::new(self), Box::new(other))
    }
}

impl SqlExpr {
    /// Column expression helper.
    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Self {
        SqlExpr::Col(ColRef::new(table, column))
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Self {
        SqlExpr::Lit(v.into())
    }

    /// Table aliases referenced by the expression.
    pub fn tables(&self, out: &mut HashSet<String>) {
        match self {
            SqlExpr::Col(c) => {
                out.insert(c.table.clone());
            }
            SqlExpr::Lit(_) => {}
            SqlExpr::Add(a, b) => {
                a.tables(out);
                b.tables(out);
            }
        }
    }

    /// If the expression is a bare column of the given alias, return the
    /// column name.
    pub fn as_column_of(&self, alias: &str) -> Option<&str> {
        match self {
            SqlExpr::Col(c) if c.table == alias => Some(&c.column),
            _ => None,
        }
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Col(c) => write!(f, "{c}"),
            SqlExpr::Lit(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            SqlExpr::Lit(v) => write!(f, "{v}"),
            SqlExpr::Add(a, b) => write!(f, "{a} + {b}"),
        }
    }
}

/// SQL comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlCmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl SqlCmp {
    /// SQL syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            SqlCmp::Eq => "=",
            SqlCmp::Ne => "<>",
            SqlCmp::Lt => "<",
            SqlCmp::Le => "<=",
            SqlCmp::Gt => ">",
            SqlCmp::Ge => ">=",
        }
    }

    /// Operator with operand sides swapped.
    pub fn flip(self) -> SqlCmp {
        match self {
            SqlCmp::Lt => SqlCmp::Gt,
            SqlCmp::Le => SqlCmp::Ge,
            SqlCmp::Gt => SqlCmp::Lt,
            SqlCmp::Ge => SqlCmp::Le,
            other => other,
        }
    }

    /// Evaluate against an ordering.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            SqlCmp::Eq => ord == Equal,
            SqlCmp::Ne => ord != Equal,
            SqlCmp::Lt => ord == Less,
            SqlCmp::Le => ord != Greater,
            SqlCmp::Gt => ord == Greater,
            SqlCmp::Ge => ord != Less,
        }
    }
}

/// One conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlPredicate {
    /// Left operand.
    pub lhs: SqlExpr,
    /// Operator.
    pub op: SqlCmp,
    /// Right operand.
    pub rhs: SqlExpr,
}

impl SqlPredicate {
    /// Build a predicate.
    pub fn new(lhs: SqlExpr, op: SqlCmp, rhs: SqlExpr) -> Self {
        SqlPredicate { lhs, op, rhs }
    }

    /// Aliases referenced by the predicate.
    pub fn tables(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.lhs.tables(&mut out);
        self.rhs.tables(&mut out);
        out
    }
}

impl fmt::Display for SqlPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// An item of the `SELECT` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `alias.*`
    Star(String),
    /// `expr AS name`
    Expr {
        /// The selected expression.
        expr: SqlExpr,
        /// Output column name.
        alias: String,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => write!(f, "{expr} AS {alias}"),
        }
    }
}

/// A table reference in the `FROM` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// Base table name.
    pub table: String,
    /// Alias.
    pub alias: String,
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} AS {}", self.table, self.alias)
    }
}

/// An `ORDER BY` item (always ascending in this workload).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderItem {
    /// The ordering column.
    pub col: ColRef,
}

/// A single `SELECT [DISTINCT] … FROM … WHERE … ORDER BY …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SfwQuery {
    /// `DISTINCT`?
    pub distinct: bool,
    /// Select list.
    pub select: Vec<SelectItem>,
    /// From list.
    pub from: Vec<FromItem>,
    /// Conjunctive where clause.
    pub where_clause: Vec<SqlPredicate>,
    /// Order-by list.
    pub order_by: Vec<OrderItem>,
}

impl SfwQuery {
    /// Render the query as SQL text (the form shipped to the back-end,
    /// cf. Fig. 8 / Fig. 9).
    pub fn to_sql(&self) -> String {
        let mut out = String::from("SELECT ");
        if self.distinct {
            out.push_str("DISTINCT ");
        }
        let select: Vec<String> = self.select.iter().map(|s| s.to_string()).collect();
        out.push_str(&select.join(", "));
        out.push_str("\nFROM ");
        let from: Vec<String> = self.from.iter().map(|s| s.to_string()).collect();
        out.push_str(&from.join(", "));
        if !self.where_clause.is_empty() {
            out.push_str("\nWHERE ");
            let preds: Vec<String> = self.where_clause.iter().map(|p| p.to_string()).collect();
            out.push_str(&preds.join("\n  AND "));
        }
        if !self.order_by.is_empty() {
            out.push_str("\nORDER BY ");
            let order: Vec<String> = self.order_by.iter().map(|o| o.col.to_string()).collect();
            out.push_str(&order.join(", "));
        }
        out
    }

    /// The alias list of the FROM clause.
    pub fn aliases(&self) -> Vec<&str> {
        self.from.iter().map(|f| f.alias.as_str()).collect()
    }

    /// Predicates that only reference the given alias (and constants).
    pub fn local_predicates(&self, alias: &str) -> Vec<&SqlPredicate> {
        self.where_clause
            .iter()
            .filter(|p| {
                let ts = p.tables();
                ts.len() == 1 && ts.contains(alias) || ts.is_empty()
            })
            .collect()
    }

    /// Predicates that reference more than one alias (join predicates).
    pub fn join_predicates(&self) -> Vec<&SqlPredicate> {
        self.where_clause
            .iter()
            .filter(|p| p.tables().len() > 1)
            .collect()
    }
}

impl fmt::Display for SfwQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built rendition of QSQL1 (Fig. 8).
    pub(crate) fn q1_sql() -> SfwQuery {
        let axis = |outer: &str, inner: &str| -> Vec<SqlPredicate> {
            vec![
                SqlPredicate::new(
                    SqlExpr::col(inner, "pre"),
                    SqlCmp::Gt,
                    SqlExpr::col(outer, "pre"),
                ),
                SqlPredicate::new(
                    SqlExpr::col(inner, "pre"),
                    SqlCmp::Le,
                    SqlExpr::col(outer, "pre") + SqlExpr::col(outer, "size"),
                ),
            ]
        };
        let mut where_clause = vec![
            SqlPredicate::new(SqlExpr::col("d1", "kind"), SqlCmp::Eq, SqlExpr::lit("DOC")),
            SqlPredicate::new(
                SqlExpr::col("d1", "name"),
                SqlCmp::Eq,
                SqlExpr::lit("auction.xml"),
            ),
            SqlPredicate::new(SqlExpr::col("d2", "kind"), SqlCmp::Eq, SqlExpr::lit("ELEM")),
            SqlPredicate::new(
                SqlExpr::col("d2", "name"),
                SqlCmp::Eq,
                SqlExpr::lit("open_auction"),
            ),
        ];
        where_clause.extend(axis("d1", "d2"));
        where_clause.push(SqlPredicate::new(
            SqlExpr::col("d3", "kind"),
            SqlCmp::Eq,
            SqlExpr::lit("ELEM"),
        ));
        where_clause.push(SqlPredicate::new(
            SqlExpr::col("d3", "name"),
            SqlCmp::Eq,
            SqlExpr::lit("bidder"),
        ));
        where_clause.extend(axis("d2", "d3"));
        where_clause.push(SqlPredicate::new(
            SqlExpr::col("d2", "level") + SqlExpr::lit(1i64),
            SqlCmp::Eq,
            SqlExpr::col("d3", "level"),
        ));
        SfwQuery {
            distinct: true,
            select: vec![SelectItem::Star("d2".to_string())],
            from: (1..=3)
                .map(|i| FromItem {
                    table: "doc".to_string(),
                    alias: format!("d{i}"),
                })
                .collect(),
            where_clause,
            order_by: vec![OrderItem {
                col: ColRef::new("d2", "pre"),
            }],
        }
    }

    #[test]
    fn prints_fig8_style_sql() {
        let sql = q1_sql().to_sql();
        assert!(sql.starts_with("SELECT DISTINCT d2.*"));
        assert!(sql.contains("FROM doc AS d1, doc AS d2, doc AS d3"));
        assert!(sql.contains("d1.kind = 'DOC'"));
        assert!(sql.contains("d2.pre + d2.size"));
        assert!(sql.trim_end().ends_with("ORDER BY d2.pre"));
    }

    #[test]
    fn local_and_join_predicates_are_split() {
        let q = q1_sql();
        assert_eq!(q.local_predicates("d1").len(), 2);
        assert_eq!(q.local_predicates("d2").len(), 2);
        // 2 axis conjuncts per step + level conjunct = 5 join predicates.
        assert_eq!(q.join_predicates().len(), 5);
        assert_eq!(q.aliases(), vec!["d1", "d2", "d3"]);
    }

    #[test]
    fn expr_helpers() {
        let e = SqlExpr::col("d1", "pre") + SqlExpr::lit(1i64);
        let mut ts = HashSet::new();
        e.tables(&mut ts);
        assert!(ts.contains("d1"));
        assert_eq!(SqlExpr::col("d1", "pre").as_column_of("d1"), Some("pre"));
        assert_eq!(SqlExpr::col("d1", "pre").as_column_of("d2"), None);
        assert_eq!(e.to_string(), "d1.pre + 1");
        assert_eq!(SqlExpr::lit("o'hara").to_string(), "'o''hara'");
    }

    #[test]
    fn cmp_flip_and_eval() {
        use std::cmp::Ordering::*;
        assert_eq!(SqlCmp::Lt.flip(), SqlCmp::Gt);
        assert!(SqlCmp::Ge.eval(Equal));
        assert!(!SqlCmp::Ne.eval(Equal));
    }
}
