//! Physical plans: DB2-style operator trees (Table VII).
//!
//! A physical plan is a left-deep join tree over the FROM aliases — each
//! join step adds one alias, accessed either through a B-tree index
//! (`IXSCAN`, probed per outer row for `NLJOIN`) or a table scan — topped by
//! the plan tail (`SORT` with duplicate elimination, `RETURN`).

use crate::sql::{ColRef, SelectItem, SqlExpr, SqlPredicate};

/// Index probe bounds: an equality-bound key prefix followed by at most one
/// range-bound key column.  The bound expressions may refer to aliases that
/// are already joined (index nested-loop probing) or to constants only.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bounds {
    /// `key_column = expr` constraints, in index key order.
    pub eq: Vec<(String, SqlExpr)>,
    /// The range-bound key column following the equality prefix, if any.
    pub range_col: Option<String>,
    /// Lower bound `(expr, inclusive)` on `range_col`.
    pub lower: Option<(SqlExpr, bool)>,
    /// Upper bound `(expr, inclusive)` on `range_col`.
    pub upper: Option<(SqlExpr, bool)>,
}

impl Bounds {
    /// Number of key columns constrained by these bounds.
    pub fn matched_columns(&self) -> usize {
        self.eq.len() + usize::from(self.range_col.is_some())
    }
}

/// How one alias is accessed.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Full scan of the base table with pushed-down filters (`TBSCAN`).
    TableScan {
        /// Predicates evaluated against each scanned row.
        preds: Vec<SqlPredicate>,
    },
    /// B-tree index scan (`IXSCAN`).
    IndexScan {
        /// Name of the index being scanned.
        index: String,
        /// Probe bounds.
        bounds: Bounds,
        /// Predicates not covered by the bounds, checked per fetched row.
        residual: Vec<SqlPredicate>,
    },
}

impl Access {
    /// A short label for EXPLAIN output.
    pub fn label(&self) -> String {
        match self {
            Access::TableScan { preds } => format!("TBSCAN [{} filter(s)]", preds.len()),
            Access::IndexScan {
                index,
                bounds,
                residual,
            } => format!(
                "IXSCAN ix={index} ({} key col(s) bound, {} residual)",
                bounds.matched_columns(),
                residual.len()
            ),
        }
    }
}

/// Join method used when adding an alias to the running join tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMethod {
    /// Index / scan nested-loop join (the inner access is probed per outer
    /// row; with an `IndexScan` inner this is DB2's NLJOIN–IXSCAN pair).
    NestedLoop,
    /// Hash join on equality keys.
    Hash,
}

/// A node of the join tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinNode {
    /// The leftmost (first) alias.
    Leaf {
        /// Alias name.
        alias: String,
        /// Base table name.
        table: String,
        /// Access path.
        access: Access,
        /// Estimated output rows.
        est_rows: f64,
    },
    /// Join of the accumulated outer tree with one more alias.
    Join {
        /// The already-built outer tree.
        outer: Box<JoinNode>,
        /// The newly added alias.
        alias: String,
        /// Base table of the new alias.
        table: String,
        /// Access path for the new alias.
        access: Access,
        /// Join method.
        method: JoinMethod,
        /// For hash joins: `(outer expression, inner column)` equality keys.
        hash_keys: Vec<(SqlExpr, String)>,
        /// Predicates evaluated after the join (not covered by access/keys).
        residual: Vec<SqlPredicate>,
        /// Estimated output rows of this join.
        est_rows: f64,
    },
}

impl JoinNode {
    /// The alias introduced by this node.
    pub fn alias(&self) -> &str {
        match self {
            JoinNode::Leaf { alias, .. } | JoinNode::Join { alias, .. } => alias,
        }
    }

    /// Aliases bound by this subtree, outer-to-inner.
    pub fn bound_aliases(&self) -> Vec<String> {
        match self {
            JoinNode::Leaf { alias, .. } => vec![alias.clone()],
            JoinNode::Join { outer, alias, .. } => {
                let mut v = outer.bound_aliases();
                v.push(alias.clone());
                v
            }
        }
    }

    /// Estimated cardinality of the subtree.
    pub fn est_rows(&self) -> f64 {
        match self {
            JoinNode::Leaf { est_rows, .. } | JoinNode::Join { est_rows, .. } => *est_rows,
        }
    }
}

/// A complete physical plan: join tree plus plan tail.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    /// The join tree.
    pub root: JoinNode,
    /// Output expressions.
    pub select: Vec<SelectItem>,
    /// Duplicate elimination over the select list?
    pub distinct: bool,
    /// Ordering of the final result.
    pub order_by: Vec<ColRef>,
    /// Optimizer's total cost estimate (arbitrary units).
    pub est_cost: f64,
    /// Optimizer's cardinality estimate for the join result.
    pub est_rows: f64,
}

impl PhysPlan {
    /// The chosen join order (alias names, first-accessed first) — the
    /// artifact Figures 10 and 11 visualize.
    pub fn join_order(&self) -> Vec<String> {
        self.root.bound_aliases()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_matched_columns() {
        let b = Bounds {
            eq: vec![
                ("name".to_string(), SqlExpr::lit("price")),
                ("kind".to_string(), SqlExpr::lit("ELEM")),
            ],
            range_col: Some("data".to_string()),
            lower: Some((SqlExpr::lit(500i64), false)),
            upper: None,
        };
        assert_eq!(b.matched_columns(), 3);
        assert_eq!(Bounds::default().matched_columns(), 0);
    }

    #[test]
    fn join_node_alias_tracking() {
        let leaf = JoinNode::Leaf {
            alias: "d1".into(),
            table: "doc".into(),
            access: Access::TableScan { preds: vec![] },
            est_rows: 10.0,
        };
        let join = JoinNode::Join {
            outer: Box::new(leaf),
            alias: "d2".into(),
            table: "doc".into(),
            access: Access::IndexScan {
                index: "nksp".into(),
                bounds: Bounds::default(),
                residual: vec![],
            },
            method: JoinMethod::NestedLoop,
            hash_keys: vec![],
            residual: vec![],
            est_rows: 20.0,
        };
        assert_eq!(
            join.bound_aliases(),
            vec!["d1".to_string(), "d2".to_string()]
        );
        assert_eq!(join.alias(), "d2");
        assert_eq!(join.est_rows(), 20.0);
    }

    #[test]
    fn access_labels() {
        let a = Access::TableScan { preds: vec![] };
        assert!(a.label().contains("TBSCAN"));
        let b = Access::IndexScan {
            index: "nkspl".into(),
            bounds: Bounds::default(),
            residual: vec![],
        };
        assert!(b.label().contains("nkspl"));
    }
}
