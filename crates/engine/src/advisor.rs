//! Workload-driven B-tree index advisor.
//!
//! Plays the role of DB2's `db2advis` (Section IV, Table VI): given a
//! workload of join-graph SFW queries, propose composite B-tree index keys
//! that support the queries' access patterns.  The heuristic mirrors what
//! the paper observes the real advisor doing:
//!
//! * equality-constrained columns first (ordered by increasing cardinality —
//!   `name`/`kind` prefixes),
//! * then columns used in range predicates or join keys (`pre`, `size`,
//!   `data`, `value`),
//! * remaining referenced columns become INCLUDE columns so the index covers
//!   the query,
//! * one clustered index on the ordering column (`pre`) supports
//!   serialization scans.
//!
//! Index names are derived from the key-column initials, matching the
//! paper's `nksp`, `nkspl`, `vnlkp`, `p|nvkls` naming.

use crate::sql::{SfwQuery, SqlCmp, SqlExpr};
use std::collections::{BTreeSet, HashMap};
use xqjg_store::{Database, IndexDef};

/// A proposed index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexProposal {
    /// Generated index name (column initials).
    pub name: String,
    /// Target table.
    pub table: String,
    /// Key columns in order.
    pub key_columns: Vec<String>,
    /// INCLUDE columns (carried on leaves, not part of the search key).
    pub include_columns: Vec<String>,
    /// Should the index be clustered?
    pub clustered: bool,
    /// Human-readable reason, shown in the Table VI reproduction.
    pub rationale: String,
}

impl IndexProposal {
    /// Convert the proposal into DDL for [`Database::create_index`].
    pub fn to_def(&self) -> IndexDef {
        IndexDef {
            name: self.name.clone(),
            table: self.table.clone(),
            key_columns: self.key_columns.clone(),
            include_columns: self.include_columns.clone(),
            clustered: self.clustered,
        }
    }
}

/// Column-initial used for index naming (`pre + size` is folded into `s`,
/// matching the paper's computed-column remark).
fn initial(column: &str) -> &'static str {
    match column {
        "pre" => "p",
        "size" => "s",
        "level" => "l",
        "kind" => "k",
        "name" => "n",
        "value" => "v",
        "data" => "d",
        _ => "x",
    }
}

/// Propose a B-tree index set for the given workload.
pub fn advise(workload: &[SfwQuery], db: &Database) -> Vec<IndexProposal> {
    let mut proposals: Vec<IndexProposal> = Vec::new();
    let mut seen_keys: BTreeSet<(String, Vec<String>)> = BTreeSet::new();

    for query in workload {
        for from in &query.from {
            let alias = &from.alias;
            let table = &from.table;
            // Classify the columns this alias is accessed through.
            let mut eq_cols: Vec<String> = Vec::new();
            let mut range_cols: Vec<String> = Vec::new();
            let mut join_cols: Vec<String> = Vec::new();
            let mut referenced: BTreeSet<String> = BTreeSet::new();

            for pred in &query.where_clause {
                let tables = pred.tables();
                if !tables.contains(alias) {
                    continue;
                }
                for (side, other) in [(&pred.lhs, &pred.rhs), (&pred.rhs, &pred.lhs)] {
                    if let Some(col) = side.as_column_of(alias) {
                        referenced.insert(col.to_string());
                        let other_is_const = matches!(other, SqlExpr::Lit(_));
                        match (pred.op, other_is_const) {
                            (SqlCmp::Eq, true) => push_unique(&mut eq_cols, col),
                            (SqlCmp::Eq, false) => push_unique(&mut join_cols, col),
                            (_, true) => push_unique(&mut range_cols, col),
                            (_, false) => push_unique(&mut range_cols, col),
                        }
                    }
                    collect_columns(side, alias, &mut referenced);
                    collect_columns(other, alias, &mut referenced);
                }
            }
            for item in &query.select {
                match item {
                    crate::sql::SelectItem::Star(a) if a == alias => {
                        if let Some(t) = db.table(table) {
                            for c in t.schema().columns() {
                                referenced.insert(c.clone());
                            }
                        }
                    }
                    crate::sql::SelectItem::Expr { expr, .. } => {
                        collect_columns(expr, alias, &mut referenced);
                    }
                    _ => {}
                }
            }
            for o in &query.order_by {
                if o.col.table == *alias {
                    referenced.insert(o.col.column.clone());
                }
            }

            if eq_cols.is_empty() && range_cols.is_empty() && join_cols.is_empty() {
                continue;
            }

            // Order the equality prefix by increasing distinct count (low
            // cardinality first — name/kind style partitioning).
            if let Some(stats) = db.stats(table) {
                eq_cols.sort_by_key(|c| stats.column(c).map(|s| s.distinct).unwrap_or(usize::MAX));
            }
            let mut key: Vec<String> = Vec::new();
            for c in eq_cols
                .iter()
                .chain(range_cols.iter())
                .chain(join_cols.iter())
            {
                push_unique(&mut key, c);
            }
            let include: Vec<String> = referenced
                .iter()
                .filter(|c| !key.contains(c))
                .cloned()
                .collect();

            let dedup_key = (table.clone(), key.clone());
            if !seen_keys.insert(dedup_key) {
                continue;
            }
            let name = key.iter().map(|c| initial(c)).collect::<String>();
            proposals.push(IndexProposal {
                name: unique_name(&proposals, &name),
                table: table.clone(),
                key_columns: key,
                include_columns: include,
                clustered: false,
                rationale: format!(
                    "supports alias {alias} ({} equality, {} range, {} join column(s))",
                    eq_cols.len(),
                    range_cols.len(),
                    join_cols.len()
                ),
            });
        }
    }

    // One clustered index on the ordering / serialization column.
    let order_tables: BTreeSet<String> = workload
        .iter()
        .flat_map(|q| {
            q.order_by.iter().filter_map(|o| {
                q.from
                    .iter()
                    .find(|f| f.alias == o.col.table)
                    .map(|f| (f.table.clone(), o.col.column.clone()))
            })
        })
        .map(|(t, c)| format!("{t}\u{1}{c}"))
        .collect();
    for key in order_tables {
        let (table, column) = key.split_once('\u{1}').expect("separator present");
        let already = proposals.iter().any(|p| p.clustered && p.table == table);
        if already {
            continue;
        }
        let include: Vec<String> = db
            .table(table)
            .map(|t| {
                t.schema()
                    .columns()
                    .iter()
                    .filter(|c| c.as_str() != column)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        let name = format!(
            "{}|{}",
            initial(column),
            include.iter().map(|c| initial(c)).collect::<String>()
        );
        proposals.push(IndexProposal {
            name,
            table: table.to_string(),
            key_columns: vec![column.to_string()],
            include_columns: include,
            clustered: true,
            rationale: "serialization support (document-order scans of result subtrees)"
                .to_string(),
        });
    }

    proposals
}

/// Create every proposed index in the database.
pub fn deploy(proposals: &[IndexProposal], db: &mut Database) {
    for p in proposals {
        db.create_index(p.to_def());
    }
}

fn push_unique(v: &mut Vec<String>, c: &str) {
    if !v.iter().any(|x| x == c) {
        v.push(c.to_string());
    }
}

fn collect_columns(expr: &SqlExpr, alias: &str, out: &mut BTreeSet<String>) {
    match expr {
        SqlExpr::Col(c) if c.table == alias => {
            out.insert(c.column.clone());
        }
        SqlExpr::Add(a, b) => {
            collect_columns(a, alias, out);
            collect_columns(b, alias, out);
        }
        _ => {}
    }
}

fn unique_name(existing: &[IndexProposal], base: &str) -> String {
    let mut name = base.to_string();
    let mut counter = 1;
    let names: HashMap<&str, ()> = existing.iter().map(|p| (p.name.as_str(), ())).collect();
    while names.contains_key(name.as_str()) {
        counter += 1;
        name = format!("{base}{counter}");
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::{ColRef, FromItem, OrderItem, SelectItem, SqlPredicate};
    use xqjg_store::{Schema, Table, Value};

    fn doc_db() -> Database {
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        for i in 0..50i64 {
            t.push(vec![
                Value::Int(i),
                Value::Int(0),
                Value::Int(2),
                Value::str(if i == 0 { "DOC" } else { "ELEM" }),
                Value::str(if i % 2 == 0 { "price" } else { "item" }),
                Value::str("10"),
                Value::Dec(10.0),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db
    }

    fn workload() -> Vec<SfwQuery> {
        vec![SfwQuery {
            distinct: true,
            select: vec![SelectItem::Star("d2".into())],
            from: vec![
                FromItem {
                    table: "doc".into(),
                    alias: "d1".into(),
                },
                FromItem {
                    table: "doc".into(),
                    alias: "d2".into(),
                },
            ],
            where_clause: vec![
                SqlPredicate::new(SqlExpr::col("d1", "kind"), SqlCmp::Eq, SqlExpr::lit("DOC")),
                SqlPredicate::new(
                    SqlExpr::col("d1", "name"),
                    SqlCmp::Eq,
                    SqlExpr::lit("a.xml"),
                ),
                SqlPredicate::new(
                    SqlExpr::col("d2", "name"),
                    SqlCmp::Eq,
                    SqlExpr::lit("price"),
                ),
                SqlPredicate::new(SqlExpr::col("d2", "data"), SqlCmp::Gt, SqlExpr::lit(500i64)),
                SqlPredicate::new(
                    SqlExpr::col("d2", "pre"),
                    SqlCmp::Gt,
                    SqlExpr::col("d1", "pre"),
                ),
            ],
            order_by: vec![OrderItem {
                col: ColRef::new("d2", "pre"),
            }],
        }]
    }

    #[test]
    fn proposes_name_kind_prefixed_indexes() {
        let db = doc_db();
        let proposals = advise(&workload(), &db);
        assert!(proposals.len() >= 2);
        // d1: equality on kind and name → prefix of k/n initials.
        let first = &proposals[0];
        assert!(first.name.starts_with('k') || first.name.starts_with('n'));
        assert!(first.key_columns.contains(&"name".to_string()));
        // d2: name equality plus data range plus pre join column.
        let second = &proposals[1];
        assert!(second.key_columns.contains(&"data".to_string()));
        assert!(second.key_columns.contains(&"pre".to_string()));
        // Low-cardinality kind precedes name when both are equality columns.
        assert_eq!(first.key_columns[0], "kind");
    }

    #[test]
    fn proposes_clustered_serialization_index() {
        let db = doc_db();
        let proposals = advise(&workload(), &db);
        let clustered: Vec<_> = proposals.iter().filter(|p| p.clustered).collect();
        assert_eq!(clustered.len(), 1);
        assert_eq!(clustered[0].key_columns, vec!["pre".to_string()]);
        assert!(clustered[0].name.starts_with("p|"));
        assert_eq!(clustered[0].include_columns.len(), 6);
    }

    #[test]
    fn deploy_creates_indexes() {
        let mut db = doc_db();
        let proposals = advise(&workload(), &db);
        let count = proposals.len();
        deploy(&proposals, &mut db);
        assert_eq!(db.indexes_on("doc").len(), count);
    }

    #[test]
    fn duplicate_key_patterns_are_deduplicated() {
        let db = doc_db();
        let mut wl = workload();
        wl.push(wl[0].clone());
        let proposals = advise(&wl, &db);
        let keys: BTreeSet<Vec<String>> = proposals.iter().map(|p| p.key_columns.clone()).collect();
        assert_eq!(keys.len(), proposals.len());
    }
}
