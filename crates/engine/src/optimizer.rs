//! Cost-based optimization of SFW join-graph queries.
//!
//! The optimizer performs the two classical tasks the paper delegates to the
//! RDBMS (Section IV-A):
//!
//! * **access path selection** — match each alias's predicates against the
//!   available composite-key B-tree indexes (equality prefix + one range
//!   column), estimate selectivities from table statistics, or fall back to
//!   a table scan, and
//! * **join tree planning** — dynamic programming over connected sub-plans
//!   (Selinger-style, left-deep), choosing nested-loop (index probe) or hash
//!   joins per step.
//!
//! Because the join graph does not prescribe any XPath evaluation order, the
//! chosen join order freely reorders location steps and reverses axes — the
//! behaviour Figures 10 and 11 document for DB2.

use crate::physical::{Access, Bounds, JoinMethod, JoinNode, PhysPlan};
use crate::sql::{SfwQuery, SqlCmp, SqlExpr, SqlPredicate};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::Bound;
use xqjg_store::Database;

/// Cost-model constants (arbitrary units; only relative magnitudes matter).
mod cost {
    /// Cost of touching one B-tree page (height traversal).  Calibrated
    /// against measured `OpStats` of the in-memory B-trees: one level of a
    /// descent costs about as much as scanning one leaf entry, not the
    /// disk-era multiple — overweighting it here made repeated
    /// NLJOIN–IXSCAN window probes look pricier than hash joins that
    /// rescan low-distinct buckets on every probe.
    pub const PAGE: f64 = 1.0;
    /// Cost per index entry scanned.
    pub const IX_ENTRY: f64 = 1.0;
    /// Cost per row scanned in a table scan.
    pub const TB_ROW: f64 = 0.4;
    /// Cost per residual predicate evaluation.
    pub const RESIDUAL: f64 = 0.05;
    /// Cost per row flowing through a hash join.
    pub const HASH_ROW: f64 = 0.6;
    /// Selectivity of a range predicate whose bounds depend on outer columns
    /// (e.g. the `(pre◦, pre◦+size◦]` axis intervals).
    pub const OUTER_RANGE_SEL: f64 = 0.08;
    /// Selectivity assumed for an equality with an outer column when the
    /// statistics give no distinct count.
    pub const FALLBACK_EQ_SEL: f64 = 0.001;
    /// Cap on the number of dynamic-programming states before falling back
    /// to greedy planning.
    pub const DP_STATE_LIMIT: usize = 60_000;
}

/// Optimizer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeError {
    /// Description.
    pub message: String,
}

impl OptimizeError {
    fn new(m: impl Into<String>) -> Self {
        OptimizeError { message: m.into() }
    }
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "optimizer error: {}", self.message)
    }
}

impl std::error::Error for OptimizeError {}

/// Optimize an SFW query against the given database.
pub fn optimize(query: &SfwQuery, db: &Database) -> Result<PhysPlan, OptimizeError> {
    if query.from.is_empty() {
        return Err(OptimizeError::new("empty FROM clause"));
    }
    for f in &query.from {
        if db.table(&f.table).is_none() {
            return Err(OptimizeError::new(format!("unknown table {:?}", f.table)));
        }
    }
    let n = query.from.len();
    if n > 63 {
        return Err(OptimizeError::new("too many FROM items (max 63)"));
    }

    let planner = Planner::new(query, db);
    let root = planner.plan_joins()?;
    let est_rows = root.est_rows();
    let est_cost = planner.tree_cost(&root);
    Ok(PhysPlan {
        root,
        select: query.select.clone(),
        distinct: query.distinct,
        order_by: query.order_by.iter().map(|o| o.col.clone()).collect(),
        est_cost,
        est_rows,
    })
}

struct AliasInfo {
    alias: String,
    table: String,
    /// Estimated rows after applying the alias's constant-only predicates.
    local_rows: f64,
}

struct Planner<'a> {
    query: &'a SfwQuery,
    db: &'a Database,
    aliases: Vec<AliasInfo>,
    /// alias → bit position
    bit: HashMap<String, usize>,
}

#[derive(Clone)]
struct DpEntry {
    cost: f64,
    card: f64,
    plan: JoinNode,
}

impl<'a> Planner<'a> {
    fn new(query: &'a SfwQuery, db: &'a Database) -> Self {
        let mut aliases = Vec::new();
        let mut bit = HashMap::new();
        for (i, f) in query.from.iter().enumerate() {
            let local_rows = local_row_estimate(query, db, &f.alias, &f.table);
            bit.insert(f.alias.clone(), i);
            aliases.push(AliasInfo {
                alias: f.alias.clone(),
                table: f.table.clone(),
                local_rows,
            });
        }
        Planner {
            query,
            db,
            aliases,
            bit,
        }
    }

    /// Mask of aliases referenced by a predicate.
    fn pred_mask(&self, p: &SqlPredicate) -> u64 {
        let mut m = 0u64;
        for t in p.tables() {
            if let Some(&b) = self.bit.get(&t) {
                m |= 1 << b;
            }
        }
        m
    }

    /// Dynamic programming over connected sub-plans; falls back to greedy
    /// when the state space explodes.
    fn plan_joins(&self) -> Result<JoinNode, OptimizeError> {
        let n = self.aliases.len();
        let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
        let mut table: HashMap<u64, DpEntry> = HashMap::new();

        // Seed with singletons.
        for (i, info) in self.aliases.iter().enumerate() {
            let bound = HashSet::new();
            let (access, probe_cost, _) = self.best_access(&info.alias, &info.table, &bound);
            let card = info.local_rows.max(1.0);
            table.insert(
                1 << i,
                DpEntry {
                    cost: probe_cost,
                    card,
                    plan: JoinNode::Leaf {
                        alias: info.alias.clone(),
                        table: info.table.clone(),
                        access,
                        est_rows: card,
                    },
                },
            );
        }

        // Grow subsets one alias at a time.  Process states in sorted
        // order: `HashMap` iteration order would otherwise decide cost
        // ties, making the chosen join order (and every benchmark built on
        // it) vary from run to run.
        for size in 1..n {
            let mut states: Vec<u64> = table
                .keys()
                .copied()
                .filter(|m| m.count_ones() as usize == size)
                .collect();
            states.sort_unstable();
            if table.len() > cost::DP_STATE_LIMIT {
                return self.plan_greedy();
            }
            for mask in states {
                let entry = table.get(&mask).cloned().expect("state present");
                let connected = self.connected_extensions(mask);
                let candidates: Vec<usize> = if connected.is_empty() {
                    (0..n).filter(|i| mask & (1 << i) == 0).collect()
                } else {
                    connected
                };
                for i in candidates {
                    let new_mask = mask | (1 << i);
                    let candidate = self.extend(&entry, i);
                    // Break exact cost ties by the smaller intermediate
                    // cardinality: equal-cost orders are common in this
                    // model, and the lower-cardinality one feeds fewer
                    // bindings to every operator above it.
                    let better = match table.get(&new_mask) {
                        Some(existing) => {
                            candidate.cost < existing.cost
                                || (candidate.cost == existing.cost
                                    && candidate.card < existing.card)
                        }
                        None => true,
                    };
                    if better {
                        table.insert(new_mask, candidate);
                    }
                }
            }
        }

        table
            .remove(&full)
            .map(|e| e.plan)
            .ok_or_else(|| OptimizeError::new("join enumeration failed to cover all aliases"))
    }

    /// Greedy fallback: repeatedly add the connected alias yielding the
    /// smallest intermediate cardinality.
    fn plan_greedy(&self) -> Result<JoinNode, OptimizeError> {
        let n = self.aliases.len();
        // Start with the most selective alias.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.aliases[a]
                .local_rows
                .partial_cmp(&self.aliases[b].local_rows)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let first = order[0];
        let info = &self.aliases[first];
        let (access, probe_cost, _) = self.best_access(&info.alias, &info.table, &HashSet::new());
        let mut entry = DpEntry {
            cost: probe_cost,
            card: info.local_rows.max(1.0),
            plan: JoinNode::Leaf {
                alias: info.alias.clone(),
                table: info.table.clone(),
                access,
                est_rows: info.local_rows.max(1.0),
            },
        };
        let mut mask = 1u64 << first;
        while (mask.count_ones() as usize) < n {
            let connected = self.connected_extensions(mask);
            let candidates: Vec<usize> = if connected.is_empty() {
                (0..n).filter(|i| mask & (1 << i) == 0).collect()
            } else {
                connected
            };
            let best = candidates
                .into_iter()
                .map(|i| (i, self.extend(&entry, i)))
                .min_by(|a, b| {
                    a.1.card
                        .partial_cmp(&b.1.card)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one candidate");
            mask |= 1 << best.0;
            entry = best.1;
        }
        Ok(entry.plan)
    }

    /// Aliases outside `mask` connected to it by at least one join predicate.
    fn connected_extensions(&self, mask: u64) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, _) in self.aliases.iter().enumerate() {
            if mask & (1 << i) != 0 {
                continue;
            }
            let connected = self.query.where_clause.iter().any(|p| {
                let m = self.pred_mask(p);
                m & (1 << i) != 0 && m & mask != 0 && m.count_ones() > 1
            });
            if connected {
                out.push(i);
            }
        }
        out
    }

    /// Extend a DP entry with alias `i`, choosing the cheaper of nested-loop
    /// and hash join.
    fn extend(&self, entry: &DpEntry, i: usize) -> DpEntry {
        let info = &self.aliases[i];
        let bound: HashSet<String> = entry.plan.bound_aliases().into_iter().collect();

        // Resulting cardinality (method independent).  Floored at one row:
        // letting estimates underflow towards zero made every downstream
        // probe look free, erasing the cost differences between join
        // orders (the DP then picked among ties).
        let join_sel = self.join_selectivity(&info.alias, &bound);
        let card = (entry.card * info.local_rows * join_sel).max(1.0);

        // Nested loop with per-probe access.
        let (nl_access, nl_probe_cost, _) = self.best_access(&info.alias, &info.table, &bound);
        let nl_residual = self.residual_after_access(&info.alias, &bound, &nl_access);
        let nl_cost = entry.cost + entry.card * nl_probe_cost;

        // Hash join: only when an equality key against the bound set exists.
        let hash_keys = self.hash_keys(&info.alias, &bound);
        let (best_method, access, residual, total_cost, keys) = if hash_keys.is_empty() {
            (
                JoinMethod::NestedLoop,
                nl_access,
                nl_residual,
                nl_cost,
                vec![],
            )
        } else {
            let empty = HashSet::new();
            let (inner_access, inner_cost, inner_rows) =
                self.best_access(&info.alias, &info.table, &empty);
            let hash_residual = self.residual_after_hash(&info.alias, &bound, &hash_keys);
            // Every probe walks its hash bucket: charge the expected
            // candidate comparisons, `build_rows / Π distinct(key)` (NULL
            // keys never enter the build).  Without this term a
            // low-distinct key (e.g. the `level` column) looked as cheap
            // as a selective value key, and the model replaced tight
            // NLJOIN–IXSCAN windows with hash joins that rescan most of
            // the build side on every probe.
            let stats = self.db.stats(&info.table);
            let mut candidates = inner_rows;
            for (_, col) in &hash_keys {
                match stats.and_then(|s| s.column(col)) {
                    Some(cs) => {
                        let non_null = (cs.rows - cs.nulls) as f64 / cs.rows.max(1) as f64;
                        candidates *= non_null / cs.distinct.max(1) as f64;
                    }
                    None => candidates *= cost::FALLBACK_EQ_SEL,
                }
            }
            let hash_cost = entry.cost
                + inner_cost
                + inner_rows * cost::HASH_ROW
                + entry.card * cost::HASH_ROW
                + entry.card * candidates * cost::HASH_ROW;
            if hash_cost < nl_cost {
                (
                    JoinMethod::Hash,
                    inner_access,
                    hash_residual,
                    hash_cost,
                    hash_keys,
                )
            } else {
                (
                    JoinMethod::NestedLoop,
                    nl_access,
                    nl_residual,
                    nl_cost,
                    vec![],
                )
            }
        };

        DpEntry {
            cost: total_cost,
            card,
            plan: JoinNode::Join {
                outer: Box::new(entry.plan.clone()),
                alias: info.alias.clone(),
                table: info.table.clone(),
                access,
                method: best_method,
                hash_keys: keys,
                residual,
                est_rows: card,
            },
        }
    }

    /// Estimated rows of an alias after its constant-only predicates (1.0
    /// when the alias is not part of this query).
    fn local_rows_of(&self, alias: &str) -> f64 {
        self.aliases
            .iter()
            .find(|a| a.alias == alias)
            .map(|a| a.local_rows)
            .unwrap_or(1.0)
    }

    /// Combined selectivity of all join predicates connecting `alias` to the
    /// bound set.
    ///
    /// Inequality predicates between the same pair of aliases are treated
    /// as one *containment group* (the `(pre◦, pre◦ + size◦]` axis windows
    /// of the encoding) and estimated together via
    /// [`Planner::containment_selectivity`]; everything else falls back to
    /// the per-predicate estimates.  Without the grouping, each window
    /// contributed two independent `OUTER_RANGE_SEL` factors — which rated
    /// "somewhere inside the document root" as a 0.6% filter when it
    /// filters nothing, the misestimate that made the DP rank a ~60×
    /// slower Q2 join order cheapest (see the measured `OpStats` in the
    /// cost-model regression test).
    fn join_selectivity(&self, alias: &str, bound: &HashSet<String>) -> f64 {
        let preds: Vec<&SqlPredicate> = self
            .query
            .where_clause
            .iter()
            .filter(|p| {
                let ts = p.tables();
                ts.contains(alias)
                    && ts.len() >= 2
                    && ts.iter().all(|t| t == alias || bound.contains(t))
            })
            .collect();
        self.grouped_selectivity(alias, &preds, |p| {
            self.single_join_pred_selectivity(alias, p)
        })
    }

    /// Fold the selectivities of a predicate list, recognizing containment
    /// groups; `single` estimates any predicate left ungrouped.
    fn grouped_selectivity(
        &self,
        alias: &str,
        preds: &[&SqlPredicate],
        single: impl Fn(&SqlPredicate) -> f64,
    ) -> f64 {
        let inner_rows = self
            .aliases
            .iter()
            .find(|a| a.alias == alias)
            .and_then(|a| self.db.stats(&a.table))
            .map(|s| s.rows as f64)
            .unwrap_or(1.0)
            .max(1.0);
        let mut sel = 1.0;
        let mut used = vec![false; preds.len()];
        for i in 0..preds.len() {
            if used[i] || !is_range_op(preds[i].op) {
                continue;
            }
            let Some(partner) = single_partner(preds[i], alias) else {
                continue;
            };
            let mut group = vec![i];
            for (j, p) in preds.iter().enumerate().skip(i + 1) {
                if !used[j]
                    && is_range_op(p.op)
                    && single_partner(p, alias).as_deref() == Some(partner.as_str())
                {
                    group.push(j);
                }
            }
            let members: Vec<&SqlPredicate> = group.iter().map(|&k| preds[k]).collect();
            let factor = match group_container(&members) {
                Some(container) => self.containment_selectivity(&container, inner_rows),
                // A lone one-sided ordering bound (`pre < pre◦`) keeps half
                // the rows on average; other shapes keep the old estimate.
                None if members.len() == 1 => 0.5,
                None => members.iter().map(|p| single(p)).product(),
            };
            sel *= factor;
            for k in group {
                used[k] = true;
            }
        }
        for (i, p) in preds.iter().enumerate() {
            if !used[i] {
                sel *= single(p);
            }
        }
        sel
    }

    /// Selectivity of `inner.pre ∈ (container.pre, container.pre + size]`.
    ///
    /// Calibrated against measured `OpStats`: same-name XML elements tile
    /// the document (non-recursive element types nest disjointly), so the
    /// expected subtree extent of one of `local_rows(container)` qualifying
    /// containers is `rows / local_rows` — and the window keeps
    /// `1 / local_rows(container)` of the inner rows.  In particular a
    /// window anchored at the single document node keeps *everything*
    /// (selectivity 1.0), where the old per-predicate estimate claimed
    /// 0.64%.
    fn containment_selectivity(&self, container: &str, inner_rows: f64) -> f64 {
        (1.0 / self.local_rows_of(container).max(1.0)).clamp(1.0 / inner_rows, 1.0)
    }

    fn single_join_pred_selectivity(&self, alias: &str, p: &SqlPredicate) -> f64 {
        let table = &self
            .aliases
            .iter()
            .find(|a| a.alias == alias)
            .expect("alias known")
            .table;
        let stats = self.db.stats(table);
        match p.op {
            SqlCmp::Eq => {
                // column = column: 1 / max distinct.
                let col = p
                    .lhs
                    .as_column_of(alias)
                    .or_else(|| p.rhs.as_column_of(alias));
                if let (Some(col), Some(stats)) = (col, stats) {
                    if let Some(cs) = stats.column(col) {
                        if cs.distinct > 0 {
                            return 1.0 / cs.distinct as f64;
                        }
                    }
                }
                cost::FALLBACK_EQ_SEL
            }
            SqlCmp::Ne => 0.9,
            _ => cost::OUTER_RANGE_SEL,
        }
    }

    /// Hash keys `(outer expression, inner column)` for equality predicates
    /// between `alias` and the bound set.
    fn hash_keys(&self, alias: &str, bound: &HashSet<String>) -> Vec<(SqlExpr, String)> {
        let mut keys = Vec::new();
        for p in &self.query.where_clause {
            if p.op != SqlCmp::Eq {
                continue;
            }
            let ts = p.tables();
            if !ts.contains(alias) || ts.len() < 2 {
                continue;
            }
            if !ts.iter().all(|t| t == alias || bound.contains(t)) {
                continue;
            }
            // inner side must be a bare column of `alias`, outer side must
            // not reference `alias` at all.
            if let Some(col) = p.lhs.as_column_of(alias) {
                if !expr_references(&p.rhs, alias) {
                    keys.push((p.rhs.clone(), col.to_string()));
                    continue;
                }
            }
            if let Some(col) = p.rhs.as_column_of(alias) {
                if !expr_references(&p.lhs, alias) {
                    keys.push((p.lhs.clone(), col.to_string()));
                }
            }
        }
        keys
    }

    /// Predicates involving `alias` and the bound set that are not consumed
    /// by the chosen access path.
    fn residual_after_access(
        &self,
        alias: &str,
        bound: &HashSet<String>,
        access: &Access,
    ) -> Vec<SqlPredicate> {
        let consumed: Vec<SqlPredicate> = match access {
            Access::TableScan { preds } => preds.clone(),
            Access::IndexScan { residual, .. } => {
                // Everything available is either in bounds or in residual;
                // residual predicates are checked by the scan itself.
                let mut v = residual.clone();
                v.extend(self.bounds_predicates(alias, bound, access));
                v
            }
        };
        self.available_predicates(alias, bound)
            .into_iter()
            .filter(|p| !consumed.contains(p))
            .collect()
    }

    fn bounds_predicates(
        &self,
        alias: &str,
        bound: &HashSet<String>,
        access: &Access,
    ) -> Vec<SqlPredicate> {
        // Reconstruct which of the available predicates were folded into the
        // index bounds, by re-running the matching.
        if let Access::IndexScan { index, .. } = access {
            if let Some(ix) = self.db.index(index) {
                let avail = self.available_predicates(alias, bound);
                let (_, consumed) = match_index_bounds(alias, &ix.def.key_columns, &avail);
                return consumed;
            }
        }
        Vec::new()
    }

    fn residual_after_hash(
        &self,
        alias: &str,
        bound: &HashSet<String>,
        keys: &[(SqlExpr, String)],
    ) -> Vec<SqlPredicate> {
        self.available_predicates(alias, bound)
            .into_iter()
            .filter(|p| {
                // Join-equality predicates covered by the hash keys and
                // constant-only local predicates (already applied by the
                // inner access) are not residual.
                if p.tables().len() <= 1 {
                    return false;
                }
                if p.op == SqlCmp::Eq {
                    let covered = keys.iter().any(|(outer, col)| {
                        (p.lhs.as_column_of(alias) == Some(col.as_str()) && p.rhs == *outer)
                            || (p.rhs.as_column_of(alias) == Some(col.as_str()) && p.lhs == *outer)
                    });
                    if covered {
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// All predicates that involve `alias` and otherwise only bound aliases
    /// or constants.
    fn available_predicates(&self, alias: &str, bound: &HashSet<String>) -> Vec<SqlPredicate> {
        self.query
            .where_clause
            .iter()
            .filter(|p| {
                let ts = p.tables();
                ts.contains(alias) && ts.iter().all(|t| t == alias || bound.contains(t))
            })
            .cloned()
            .collect()
    }

    /// Choose the cheapest access path for `alias` given the bound aliases.
    /// Returns `(access, per_probe_cost, per_probe_rows)`.
    fn best_access(&self, alias: &str, table: &str, bound: &HashSet<String>) -> (Access, f64, f64) {
        let avail = self.available_predicates(alias, bound);
        let stats = self.db.stats(table);
        let total_rows = stats.map(|s| s.rows as f64).unwrap_or(1.0).max(1.0);

        // Selectivity of *all* available predicates (they are all applied,
        // whether through bounds or residual checks).  Containment windows
        // are grouped here as well so per-probe row estimates agree with
        // the join-cardinality model.
        let avail_refs: Vec<&SqlPredicate> = avail.iter().collect();
        let overall_sel = self.grouped_selectivity(alias, &avail_refs, |p| {
            predicate_selectivity(self.db, table, alias, p)
        });
        let out_rows = (total_rows * overall_sel).max(1e-6);

        // Table scan baseline.
        let scan_cost =
            total_rows * cost::TB_ROW + avail.len() as f64 * total_rows * cost::RESIDUAL;
        let mut best = (
            Access::TableScan {
                preds: avail.clone(),
            },
            scan_cost,
            out_rows,
        );

        for ix in self.db.indexes_on(table) {
            let (bounds, consumed) = match_index_bounds(alias, &ix.def.key_columns, &avail);
            if bounds.matched_columns() == 0 {
                continue;
            }
            // Selectivity of the predicates folded into the bounds (again
            // with containment windows grouped — this is the NLJOIN
            // per-probe fetch estimate).
            let consumed_refs: Vec<&SqlPredicate> = consumed.iter().collect();
            let bound_sel = self.grouped_selectivity(alias, &consumed_refs, |p| {
                predicate_selectivity(self.db, table, alias, p)
            });
            let scanned_entries = (total_rows * bound_sel).max(1.0);
            let residual: Vec<SqlPredicate> = avail
                .iter()
                .filter(|p| !consumed.contains(p))
                .cloned()
                .collect();
            let height = ix.tree.height() as f64;
            let ix_cost = height * cost::PAGE
                + scanned_entries * cost::IX_ENTRY
                + residual.len() as f64 * scanned_entries * cost::RESIDUAL;
            if ix_cost < best.1 {
                best = (
                    Access::IndexScan {
                        index: ix.def.name.clone(),
                        bounds,
                        residual,
                    },
                    ix_cost,
                    out_rows,
                );
            }
        }
        best
    }

    /// Total cost of a finished join tree (re-derived for reporting).
    fn tree_cost(&self, node: &JoinNode) -> f64 {
        match node {
            JoinNode::Leaf { est_rows, .. } => *est_rows,
            JoinNode::Join {
                outer, est_rows, ..
            } => self.tree_cost(outer) + est_rows.max(1.0),
        }
    }
}

fn expr_references(e: &SqlExpr, alias: &str) -> bool {
    let mut ts = HashSet::new();
    e.tables(&mut ts);
    ts.contains(alias)
}

/// Is the comparison an inequality (range-style) operator?
fn is_range_op(op: SqlCmp) -> bool {
    matches!(op, SqlCmp::Lt | SqlCmp::Le | SqlCmp::Gt | SqlCmp::Ge)
}

/// The single alias other than `alias` a predicate references, if there is
/// exactly one.
fn single_partner(p: &SqlPredicate, alias: &str) -> Option<String> {
    let mut partners: Vec<String> = p.tables().into_iter().filter(|t| t != alias).collect();
    (partners.len() == 1).then(|| partners.remove(0))
}

/// The container alias of a containment group: the one alias referenced by
/// a computed (`pre + size`-style) side of one of the group's predicates.
fn group_container(preds: &[&SqlPredicate]) -> Option<String> {
    for p in preds {
        for side in [&p.lhs, &p.rhs] {
            if matches!(side, SqlExpr::Add(..)) {
                let mut ts = HashSet::new();
                side.tables(&mut ts);
                if ts.len() == 1 {
                    return ts.into_iter().next();
                }
            }
        }
    }
    None
}

/// Estimate the rows of `alias` after applying its constant-only predicates.
fn local_row_estimate(query: &SfwQuery, db: &Database, alias: &str, table: &str) -> f64 {
    let stats = match db.stats(table) {
        Some(s) => s,
        None => return 1.0,
    };
    let mut rows = stats.rows as f64;
    for p in query.local_predicates(alias) {
        rows *= predicate_selectivity(db, table, alias, p);
    }
    rows.max(1e-6)
}

/// Selectivity of a single predicate as seen from `alias`.
fn predicate_selectivity(db: &Database, table: &str, alias: &str, p: &SqlPredicate) -> f64 {
    let stats = match db.stats(table) {
        Some(s) => s,
        None => return 0.5,
    };
    // Identify "alias.column OP other" shape.
    let (col, op, other) = if let Some(c) = p.lhs.as_column_of(alias) {
        (c, p.op, &p.rhs)
    } else if let Some(c) = p.rhs.as_column_of(alias) {
        (c, p.op.flip(), &p.lhs)
    } else {
        // Computed column expressions (pre + size, level + 1): treat as a
        // generic range-style predicate.
        return cost::OUTER_RANGE_SEL;
    };
    let cs = match stats.column(col) {
        Some(cs) => cs,
        None => return 0.5,
    };
    match other {
        SqlExpr::Lit(v) => match op {
            SqlCmp::Eq => cs.eq_selectivity(v),
            SqlCmp::Ne => 1.0 - cs.eq_selectivity(v),
            SqlCmp::Lt | SqlCmp::Le => cs.range_selectivity(Bound::Unbounded, Bound::Included(v)),
            SqlCmp::Gt | SqlCmp::Ge => cs.range_selectivity(Bound::Included(v), Bound::Unbounded),
        },
        _ => match op {
            SqlCmp::Eq => {
                if cs.distinct > 0 {
                    1.0 / cs.distinct as f64
                } else {
                    cost::FALLBACK_EQ_SEL
                }
            }
            SqlCmp::Ne => 0.9,
            _ => cost::OUTER_RANGE_SEL,
        },
    }
}

/// Match the available predicates of an alias against an index's key
/// columns: a maximal equality prefix followed by at most one range-bound
/// column.  Returns the bounds plus the predicates consumed by them.
fn match_index_bounds(
    alias: &str,
    key_columns: &[String],
    avail: &[SqlPredicate],
) -> (Bounds, Vec<SqlPredicate>) {
    let mut bounds = Bounds::default();
    let mut consumed = Vec::new();
    for key_col in key_columns {
        // Equality?
        let eq = avail.iter().find(|p| {
            p.op == SqlCmp::Eq
                && ((p.lhs.as_column_of(alias) == Some(key_col.as_str())
                    && !expr_references(&p.rhs, alias))
                    || (p.rhs.as_column_of(alias) == Some(key_col.as_str())
                        && !expr_references(&p.lhs, alias)))
        });
        if let Some(p) = eq {
            let expr = if p.lhs.as_column_of(alias) == Some(key_col.as_str()) {
                p.rhs.clone()
            } else {
                p.lhs.clone()
            };
            bounds.eq.push((key_col.clone(), expr));
            consumed.push(p.clone());
            continue;
        }
        // Range bounds?
        let mut lower: Option<(SqlExpr, bool)> = None;
        let mut upper: Option<(SqlExpr, bool)> = None;
        for p in avail {
            let (op, other) = if p.lhs.as_column_of(alias) == Some(key_col.as_str())
                && !expr_references(&p.rhs, alias)
            {
                (p.op, p.rhs.clone())
            } else if p.rhs.as_column_of(alias) == Some(key_col.as_str())
                && !expr_references(&p.lhs, alias)
            {
                (p.op.flip(), p.lhs.clone())
            } else {
                continue;
            };
            match op {
                SqlCmp::Gt if lower.is_none() => {
                    lower = Some((other, false));
                    consumed.push(p.clone());
                }
                SqlCmp::Ge if lower.is_none() => {
                    lower = Some((other, true));
                    consumed.push(p.clone());
                }
                SqlCmp::Lt if upper.is_none() => {
                    upper = Some((other, false));
                    consumed.push(p.clone());
                }
                SqlCmp::Le if upper.is_none() => {
                    upper = Some((other, true));
                    consumed.push(p.clone());
                }
                _ => {}
            }
        }
        if lower.is_some() || upper.is_some() {
            bounds.range_col = Some(key_col.clone());
            bounds.lower = lower;
            bounds.upper = upper;
        }
        // Whether or not a range matched, index matching stops at the first
        // non-equality key column.
        break;
    }
    (bounds, consumed)
}

// ---------------------------------------------------------------------
// Plan cache — repeat executions of a normalized query skip the DP
// enumeration entirely.
// ---------------------------------------------------------------------

/// Normalize SQL text for plan-cache keying: collapse every whitespace
/// run to a single space.  The decomposer and hand-written texts differ
/// only in layout; identifiers are case-sensitive, so case is preserved.
pub fn normalize_query_text(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Default [`PlanCache`] capacity in bytes.
pub const PLAN_CACHE_BYTES: usize = 8 << 20;

/// Rough per-join-node heap footprint of a [`PhysPlan`] (access path,
/// bounds expressions, residuals) used to charge the cache.
const PLAN_NODE_COST: usize = 512;

fn plan_nodes(node: &JoinNode) -> usize {
    match node {
        JoinNode::Leaf { .. } => 1,
        JoinNode::Join { outer, .. } => 1 + plan_nodes(outer),
    }
}

/// Concurrent memo of optimized physical plans, keyed by (normalized
/// query text, execution-knob fingerprint) and — like every warm-path
/// cache — invalidated by the catalog version stamp, since both access
/// paths and join orders are functions of the catalog's indexes and
/// statistics.  Cloning the handle shares the cache; `Arc`-share one
/// across `Processor` instances to serve repeated queries without DP
/// enumeration.
#[derive(Clone)]
pub struct PlanCache {
    inner: std::sync::Arc<xqjg_store::ShardedLru<String, PhysPlan>>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// A cache with the default byte capacity.
    pub fn new() -> Self {
        PlanCache::with_capacity(PLAN_CACHE_BYTES)
    }

    /// A cache bounded to `bytes`.
    pub fn with_capacity(bytes: usize) -> Self {
        PlanCache {
            inner: std::sync::Arc::new(xqjg_store::ShardedLru::new(bytes)),
        }
    }

    /// Lookups satisfied from the cache.
    pub fn hits(&self) -> usize {
        self.inner.hits()
    }

    /// Total lookups.
    pub fn lookups(&self) -> usize {
        self.inner.lookups()
    }

    /// Plans dropped (LRU eviction and version invalidation alike).
    pub fn evictions(&self) -> usize {
        self.inner.evictions()
    }

    /// Number of memoized plans.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Bytes currently charged against the capacity.
    pub fn bytes(&self) -> usize {
        self.inner.bytes()
    }
}

/// [`optimize`] fronted by a [`PlanCache`]: the cache key is the
/// normalized query text joined with the caller's knob `fingerprint`
/// (see `ExecConfig::cache_fingerprint` — knobs that change physical
/// plan choice must key separately), looked up under the database's
/// current catalog version.  Returns the plan and whether it was a cache
/// hit.  A failed optimization caches nothing.
pub fn optimize_cached(
    query: &SfwQuery,
    db: &Database,
    cache: &PlanCache,
    fingerprint: &str,
) -> Result<(std::sync::Arc<PhysPlan>, bool), OptimizeError> {
    let key = format!(
        "{}\u{1f}{}",
        normalize_query_text(&query.to_sql()),
        fingerprint
    );
    cache.inner.get_or_try_insert(
        db.version(),
        &key,
        |plan| key.len() + plan_nodes(&plan.root) * PLAN_NODE_COST + 256,
        || optimize(query, db).map(std::sync::Arc::new),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ColRef;
    use crate::sql::{FromItem, OrderItem, SelectItem};
    use xqjg_store::{IndexDef, Schema, Table, Value};

    /// Build a toy doc-like database with name/kind skew and indexes.
    fn toy_db() -> Database {
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        // One DOC row followed by many elements of various names.
        t.push(vec![
            Value::Int(0),
            Value::Int(1000),
            Value::Int(0),
            Value::str("DOC"),
            Value::str("auction.xml"),
            Value::Null,
            Value::Null,
        ]);
        for i in 1..=1000i64 {
            let name = match i % 10 {
                0 => "open_auction",
                1 => "bidder",
                2 => "price",
                _ => "filler",
            };
            t.push(vec![
                Value::Int(i),
                Value::Int(0),
                Value::Int(2),
                Value::str("ELEM"),
                Value::str(name),
                Value::Null,
                Value::Dec((i % 700) as f64),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db.create_index(IndexDef {
            name: "nksp".into(),
            table: "doc".into(),
            key_columns: vec!["name".into(), "kind".into(), "size".into(), "pre".into()],
            include_columns: vec![],
            clustered: false,
        });
        db.create_index(IndexDef {
            name: "pre_idx".into(),
            table: "doc".into(),
            key_columns: vec!["pre".into()],
            include_columns: vec![],
            clustered: true,
        });
        db
    }

    fn simple_query() -> SfwQuery {
        SfwQuery {
            distinct: true,
            select: vec![SelectItem::Star("d2".into())],
            from: vec![
                FromItem {
                    table: "doc".into(),
                    alias: "d1".into(),
                },
                FromItem {
                    table: "doc".into(),
                    alias: "d2".into(),
                },
            ],
            where_clause: vec![
                SqlPredicate::new(SqlExpr::col("d1", "kind"), SqlCmp::Eq, SqlExpr::lit("DOC")),
                SqlPredicate::new(
                    SqlExpr::col("d1", "name"),
                    SqlCmp::Eq,
                    SqlExpr::lit("auction.xml"),
                ),
                SqlPredicate::new(
                    SqlExpr::col("d2", "name"),
                    SqlCmp::Eq,
                    SqlExpr::lit("open_auction"),
                ),
                SqlPredicate::new(
                    SqlExpr::col("d2", "pre"),
                    SqlCmp::Gt,
                    SqlExpr::col("d1", "pre"),
                ),
                SqlPredicate::new(
                    SqlExpr::col("d2", "pre"),
                    SqlCmp::Le,
                    SqlExpr::col("d1", "pre") + SqlExpr::col("d1", "size"),
                ),
            ],
            order_by: vec![OrderItem {
                col: ColRef::new("d2", "pre"),
            }],
        }
    }

    #[test]
    fn picks_index_access_for_selective_predicates() {
        let db = toy_db();
        let plan = optimize(&simple_query(), &db).unwrap();
        // The DOC-node alias must be accessed through the name/kind index.
        fn find_leaf(n: &JoinNode) -> &JoinNode {
            match n {
                JoinNode::Leaf { .. } => n,
                JoinNode::Join { outer, .. } => find_leaf(outer),
            }
        }
        let leaf = find_leaf(&plan.root);
        match leaf {
            JoinNode::Leaf { alias, access, .. } => {
                assert_eq!(alias, "d1");
                assert!(matches!(access, Access::IndexScan { index, .. } if index == "nksp"));
            }
            _ => unreachable!(),
        }
        assert_eq!(plan.join_order(), vec!["d1".to_string(), "d2".to_string()]);
        assert!(plan.distinct);
    }

    #[test]
    fn normalize_query_text_collapses_whitespace_only() {
        assert_eq!(
            normalize_query_text("SELECT  a\n  FROM\tt \n WHERE x = 'A  B'"),
            // Whitespace inside string literals is fair game for this
            // normalizer: the decomposer never emits multi-space literals,
            // and a false split only costs a cache miss, never a wrong plan.
            "SELECT a FROM t WHERE x = 'A B'"
        );
        assert_eq!(normalize_query_text("  SELECT 1  "), "SELECT 1");
    }

    #[test]
    fn plan_cache_serves_repeats_and_invalidates_on_ddl_and_fingerprint() {
        let mut db = toy_db();
        let q = simple_query();
        let cache = PlanCache::new();
        let (p1, hit) = optimize_cached(&q, &db, &cache, "fp-a").unwrap();
        assert!(!hit, "first optimization is a miss");
        let (p2, hit) = optimize_cached(&q, &db, &cache, "fp-a").unwrap();
        assert!(hit, "repeat serves from the cache");
        assert!(std::sync::Arc::ptr_eq(&p1, &p2), "same cached plan object");
        // A different knob fingerprint keys separately.
        let (_, hit) = optimize_cached(&q, &db, &cache, "fp-b").unwrap();
        assert!(!hit, "fingerprint participates in the key");
        // The cached plan equals a fresh optimization.
        let fresh = optimize(&q, &db).unwrap();
        assert_eq!(
            crate::explain::explain(&p1),
            crate::explain::explain(&fresh)
        );
        // DDL moves the catalog version: the same text re-optimizes (and
        // may now pick the new index).
        db.create_index(IndexDef {
            name: "fresh".into(),
            table: "doc".into(),
            key_columns: vec!["level".into()],
            include_columns: vec![],
            clustered: false,
        });
        let (_, hit) = optimize_cached(&q, &db, &cache, "fp-a").unwrap();
        assert!(!hit, "catalog version change invalidates cached plans");
        // Failed optimizations cache nothing.
        let bad = SfwQuery {
            from: vec![FromItem {
                table: "missing".into(),
                alias: "m".into(),
            }],
            ..simple_query()
        };
        assert!(optimize_cached(&bad, &db, &cache, "fp-a").is_err());
        assert!(optimize_cached(&bad, &db, &cache, "fp-a").is_err());
    }

    #[test]
    fn join_order_starts_with_most_selective_alias() {
        let db = toy_db();
        // Reverse the alias numbering so the selective DOC predicate sits on
        // the *second* FROM item: the optimizer must still start with it.
        let mut q = simple_query();
        q.from.reverse();
        let plan = optimize(&q, &db).unwrap();
        assert_eq!(plan.join_order()[0], "d1");
    }

    #[test]
    fn index_bounds_match_equality_prefix_then_range() {
        let avail = vec![
            SqlPredicate::new(SqlExpr::col("d", "name"), SqlCmp::Eq, SqlExpr::lit("price")),
            SqlPredicate::new(SqlExpr::col("d", "kind"), SqlCmp::Eq, SqlExpr::lit("ELEM")),
            SqlPredicate::new(SqlExpr::col("d", "data"), SqlCmp::Gt, SqlExpr::lit(500i64)),
        ];
        let keys = vec![
            "name".to_string(),
            "kind".to_string(),
            "data".to_string(),
            "pre".to_string(),
        ];
        let (bounds, consumed) = match_index_bounds("d", &keys, &avail);
        assert_eq!(bounds.eq.len(), 2);
        assert_eq!(bounds.range_col.as_deref(), Some("data"));
        assert!(bounds.lower.is_some() && bounds.upper.is_none());
        assert_eq!(consumed.len(), 3);
    }

    #[test]
    fn index_matching_stops_at_gap() {
        // Key (name, kind, data): only a data predicate (no name) matches nothing.
        let avail = vec![SqlPredicate::new(
            SqlExpr::col("d", "data"),
            SqlCmp::Gt,
            SqlExpr::lit(500i64),
        )];
        let keys = vec!["name".to_string(), "kind".to_string(), "data".to_string()];
        let (bounds, _) = match_index_bounds("d", &keys, &avail);
        assert_eq!(bounds.matched_columns(), 0);
    }

    #[test]
    fn errors_on_unknown_table() {
        let db = toy_db();
        let mut q = simple_query();
        q.from[0].table = "nope".into();
        assert!(optimize(&q, &db).is_err());
    }

    #[test]
    fn cross_product_queries_still_plan() {
        let db = toy_db();
        let q = SfwQuery {
            distinct: false,
            select: vec![SelectItem::Star("a".into()), SelectItem::Star("b".into())],
            from: vec![
                FromItem {
                    table: "doc".into(),
                    alias: "a".into(),
                },
                FromItem {
                    table: "doc".into(),
                    alias: "b".into(),
                },
            ],
            where_clause: vec![SqlPredicate::new(
                SqlExpr::col("a", "kind"),
                SqlCmp::Eq,
                SqlExpr::lit("DOC"),
            )],
            order_by: vec![],
        };
        let plan = optimize(&q, &db).unwrap();
        assert_eq!(plan.join_order().len(), 2);
    }

    #[test]
    fn hash_join_chosen_for_unselective_value_equijoin() {
        let db = toy_db();
        // Join on data = data with no useful index on the inner side's probe:
        // the optimizer should prefer a hash join over a per-probe scan.
        let q = SfwQuery {
            distinct: false,
            select: vec![SelectItem::Star("a".into())],
            from: vec![
                FromItem {
                    table: "doc".into(),
                    alias: "a".into(),
                },
                FromItem {
                    table: "doc".into(),
                    alias: "b".into(),
                },
            ],
            where_clause: vec![
                SqlPredicate::new(SqlExpr::col("a", "name"), SqlCmp::Eq, SqlExpr::lit("price")),
                SqlPredicate::new(
                    SqlExpr::col("a", "value"),
                    SqlCmp::Eq,
                    SqlExpr::col("b", "value"),
                ),
            ],
            order_by: vec![],
        };
        let plan = optimize(&q, &db).unwrap();
        let uses_hash = matches!(
            &plan.root,
            JoinNode::Join {
                method: JoinMethod::Hash,
                ..
            }
        );
        assert!(uses_hash, "expected a hash join, got {:?}", plan.root);
    }
}
