//! Parser for the emitted SQL subset.
//!
//! The back-end half of the system receives plain SQL text (Fig. 8 / 9) and
//! parses it back into an [`SfwQuery`] before optimization — keeping the
//! front half (XQuery compiler + isolation) and the back half (relational
//! engine) coupled only through SQL, exactly as in the paper's architecture.

use crate::sql::{
    ColRef, FromItem, OrderItem, SelectItem, SfwQuery, SqlCmp, SqlExpr, SqlPredicate,
};
use std::fmt;
use xqjg_store::Value;

/// SQL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlParseError {
    /// Offending token position (token index).
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for SqlParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    Int(i64),
    Dec(f64),
    Dot,
    Comma,
    Star,
    Plus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

fn lex(input: &str) -> Result<Vec<Tok>, SqlParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        match c {
            c if c.is_whitespace() => pos += 1,
            ',' => {
                out.push(Tok::Comma);
                pos += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                pos += 1;
            }
            '*' => {
                out.push(Tok::Star);
                pos += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                pos += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                pos += 1;
            }
            '<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Tok::Le);
                    pos += 2;
                } else if bytes.get(pos + 1) == Some(&b'>') {
                    out.push(Tok::Ne);
                    pos += 2;
                } else {
                    out.push(Tok::Lt);
                    pos += 1;
                }
            }
            '>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Tok::Ge);
                    pos += 2;
                } else {
                    out.push(Tok::Gt);
                    pos += 1;
                }
            }
            '\'' => {
                let mut i = pos + 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlParseError {
                            position: pos,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                out.push(Tok::Str(s));
                pos = i + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = pos;
                pos += 1;
                let mut seen_dot = false;
                while pos < bytes.len() {
                    let d = bytes[pos] as char;
                    if d.is_ascii_digit() {
                        pos += 1;
                    } else if d == '.' && !seen_dot {
                        seen_dot = true;
                        pos += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..pos];
                if seen_dot {
                    out.push(Tok::Dec(text.parse().map_err(|_| SqlParseError {
                        position: start,
                        message: format!("bad decimal {text:?}"),
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| SqlParseError {
                        position: start,
                        message: format!("bad integer {text:?}"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = pos;
                while pos < bytes.len() {
                    let d = bytes[pos] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Word(input[start..pos].to_string()));
            }
            other => {
                return Err(SqlParseError {
                    position: pos,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

/// Parse an SQL `SELECT [DISTINCT] … FROM … [WHERE …] [ORDER BY …]` block.
pub fn parse_sql(input: &str) -> Result<SfwQuery, SqlParseError> {
    let tokens = lex(input)?;
    let mut p = P { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct P {
    tokens: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Tok {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn err(&self, m: impl Into<String>) -> SqlParseError {
        SqlParseError {
            position: self.pos,
            message: m.into(),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlParseError> {
        match self.next() {
            Tok::Word(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<SfwQuery, SqlParseError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut select = vec![self.select_item()?];
        while matches!(self.peek(), Tok::Comma) {
            self.pos += 1;
            select.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.parse_from_item()?];
        while matches!(self.peek(), Tok::Comma) {
            self.pos += 1;
            from.push(self.parse_from_item()?);
        }
        let mut where_clause = Vec::new();
        if self.eat_kw("WHERE") {
            where_clause.push(self.predicate()?);
            while self.eat_kw("AND") {
                where_clause.push(self.predicate()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            order_by.push(self.order_item()?);
            while matches!(self.peek(), Tok::Comma) {
                self.pos += 1;
                order_by.push(self.order_item()?);
            }
        }
        Ok(SfwQuery {
            distinct,
            select,
            from,
            where_clause,
            order_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlParseError> {
        let table = self.ident()?;
        if !matches!(self.peek(), Tok::Dot) {
            return Err(self.err("select items must be qualified (alias.column or alias.*)"));
        }
        self.pos += 1;
        if matches!(self.peek(), Tok::Star) {
            self.pos += 1;
            return Ok(SelectItem::Star(table));
        }
        let column = self.ident()?;
        let mut expr = SqlExpr::Col(ColRef::new(table, column));
        while matches!(self.peek(), Tok::Plus) {
            self.pos += 1;
            expr = expr + self.scalar_atom()?;
        }
        let alias = if self.eat_kw("AS") {
            self.ident()?
        } else {
            match &expr {
                SqlExpr::Col(c) => c.column.clone(),
                _ => return Err(self.err("computed select items need AS <name>")),
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, SqlParseError> {
        let table = self.ident()?;
        let alias = if self.eat_kw("AS") {
            self.ident()?
        } else if let Tok::Word(w) = self.peek() {
            // Bare alias without AS, unless it is a keyword.
            let upper = w.to_ascii_uppercase();
            if ["WHERE", "ORDER", "SELECT", "FROM"].contains(&upper.as_str()) {
                table.clone()
            } else {
                self.ident()?
            }
        } else {
            table.clone()
        };
        Ok(FromItem { table, alias })
    }

    fn order_item(&mut self) -> Result<OrderItem, SqlParseError> {
        let table = self.ident()?;
        if !matches!(self.peek(), Tok::Dot) {
            return Err(self.err("ORDER BY items must be alias.column"));
        }
        self.pos += 1;
        let column = self.ident()?;
        // Optional ASC keyword.
        self.eat_kw("ASC");
        Ok(OrderItem {
            col: ColRef::new(table, column),
        })
    }

    fn predicate(&mut self) -> Result<SqlPredicate, SqlParseError> {
        let lhs = self.scalar()?;
        let op = match self.next() {
            Tok::Eq => SqlCmp::Eq,
            Tok::Ne => SqlCmp::Ne,
            Tok::Lt => SqlCmp::Lt,
            Tok::Le => SqlCmp::Le,
            Tok::Gt => SqlCmp::Gt,
            Tok::Ge => SqlCmp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        let rhs = self.scalar()?;
        Ok(SqlPredicate::new(lhs, op, rhs))
    }

    fn scalar(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut expr = self.scalar_atom()?;
        while matches!(self.peek(), Tok::Plus) {
            self.pos += 1;
            expr = expr + self.scalar_atom()?;
        }
        Ok(expr)
    }

    fn scalar_atom(&mut self) -> Result<SqlExpr, SqlParseError> {
        match self.next() {
            Tok::Word(w) => {
                if matches!(self.peek(), Tok::Dot) {
                    self.pos += 1;
                    let column = self.ident()?;
                    Ok(SqlExpr::Col(ColRef::new(w, column)))
                } else {
                    Err(self.err(format!("unqualified column {w:?} (write alias.column)")))
                }
            }
            Tok::Str(s) => Ok(SqlExpr::Lit(Value::Str(s))),
            Tok::Int(i) => Ok(SqlExpr::Lit(Value::Int(i))),
            Tok::Dec(d) => Ok(SqlExpr::Lit(Value::Dec(d))),
            other => Err(self.err(format!("expected scalar expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "SELECT DISTINCT d2.*\n\
        FROM doc AS d1, doc AS d2, doc AS d3\n\
        WHERE d1.kind = 'DOC'\n  AND d1.name = 'auction.xml'\n\
          AND d2.kind = 'ELEM'\n  AND d2.name = 'open_auction'\n\
          AND d2.pre > d1.pre AND d2.pre <= d1.pre + d1.size\n\
          AND d3.kind = 'ELEM'\n  AND d3.name = 'bidder'\n\
          AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size\n\
          AND d2.level + 1 = d3.level\n\
        ORDER BY d2.pre";

    #[test]
    fn parses_fig8_query() {
        let q = parse_sql(Q1).unwrap();
        assert!(q.distinct);
        assert_eq!(q.from.len(), 3);
        assert_eq!(q.where_clause.len(), 11);
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.select, vec![SelectItem::Star("d2".to_string())]);
    }

    #[test]
    fn print_parse_roundtrip() {
        let q = parse_sql(Q1).unwrap();
        let printed = q.to_sql();
        let reparsed = parse_sql(&printed).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn parses_select_expressions_with_alias() {
        let q = parse_sql(
            "SELECT DISTINCT d12.*, d2.pre AS item1 FROM doc AS d2, doc AS d12 \
             WHERE d2.pre = d12.pre ORDER BY d2.pre, d12.pre",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        match &q.select[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias, "item1"),
            other => panic!("expected expr item, got {other:?}"),
        }
        assert_eq!(q.order_by.len(), 2);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let q = parse_sql("SELECT d1.* FROM doc AS d1 WHERE d1.name = 'o''hara'").unwrap();
        match &q.where_clause[0].rhs {
            SqlExpr::Lit(Value::Str(s)) => assert_eq!(s, "o'hara"),
            other => panic!("expected string literal, got {other:?}"),
        }
        let reparsed = parse_sql(&q.to_sql()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn numeric_literals() {
        let q = parse_sql("SELECT d1.* FROM doc d1 WHERE d1.data > 500 AND d1.data < 7.5").unwrap();
        assert_eq!(q.where_clause.len(), 2);
        assert_eq!(q.from[0].alias, "d1");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_sql("SELEC d1.* FROM doc d1").is_err());
        assert!(parse_sql("SELECT d1.* FROM doc d1 WHERE kind = 'DOC'").is_err());
        assert!(parse_sql("SELECT d1.* FROM doc d1 WHERE d1.kind == 'DOC'").is_err());
        assert!(parse_sql("SELECT * FROM doc d1").is_err());
        assert!(parse_sql("SELECT d1.* FROM doc d1 ORDER BY pre").is_err());
        assert!(parse_sql("SELECT d1.* FROM doc d1 WHERE d1.name = 'x").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let q =
            parse_sql("select distinct d1.* from doc as d1 where d1.kind = 'DOC' order by d1.pre")
                .unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 1);
    }
}
