//! The relational query engine: the "off-the-shelf RDBMS" half of the
//! system.
//!
//! It consumes the SQL join-graph queries emitted by `xqjg-core` and runs
//! them through the classical pipeline the paper relies on:
//!
//! 1. [`sqlparse::parse_sql`] — parse the `SELECT DISTINCT … FROM … WHERE …
//!    ORDER BY …` block,
//! 2. [`optimizer::optimize`] — cost-based access-path selection and join
//!    tree planning over the catalog's B-tree indexes and statistics,
//! 3. [`exec::QueryRequest`] — pipelined, batch-at-a-time execution
//!    through a tree of pull-based operators (scan leaves, index
//!    nested-loop and build-once hash joins, the duplicate-eliminating
//!    SORT plan tail); the seed's materialize-everything strategy
//!    survives as the [`materialize`] baseline,
//! 4. [`explain::explain`] — DB2-visual-explain-style plan rendering
//!    (Figures 10 and 11),
//! 5. [`advisor::advise`] — the `db2advis` stand-in that proposes the
//!    B-tree index set of Table VI from a workload.

pub mod advisor;
pub mod exec;
pub mod explain;
pub mod materialize;
pub mod optimizer;
pub mod physical;
pub mod sql;
pub mod sqlparse;

pub use advisor::{advise, deploy, IndexProposal};
pub use exec::{
    run_sql, BuildCache, ExecCaches, ExecStats, ExecTrace, QueryOutcome, QueryRequest,
    BUILD_CACHE_BYTES,
};
// The deprecated entry points stay re-exported so external callers keep
// compiling (with the deprecation warning pointing them at QueryRequest).
#[allow(deprecated)]
pub use exec::{
    execute, execute_full, execute_with_stats, execute_with_stats_config, try_execute_full,
    try_execute_with_caches, try_execute_with_stats_config,
};
pub use explain::{explain, explain_with_caches, explain_with_stats, CacheActuals};
pub use materialize::{execute_materialized, execute_materialized_with_stats};
pub use optimizer::{
    normalize_query_text, optimize, optimize_cached, OptimizeError, PlanCache, PLAN_CACHE_BYTES,
};
pub use physical::{Access, Bounds, JoinMethod, JoinNode, PhysPlan};
pub use sql::{ColRef, FromItem, OrderItem, SelectItem, SfwQuery, SqlCmp, SqlExpr, SqlPredicate};
pub use sqlparse::{parse_sql, SqlParseError};
