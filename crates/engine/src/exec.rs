//! Pipelined, batch-at-a-time execution of physical plans.
//!
//! The executor implements the operator repertoire of Table VII as a tree
//! of discrete pull-based operators over the [`xqjg_store::Operator`]
//! substrate: index and table scan leaves, index nested-loop joins (the
//! inner access path is re-probed for every outer binding, with probe
//! bounds computed from the outer columns), build-once hash joins probed
//! with borrowed keys, and the plan tail (select/order evaluation,
//! duplicate-eliminating SORT, RETURN).  Tuples flow between operators in
//! fixed-capacity [`Batch`]es of *bindings* — one base-table row id per
//! bound alias — so no join level ever materializes the full binding set
//! (the sort tail, a genuine pipeline breaker, is the only operator that
//! buffers its input).
//!
//! The seed's materialize-everything executor is retained in
//! [`crate::materialize`] as the baseline the `executor` benchmark pits
//! this pipeline against.

use crate::physical::{Access, Bounds, JoinNode, PhysPlan};
use crate::sql::{ColRef, SelectItem, SqlCmp, SqlExpr, SqlPredicate};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::ops::Bound;
use std::rc::Rc;
use xqjg_store::{
    drain, fill_from_pending, hash_values, new_stats_sink, Batch, BoxedOperator, Database, OpStats,
    Operator, Row, Schema, StatsSink, Table, Value,
};

/// A binding: for each alias bound so far (outer-to-inner), the row id of
/// the base-table row the alias is bound to.
pub(crate) type Binding = Vec<usize>;

/// Counters describing the work a query execution performed — used by the
/// benchmark harness to explain *why* one plan beats another.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Rows produced by index scans.
    pub index_rows: usize,
    /// Rows produced by table scans.
    pub scan_rows: usize,
    /// Index probes performed (NLJOIN inner lookups).
    pub probes: usize,
    /// Bindings (partial join results) produced.
    pub bindings: usize,
    /// Per-operator counters, upstream operators first (empty for the
    /// materializing baseline executor).
    pub operators: Vec<OpStats>,
}

impl ExecStats {
    /// Fold another execution's counters into this one (used when a query
    /// decomposes into several SQL blocks).
    pub fn merge(&mut self, other: &ExecStats) {
        self.index_rows += other.index_rows;
        self.scan_rows += other.scan_rows;
        self.probes += other.probes;
        self.bindings += other.bindings;
        self.operators.extend(other.operators.iter().cloned());
    }
}

/// Aggregate work counters shared by all operators of one plan execution.
#[derive(Debug, Default)]
struct Agg {
    index_rows: usize,
    scan_rows: usize,
    probes: usize,
    bindings: usize,
}

type SharedAgg = Rc<RefCell<Agg>>;

/// Execute a physical plan, returning the result table.
pub fn execute(plan: &PhysPlan, db: &Database) -> Table {
    execute_with_stats(plan, db).0
}

/// Execute a physical plan through the pipelined operator tree, returning
/// the result table and work counters (aggregate and per-operator).
pub fn execute_with_stats(plan: &PhysPlan, db: &Database) -> (Table, ExecStats) {
    let sink = new_stats_sink();
    let agg: SharedAgg = Rc::new(RefCell::new(Agg::default()));
    let (aliases, join_root) = build_join_ops(&plan.root, db, &sink, &agg);
    let tables: Vec<&Table> = aliases
        .iter()
        .map(|a| alias_table(&plan.root, a, db))
        .collect();
    let mut tail = SortTail::new(join_root, aliases, tables, plan, sink.clone(), agg.clone());
    let rows = drain(&mut tail);

    // Output schema.
    let mut columns: Vec<String> = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Star(alias) => {
                let table = alias_table(&plan.root, alias, db);
                columns.extend(table.schema().columns().iter().cloned());
            }
            SelectItem::Expr { alias, .. } => columns.push(alias.clone()),
        }
    }
    let mut table = Table::new(Schema::new(columns));
    for row in rows {
        table.push(row);
    }
    let a = agg.borrow();
    let stats = ExecStats {
        index_rows: a.index_rows,
        scan_rows: a.scan_rows,
        probes: a.probes,
        bindings: a.bindings,
        operators: sink.borrow().clone(),
    };
    (table, stats)
}

/// Build the operator tree for a join-tree node; returns the aliases the
/// subtree binds (outer-to-inner) and the root operator.
fn build_join_ops<'a>(
    node: &'a JoinNode,
    db: &'a Database,
    sink: &StatsSink,
    agg: &SharedAgg,
) -> (Vec<String>, BoxedOperator<'a, Binding>) {
    match node {
        JoinNode::Leaf {
            alias,
            table,
            access,
            ..
        } => {
            let op = LeafScan::new(alias, table, access, db, sink.clone(), agg.clone());
            (vec![alias.clone()], Box::new(op))
        }
        JoinNode::Join {
            outer,
            alias,
            table,
            access,
            method: _,
            hash_keys,
            residual,
            ..
        } => {
            let (mut aliases, input) = build_join_ops(outer, db, sink, agg);
            let outer_tables: Vec<&Table> =
                aliases.iter().map(|a| alias_table(outer, a, db)).collect();
            let op: BoxedOperator<'a, Binding> = if hash_keys.is_empty() {
                Box::new(NestedLoopJoin::new(
                    input,
                    aliases.clone(),
                    outer_tables,
                    alias,
                    table,
                    access,
                    residual,
                    db,
                    sink.clone(),
                    agg.clone(),
                ))
            } else {
                Box::new(HashJoin::new(
                    input,
                    aliases.clone(),
                    outer_tables,
                    alias,
                    table,
                    access,
                    hash_keys,
                    residual,
                    db,
                    sink.clone(),
                    agg.clone(),
                ))
            };
            aliases.push(alias.clone());
            (aliases, op)
        }
    }
}

/// Scan leaf: emits single-alias bindings batch-at-a-time, either from a
/// filtered full table scan (`TBSCAN`) or a B-tree range scan (`IXSCAN`).
struct LeafScan<'a> {
    alias: &'a str,
    base: &'a Table,
    access: &'a Access,
    db: &'a Database,
    state: LeafState,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
}

enum LeafState {
    /// Full scan: next row id to examine.
    Scan { next_rid: usize },
    /// Index scan: fetched row ids (pre-residual) and the emit cursor.
    Index { rids: Vec<usize>, pos: usize },
}

impl<'a> LeafScan<'a> {
    fn new(
        alias: &'a str,
        table: &'a str,
        access: &'a Access,
        db: &'a Database,
        sink: StatsSink,
        agg: SharedAgg,
    ) -> Self {
        let name = match access {
            Access::TableScan { .. } => format!("TBSCAN({alias})"),
            Access::IndexScan { index, .. } => format!("IXSCAN({alias} ix={index})"),
        };
        LeafScan {
            alias,
            base: db.table(table).expect("table registered"),
            access,
            db,
            state: LeafState::Scan { next_rid: 0 },
            stats: OpStats::named(name),
            sink,
            agg,
        }
    }
}

impl Operator for LeafScan<'_> {
    type Item = Binding;

    fn open(&mut self) {
        self.state = match self.access {
            Access::TableScan { .. } => LeafState::Scan { next_rid: 0 },
            Access::IndexScan { index, bounds, .. } => {
                let ix = self.db.index(index).expect("index registered");
                let rids = index_range(&ix.tree, bounds, self.alias, None);
                self.agg.borrow_mut().index_rows += rids.len();
                LeafState::Index { rids, pos: 0 }
            }
        };
    }

    fn next_batch(&mut self) -> Option<Batch<Binding>> {
        let mut out: Batch<Binding> = Batch::new();
        match (&mut self.state, self.access) {
            (LeafState::Scan { next_rid }, Access::TableScan { preds }) => {
                while *next_rid < self.base.len() && !out.is_full() {
                    let rid = *next_rid;
                    *next_rid += 1;
                    let ok = preds
                        .iter()
                        .all(|p| pred_holds(p, self.alias, Some((self.base, rid)), None));
                    if ok {
                        out.push(vec![rid]);
                    }
                }
                self.agg.borrow_mut().scan_rows += out.len();
            }
            (LeafState::Index { rids, pos }, Access::IndexScan { residual, .. }) => {
                while *pos < rids.len() && !out.is_full() {
                    let rid = rids[*pos];
                    *pos += 1;
                    let ok = residual
                        .iter()
                        .all(|p| pred_holds(p, self.alias, Some((self.base, rid)), None));
                    if ok {
                        out.push(vec![rid]);
                    }
                }
            }
            _ => unreachable!("leaf state matches its access path"),
        }
        if out.is_empty() {
            return None;
        }
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// The outer-binding feed shared by both join operators: buffers one input
/// batch at a time and hands out bindings one by one.
struct Feed<'a> {
    input: BoxedOperator<'a, Binding>,
    buf: VecDeque<Binding>,
    done: bool,
    rows_in: usize,
}

impl<'a> Feed<'a> {
    fn new(input: BoxedOperator<'a, Binding>) -> Self {
        Feed {
            input,
            buf: VecDeque::new(),
            done: false,
            rows_in: 0,
        }
    }

    fn next_outer(&mut self) -> Option<Binding> {
        loop {
            if let Some(b) = self.buf.pop_front() {
                return Some(b);
            }
            if self.done {
                return None;
            }
            match self.input.next_batch() {
                Some(batch) => {
                    self.rows_in += batch.len();
                    self.buf.extend(batch);
                }
                None => self.done = true,
            }
        }
    }
}

/// Index / scan nested-loop join: the inner access path is re-probed for
/// every outer binding (with an `IndexScan` inner this is DB2's
/// NLJOIN–IXSCAN pair).
struct NestedLoopJoin<'a> {
    feed: Feed<'a>,
    outer_aliases: Vec<String>,
    outer_tables: Vec<&'a Table>,
    alias: &'a str,
    table_name: &'a str,
    base: &'a Table,
    access: &'a Access,
    residual: &'a [SqlPredicate],
    db: &'a Database,
    pending: VecDeque<Binding>,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
}

impl<'a> NestedLoopJoin<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        input: BoxedOperator<'a, Binding>,
        outer_aliases: Vec<String>,
        outer_tables: Vec<&'a Table>,
        alias: &'a str,
        table_name: &'a str,
        access: &'a Access,
        residual: &'a [SqlPredicate],
        db: &'a Database,
        sink: StatsSink,
        agg: SharedAgg,
    ) -> Self {
        NestedLoopJoin {
            feed: Feed::new(input),
            outer_aliases,
            outer_tables,
            alias,
            table_name,
            base: db.table(table_name).expect("table registered"),
            access,
            residual,
            db,
            pending: VecDeque::new(),
            stats: OpStats::named(format!("NLJOIN({alias})")),
            sink,
            agg,
        }
    }

    /// Probe the inner access path for one outer binding, queueing the
    /// surviving extended bindings.
    fn probe(&mut self, binding: &Binding, pending: &mut VecDeque<Binding>) {
        self.stats.probes += 1;
        {
            let mut agg = self.agg.borrow_mut();
            agg.probes += 1;
        }
        let env = Env {
            aliases: &self.outer_aliases,
            tables: &self.outer_tables,
            binding,
        };
        let (rows, fetched) = exec_access(
            self.access,
            self.alias,
            self.table_name,
            self.db,
            Some(&env),
        );
        record_fetched(&self.agg, fetched);
        for rid in rows {
            let ok = self
                .residual
                .iter()
                .all(|p| pred_holds(p, self.alias, Some((self.base, rid)), Some(&env)));
            if ok {
                let mut b = binding.clone();
                b.push(rid);
                pending.push_back(b);
            }
        }
    }
}

impl Operator for NestedLoopJoin<'_> {
    type Item = Binding;

    fn open(&mut self) {
        self.feed.input.open();
        self.pending.clear();
    }

    fn next_batch(&mut self) -> Option<Batch<Binding>> {
        let mut pending = std::mem::take(&mut self.pending);
        let out = fill_from_pending(&mut pending, |p| match self.feed.next_outer() {
            Some(binding) => {
                self.probe(&binding, p);
                true
            }
            None => false,
        });
        self.pending = pending;
        let out = out?;
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        self.agg.borrow_mut().bindings += out.len();
        Some(out)
    }

    fn close(&mut self) {
        self.feed.input.close();
        self.stats.rows_in = self.feed.rows_in;
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Build-once hash join: the inner rows are enumerated a single time and
/// bucketed by the *hash* of their key columns — no per-row key vector is
/// materialized; probes compare borrowed `&Value`s against the probe key to
/// resolve hash collisions.
struct HashJoin<'a> {
    feed: Feed<'a>,
    outer_aliases: Vec<String>,
    outer_tables: Vec<&'a Table>,
    alias: &'a str,
    table_name: &'a str,
    base: &'a Table,
    access: &'a Access,
    hash_keys: &'a [(SqlExpr, String)],
    residual: &'a [SqlPredicate],
    db: &'a Database,
    key_cols: Vec<usize>,
    buckets: HashMap<u64, Vec<usize>>,
    pending: VecDeque<Binding>,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
}

impl<'a> HashJoin<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        input: BoxedOperator<'a, Binding>,
        outer_aliases: Vec<String>,
        outer_tables: Vec<&'a Table>,
        alias: &'a str,
        table_name: &'a str,
        access: &'a Access,
        hash_keys: &'a [(SqlExpr, String)],
        residual: &'a [SqlPredicate],
        db: &'a Database,
        sink: StatsSink,
        agg: SharedAgg,
    ) -> Self {
        HashJoin {
            feed: Feed::new(input),
            outer_aliases,
            outer_tables,
            alias,
            table_name,
            base: db.table(table_name).expect("table registered"),
            access,
            hash_keys,
            residual,
            db,
            key_cols: Vec::new(),
            buckets: HashMap::new(),
            pending: VecDeque::new(),
            stats: OpStats::named(format!("HSJOIN({alias})")),
            sink,
            agg,
        }
    }

    /// Probe the hash table for one outer binding, queueing the surviving
    /// extended bindings.
    fn probe(&mut self, binding: &Binding, pending: &mut VecDeque<Binding>) {
        self.stats.probes += 1;
        let env = Env {
            aliases: &self.outer_aliases,
            tables: &self.outer_tables,
            binding,
        };
        let probe_vals: Vec<Value> = self
            .hash_keys
            .iter()
            .map(|(outer_expr, _)| env.eval(outer_expr))
            .collect();
        if probe_vals.iter().any(Value::is_null) {
            return;
        }
        let h = hash_values(probe_vals.iter());
        let Some(candidates) = self.buckets.get(&h) else {
            return;
        };
        for &rid in candidates {
            let row = &self.base.rows()[rid];
            // Resolve hash collisions by comparing the borrowed key values.
            let keys_match = self
                .key_cols
                .iter()
                .zip(&probe_vals)
                .all(|(&c, pv)| &row[c] == pv);
            if !keys_match {
                continue;
            }
            let ok = self
                .residual
                .iter()
                .all(|p| pred_holds(p, self.alias, Some((self.base, rid)), Some(&env)));
            if ok {
                let mut b = binding.clone();
                b.push(rid);
                pending.push_back(b);
            }
        }
    }
}

impl Operator for HashJoin<'_> {
    type Item = Binding;

    fn open(&mut self) {
        self.feed.input.open();
        self.pending.clear();
        self.buckets.clear();
        // Build side: enumerate the inner rows once, bucketing by key hash.
        let (inner_rows, fetched) =
            exec_access(self.access, self.alias, self.table_name, self.db, None);
        record_fetched(&self.agg, fetched);
        self.key_cols = self
            .hash_keys
            .iter()
            .map(|(_, col)| self.base.schema().expect_index(col))
            .collect();
        for rid in inner_rows {
            let row = &self.base.rows()[rid];
            if self.key_cols.iter().any(|&c| row[c].is_null()) {
                continue;
            }
            let h = hash_values(self.key_cols.iter().map(|&c| &row[c]));
            self.buckets.entry(h).or_default().push(rid);
            self.stats.build_rows += 1;
        }
    }

    fn next_batch(&mut self) -> Option<Batch<Binding>> {
        let mut pending = std::mem::take(&mut self.pending);
        let out = fill_from_pending(&mut pending, |p| match self.feed.next_outer() {
            Some(binding) => {
                self.probe(&binding, p);
                true
            }
            None => false,
        });
        self.pending = pending;
        let out = out?;
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        self.agg.borrow_mut().bindings += out.len();
        Some(out)
    }

    fn close(&mut self) {
        self.feed.input.close();
        self.stats.rows_in = self.feed.rows_in;
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// The plan tail: evaluates the select and order expressions per binding,
/// applies DISTINCT over the select list, restores the result order, and
/// returns the final value rows.  The sort is the pipeline's only
/// by-nature breaker: it buffers its input at `open`.
struct SortTail<'a> {
    input: BoxedOperator<'a, Binding>,
    aliases: Vec<String>,
    tables: Vec<&'a Table>,
    select: &'a [SelectItem],
    order_by: &'a [ColRef],
    distinct: bool,
    /// The sorted output, handed out by value batch-by-batch.
    rows: std::vec::IntoIter<Row>,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
}

impl<'a> SortTail<'a> {
    fn new(
        input: BoxedOperator<'a, Binding>,
        aliases: Vec<String>,
        tables: Vec<&'a Table>,
        plan: &'a PhysPlan,
        sink: StatsSink,
        agg: SharedAgg,
    ) -> Self {
        let name = match (plan.distinct, plan.order_by.is_empty()) {
            (true, _) => "SORT(distinct)",
            (false, false) => "SORT",
            (false, true) => "RETURN",
        };
        SortTail {
            input,
            aliases,
            tables,
            select: &plan.select,
            order_by: &plan.order_by,
            distinct: plan.distinct,
            rows: Vec::new().into_iter(),
            stats: OpStats::named(name),
            sink,
            agg,
        }
    }
}

impl Operator for SortTail<'_> {
    type Item = Row;

    fn open(&mut self) {
        self.input.open();
        let order_exprs: Vec<SqlExpr> = self
            .order_by
            .iter()
            .map(|c| SqlExpr::Col(c.clone()))
            .collect();
        let mut out_rows: Vec<(Row, Row)> = Vec::new();
        while let Some(batch) = self.input.next_batch() {
            for binding in batch {
                self.stats.rows_in += 1;
                let env = Env {
                    aliases: &self.aliases,
                    tables: &self.tables,
                    binding: &binding,
                };
                let mut select_vals = Vec::new();
                for item in self.select {
                    match item {
                        SelectItem::Star(alias) => {
                            let (table, rid) = env.lookup(alias);
                            select_vals.extend(table.rows()[rid].iter().cloned());
                        }
                        SelectItem::Expr { expr, .. } => select_vals.push(env.eval(expr)),
                    }
                }
                let order_vals: Row = order_exprs.iter().map(|e| env.eval(e)).collect();
                out_rows.push((select_vals, order_vals));
            }
        }
        self.agg.borrow_mut().bindings += self.stats.rows_in;
        self.stats.build_rows = out_rows.len();
        // DISTINCT over the select list.
        if self.distinct {
            let mut seen = std::collections::HashSet::new();
            out_rows.retain(|(sel, _)| seen.insert(sel.clone()));
        }
        // ORDER BY.
        out_rows.sort_by(|a, b| a.1.cmp(&b.1));
        self.rows = out_rows
            .into_iter()
            .map(|(sel, _)| sel)
            .collect::<Vec<_>>()
            .into_iter();
    }

    fn next_batch(&mut self) -> Option<Batch<Row>> {
        // Move the buffered rows out — no second clone of the result set.
        let items: Vec<Row> = self
            .rows
            .by_ref()
            .take(xqjg_store::BATCH_CAPACITY)
            .collect();
        if items.is_empty() {
            return None;
        }
        let batch = Batch::from_items(items);
        self.stats.rows_out += batch.len();
        self.stats.batches += 1;
        Some(batch)
    }

    fn close(&mut self) {
        self.input.close();
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

fn record_fetched(agg: &SharedAgg, fetched: Fetched) {
    let mut agg = agg.borrow_mut();
    match fetched {
        Fetched::Scanned(n) => agg.scan_rows += n,
        Fetched::Indexed(n) => agg.index_rows += n,
    }
}

/// Find the base table of an alias used in the join tree.
pub(crate) fn alias_table<'a>(node: &JoinNode, alias: &str, db: &'a Database) -> &'a Table {
    fn table_name<'n>(node: &'n JoinNode, alias: &str) -> Option<&'n str> {
        match node {
            JoinNode::Leaf {
                alias: a, table, ..
            } => (a == alias).then_some(table.as_str()),
            JoinNode::Join {
                outer,
                alias: a,
                table,
                ..
            } => {
                if a == alias {
                    Some(table.as_str())
                } else {
                    table_name(outer, alias)
                }
            }
        }
    }
    let name = table_name(node, alias).unwrap_or_else(|| panic!("alias {alias:?} not in plan"));
    db.table(name).expect("table registered")
}

/// Evaluation environment: one bound row per alias.
pub(crate) struct Env<'a> {
    pub(crate) aliases: &'a [String],
    pub(crate) tables: &'a [&'a Table],
    pub(crate) binding: &'a [usize],
}

impl<'a> Env<'a> {
    pub(crate) fn lookup(&self, alias: &str) -> (&'a Table, usize) {
        let idx = self
            .aliases
            .iter()
            .position(|a| a == alias)
            .unwrap_or_else(|| panic!("alias {alias:?} not bound"));
        (self.tables[idx], self.binding[idx])
    }

    pub(crate) fn eval(&self, expr: &SqlExpr) -> Value {
        match expr {
            SqlExpr::Lit(v) => v.clone(),
            SqlExpr::Col(c) => {
                let (table, rid) = self.lookup(&c.table);
                table.rows()[rid][table.schema().expect_index(&c.column)].clone()
            }
            SqlExpr::Add(a, b) => self.eval(a).numeric_add(&self.eval(b)),
        }
    }
}

/// Evaluate an expression that may reference the current alias's candidate
/// row (`current`) or outer aliases through `outer`.
pub(crate) fn eval_expr(
    expr: &SqlExpr,
    current_alias: &str,
    current: Option<(&Table, usize)>,
    outer: Option<&Env<'_>>,
) -> Value {
    match expr {
        SqlExpr::Lit(v) => v.clone(),
        SqlExpr::Col(c) => {
            if c.table == current_alias {
                let (table, rid) = current.expect("current row required");
                table.rows()[rid][table.schema().expect_index(&c.column)].clone()
            } else {
                outer
                    .expect("outer environment required")
                    .eval(&SqlExpr::Col(c.clone()))
            }
        }
        SqlExpr::Add(a, b) => eval_expr(a, current_alias, current, outer).numeric_add(&eval_expr(
            b,
            current_alias,
            current,
            outer,
        )),
    }
}

pub(crate) fn pred_holds(
    pred: &SqlPredicate,
    current_alias: &str,
    current: Option<(&Table, usize)>,
    outer: Option<&Env<'_>>,
) -> bool {
    let l = eval_expr(&pred.lhs, current_alias, current, outer);
    let r = eval_expr(&pred.rhs, current_alias, current, outer);
    match l.sql_cmp(&r) {
        Some(ord) => pred.op.eval(ord),
        None => false,
    }
}

/// How many rows an access-path execution fetched, and through which path
/// (table scans report the post-filter count, index scans the pre-residual
/// fetch count — the quantities Table IX's work accounting uses).
pub(crate) enum Fetched {
    /// Rows surviving a full scan's pushed-down filters.
    Scanned(usize),
    /// Rows fetched from a B-tree range scan (before residual filtering).
    Indexed(usize),
}

/// Execute an access path, returning the matching row ids and the fetch
/// accounting.
pub(crate) fn exec_access(
    access: &Access,
    alias: &str,
    table_name: &str,
    db: &Database,
    outer: Option<&Env<'_>>,
) -> (Vec<usize>, Fetched) {
    let base = db.table(table_name).expect("table registered");
    match access {
        Access::TableScan { preds } => {
            let mut out = Vec::new();
            for rid in 0..base.len() {
                let ok = preds
                    .iter()
                    .all(|p| pred_holds(p, alias, Some((base, rid)), outer));
                if ok {
                    out.push(rid);
                }
            }
            let n = out.len();
            (out, Fetched::Scanned(n))
        }
        Access::IndexScan {
            index,
            bounds,
            residual,
        } => {
            let ix = db.index(index).expect("index registered");
            let rows = index_range(&ix.tree, bounds, alias, outer);
            let fetched = rows.len();
            let out: Vec<usize> = rows
                .into_iter()
                .filter(|&rid| {
                    residual
                        .iter()
                        .all(|p| pred_holds(p, alias, Some((base, rid)), outer))
                })
                .collect();
            (out, Fetched::Indexed(fetched))
        }
    }
}

/// Perform the B-tree range scan described by the probe bounds.
pub(crate) fn index_range(
    tree: &xqjg_store::BPlusTree,
    bounds: &Bounds,
    alias: &str,
    outer: Option<&Env<'_>>,
) -> Vec<usize> {
    let eq_vals: Vec<Value> = bounds
        .eq
        .iter()
        .map(|(_, e)| eval_expr(e, alias, None, outer))
        .collect();
    let (lower_key, lower_bound);
    let (upper_key, upper_bound);
    match (&bounds.lower, &bounds.upper) {
        (None, None) => {
            lower_key = eq_vals.clone();
            lower_bound = true;
            upper_key = eq_vals.clone();
            upper_bound = true;
        }
        (lo, hi) => {
            match lo {
                Some((e, inclusive)) => {
                    let mut k = eq_vals.clone();
                    k.push(eval_expr(e, alias, None, outer));
                    lower_key = k;
                    lower_bound = *inclusive;
                }
                None => {
                    lower_key = eq_vals.clone();
                    lower_bound = true;
                }
            }
            match hi {
                Some((e, inclusive)) => {
                    let mut k = eq_vals.clone();
                    k.push(eval_expr(e, alias, None, outer));
                    upper_key = k;
                    upper_bound = *inclusive;
                }
                None => {
                    upper_key = eq_vals.clone();
                    upper_bound = true;
                }
            }
        }
    }
    let lower = if lower_bound {
        Bound::Included(lower_key.as_slice())
    } else {
        Bound::Excluded(lower_key.as_slice())
    };
    let upper = if upper_bound {
        Bound::Included(upper_key.as_slice())
    } else {
        Bound::Excluded(upper_key.as_slice())
    };
    // An empty bound vector means an unbounded side.
    let lower = if lower_key.is_empty() {
        Bound::Unbounded
    } else {
        lower
    };
    let upper = if upper_key.is_empty() {
        Bound::Unbounded
    } else {
        upper
    };
    tree.range(lower, upper)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Convenience: optimize and execute an SQL text against the database.
pub fn run_sql(sql: &str, db: &Database) -> Result<Table, Box<dyn std::error::Error>> {
    let query = crate::sqlparse::parse_sql(sql)?;
    let plan = crate::optimizer::optimize(&query, db)?;
    Ok(execute(&plan, db))
}

/// Check a predicate operator against an ordering (exposed for reuse).
pub fn cmp_eval(op: SqlCmp, ord: std::cmp::Ordering) -> bool {
    op.eval(ord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialize::execute_materialized_with_stats;
    use crate::optimizer::optimize;
    use crate::sqlparse::parse_sql;
    use xqjg_store::IndexDef;

    /// Small XML-encoding-like database: one document with nested elements.
    fn db() -> Database {
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        type FixtureRow = (
            i64,
            i64,
            i64,
            &'static str,
            Option<&'static str>,
            Option<&'static str>,
        );
        let rows: Vec<FixtureRow> = vec![
            (0, 8, 0, "DOC", Some("a.xml"), None),
            (1, 7, 1, "ELEM", Some("site"), None),
            (2, 2, 2, "ELEM", Some("open_auction"), None),
            (3, 1, 3, "ELEM", Some("bidder"), None),
            (4, 0, 4, "TEXT", None, Some("10")),
            (5, 3, 2, "ELEM", Some("open_auction"), None),
            (6, 0, 3, "ELEM", Some("initial"), Some("15")),
            (7, 1, 3, "ELEM", Some("bidder"), None),
            (8, 0, 4, "TEXT", None, Some("20")),
        ];
        for (pre, size, level, kind, name, value) in rows {
            t.push(vec![
                Value::Int(pre),
                Value::Int(size),
                Value::Int(level),
                Value::str(kind),
                name.map(Value::str).unwrap_or(Value::Null),
                value.map(Value::str).unwrap_or(Value::Null),
                value
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(Value::Dec)
                    .unwrap_or(Value::Null),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db.create_index(IndexDef {
            name: "nkspl".into(),
            table: "doc".into(),
            key_columns: vec![
                "name".into(),
                "kind".into(),
                "size".into(),
                "pre".into(),
                "level".into(),
            ],
            include_columns: vec![],
            clustered: false,
        });
        db.create_index(IndexDef {
            name: "p".into(),
            table: "doc".into(),
            key_columns: vec!["pre".into()],
            include_columns: vec![],
            clustered: true,
        });
        db
    }

    const Q1_LIKE: &str = "SELECT DISTINCT d2.* \
        FROM doc AS d1, doc AS d2, doc AS d3 \
        WHERE d1.kind = 'DOC' AND d1.name = 'a.xml' \
          AND d2.kind = 'ELEM' AND d2.name = 'open_auction' \
          AND d2.pre > d1.pre AND d2.pre <= d1.pre + d1.size \
          AND d3.kind = 'ELEM' AND d3.name = 'bidder' \
          AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
          AND d2.level + 1 = d3.level \
        ORDER BY d2.pre";

    #[test]
    fn executes_q1_join_graph() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        // Both open_auction elements (pre 2 and 5) have a bidder child.
        assert_eq!(result.len(), 2);
        let pre_idx = result.schema().expect_index("pre");
        assert_eq!(result.rows()[0][pre_idx], Value::Int(2));
        assert_eq!(result.rows()[1][pre_idx], Value::Int(5));
    }

    #[test]
    fn distinct_removes_duplicate_result_rows() {
        let db = db();
        // Without the level predicate, descendants at any depth qualify; the
        // DISTINCT on d2.* must still deliver each open_auction once.
        let sql = Q1_LIKE.replace(" AND d2.level + 1 = d3.level ", " ");
        let q = parse_sql(&sql).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn order_by_descending_document_order_not_supported_but_asc_enforced() {
        let db = db();
        let q =
            parse_sql("SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'ELEM' ORDER BY d1.pre")
                .unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        let pres: Vec<i64> = result
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let mut sorted = pres.clone();
        sorted.sort();
        assert_eq!(pres, sorted);
        assert_eq!(result.schema().columns(), &["p".to_string()]);
    }

    #[test]
    fn run_sql_end_to_end() {
        let db = db();
        let t = run_sql(
            "SELECT d1.* FROM doc AS d1 WHERE d1.name = 'bidder' ORDER BY d1.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn exec_stats_count_probes_and_rows() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (_, stats) = execute_with_stats(&plan, &db);
        assert!(stats.probes > 0);
        assert!(stats.index_rows + stats.scan_rows > 0);
    }

    #[test]
    fn per_operator_stats_cover_the_whole_tree() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (result, stats) = execute_with_stats(&plan, &db);
        // One leaf + two joins + the sort tail.
        assert_eq!(stats.operators.len(), 4);
        let tail = stats
            .operators
            .iter()
            .find(|o| o.name.starts_with("SORT"))
            .expect("sort tail reports stats");
        assert_eq!(tail.rows_out, result.len());
        assert!(tail.rows_in >= tail.rows_out);
        let joins = stats
            .operators
            .iter()
            .filter(|o| o.name.starts_with("NLJOIN") || o.name.starts_with("HSJOIN"))
            .count();
        assert_eq!(joins, 2);
        for op in &stats.operators {
            assert!(op.rows_out == 0 || op.batches > 0, "{}", op.name);
        }
    }

    #[test]
    fn pipelined_executor_matches_materializing_baseline() {
        let db = db();
        for sql in [
            Q1_LIKE.to_string(),
            Q1_LIKE.replace(" AND d2.level + 1 = d3.level ", " "),
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'ELEM' ORDER BY d1.pre".to_string(),
            "SELECT d2.pre AS a, d3.pre AS b FROM doc AS d2, doc AS d3 \
             WHERE d2.name = 'open_auction' AND d3.name = 'bidder' \
               AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
             ORDER BY d2.pre, d3.pre"
                .to_string(),
        ] {
            let q = parse_sql(&sql).unwrap();
            let plan = optimize(&q, &db).unwrap();
            let (pipelined, pstats) = execute_with_stats(&plan, &db);
            let (materialized, mstats) = execute_materialized_with_stats(&plan, &db);
            assert_eq!(pipelined, materialized, "{sql}");
            // Aggregate work accounting agrees between the two executors.
            assert_eq!(pstats.index_rows, mstats.index_rows, "{sql}");
            assert_eq!(pstats.scan_rows, mstats.scan_rows, "{sql}");
            assert_eq!(pstats.probes, mstats.probes, "{sql}");
            assert_eq!(pstats.bindings, mstats.bindings, "{sql}");
        }
    }

    #[test]
    fn value_predicates_via_index_or_scan() {
        let db = db();
        let t = run_sql(
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.name = 'initial' AND d1.data >= 10 ORDER BY d1.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(6));
    }

    #[test]
    fn select_expressions_and_multiple_order_keys() {
        let db = db();
        let t = run_sql(
            "SELECT d2.pre AS a, d3.pre AS b FROM doc AS d2, doc AS d3 \
             WHERE d2.name = 'open_auction' AND d3.name = 'bidder' \
               AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
             ORDER BY d2.pre, d3.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().columns(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn exec_stats_merge_folds_counters() {
        let mut a = ExecStats {
            index_rows: 1,
            scan_rows: 2,
            probes: 3,
            bindings: 4,
            operators: vec![OpStats::named("IXSCAN(d1)")],
        };
        let b = ExecStats {
            index_rows: 10,
            scan_rows: 20,
            probes: 30,
            bindings: 40,
            operators: vec![OpStats::named("SORT")],
        };
        a.merge(&b);
        assert_eq!(a.index_rows, 11);
        assert_eq!(a.scan_rows, 22);
        assert_eq!(a.probes, 33);
        assert_eq!(a.bindings, 44);
        assert_eq!(a.operators.len(), 2);
    }
}
