//! Pipelined, morsel-parallel execution of physical plans.
//!
//! The executor implements the operator repertoire of Table VII as a tree
//! of discrete pull-based operators over the [`xqjg_store::Operator`]
//! substrate: index and table scan leaves, index nested-loop joins (the
//! inner access path is re-probed for every outer binding, with probe
//! bounds computed from the outer columns), build-once hash joins probed
//! with borrowed keys, and the plan tail (select/order evaluation,
//! duplicate-eliminating SORT, RETURN).  Tuples flow between operators in
//! fixed-capacity [`Batch`]es of *bindings* — one base-table row id per
//! bound alias — so no join level ever materializes the full binding set
//! (the sort tail, a genuine pipeline breaker, is the only operator that
//! buffers its input).
//!
//! Execution is **morsel-driven** (see [`xqjg_store::morsel`]): the scan
//! leaf's row-id domain is cut into fixed-size morsels, and up to
//! [`ExecConfig::threads`] scoped workers each run a private copy of the
//! pipeline fragment over one morsel at a time.  The genuine pipeline
//! breakers anchor the merge points: hash-join build sides are built once
//! up front and shared read-only by all workers, and the SORT tail
//! concatenates the per-morsel outputs *in morsel order* before the
//! distinct/sort pass — which makes results, EXPLAIN actuals and the
//! aggregate work counters byte-identical across degrees of parallelism.
//!
//! The seed's materialize-everything executor is retained in
//! [`crate::materialize`] as the baseline the `executor` benchmark pits
//! this pipeline against.

use crate::explain::CacheActuals;
use crate::physical::{Access, Bounds, JoinNode, PhysPlan};
use crate::sql::{SelectItem, SqlCmp, SqlExpr, SqlPredicate};
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Bound;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;
use xqjg_store::{
    effective_morsel_size, fill_from_pending_with_capacity, gather_i64, gather_u32,
    hash_keys_typed, hash_values, mask_terms, merge_worker_stats, new_stats_sink,
    partition_morsels, row_footprint, try_execute_morsels_streaming, Batch, BatchSizer, BitMask,
    BoxedOperator, CancelToken, ColOperator, ColumnBatch, Database, ExecConfig, ExecError,
    ExternalSorter, GraceBuilder, HashKey, Interrupt, KernelCmp, MaskTerm, MemBudget, Morsel,
    OpStats, Operator, PostingsCache, PostingsKey, Row, Schema, SpilledPartitions, StatsSink,
    Table, TypedColumn, Value, BUILD_ENTRY_FOOTPRINT,
};

/// Per-morsel error slot.  The pull-based [`Operator`]/[`ColOperator`]
/// protocols are infallible, so the two operators that perform fallible
/// I/O mid-pipeline (hash-join probes over a *spilled* build side) record
/// the first failure here and stop producing; the morsel driver checks the
/// slot after the pipeline closes and fails the morsel with that error.
type ErrSlot = Rc<RefCell<Option<ExecError>>>;

/// A binding: for each alias bound so far (outer-to-inner), the row id of
/// the base-table row the alias is bound to.
pub(crate) type Binding = Vec<usize>;

/// Counters describing the work a query execution performed — used by the
/// benchmark harness to explain *why* one plan beats another.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Rows produced by index scans.
    pub index_rows: usize,
    /// Rows produced by table scans.
    pub scan_rows: usize,
    /// Index probes performed (NLJOIN inner lookups).
    pub probes: usize,
    /// Bindings (partial join results) produced.
    pub bindings: usize,
    /// Per-operator counters, upstream operators first (empty for the
    /// materializing baseline executor).
    pub operators: Vec<OpStats>,
}

impl ExecStats {
    /// Fold another execution's counters into this one (used when a query
    /// decomposes into several SQL blocks).
    pub fn merge(&mut self, other: &ExecStats) {
        self.index_rows += other.index_rows;
        self.scan_rows += other.scan_rows;
        self.probes += other.probes;
        self.bindings += other.bindings;
        self.operators.extend(other.operators.iter().cloned());
    }
}

/// Aggregate work counters of one plan execution.  Every worker pipeline
/// accumulates a private instance (operators fold their local counters in
/// at `close` — nothing touches shared state per tuple) and the
/// coordinator sums them.
#[derive(Debug, Clone, Default)]
struct Agg {
    index_rows: usize,
    scan_rows: usize,
    probes: usize,
    bindings: usize,
}

impl Agg {
    fn add(&mut self, other: &Agg) {
        self.index_rows += other.index_rows;
        self.scan_rows += other.scan_rows;
        self.probes += other.probes;
        self.bindings += other.bindings;
    }
}

type SharedAgg = Rc<RefCell<Agg>>;

/// Execute a physical plan, returning the result table.  Parallelism and
/// batching follow the environment knobs (see [`ExecConfig::from_env`]).
#[deprecated(note = "use QueryRequest::new(plan, db).run()")]
pub fn execute(plan: &PhysPlan, db: &Database) -> Table {
    QueryRequest::new(plan, db).expect_run().rows
}

/// Execute a physical plan, returning the result table and work counters
/// (aggregate and per-operator).  Parallelism and batching follow the
/// environment knobs (see [`ExecConfig::from_env`]).
#[deprecated(note = "use QueryRequest::new(plan, db).run()")]
pub fn execute_with_stats(plan: &PhysPlan, db: &Database) -> (Table, ExecStats) {
    let out = QueryRequest::new(plan, db).expect_run();
    (out.rows, out.stats)
}

/// One stage of the flattened left-deep join chain: the leaf scan (stage
/// 0) or one join level.
struct Stage<'a> {
    alias: &'a str,
    table_name: &'a str,
    base: &'a Table,
    access: &'a Access,
    hash_keys: &'a [(SqlExpr, String)],
    residual: &'a [SqlPredicate],
    /// Aliases bound by the stages below this one, outer-to-inner.
    outer_aliases: Vec<String>,
    /// Base tables of `outer_aliases`.
    outer_tables: Vec<&'a Table>,
}

/// Flatten the left-deep join tree into its stage sequence.
fn flatten_stages<'a>(node: &'a JoinNode, db: &'a Database) -> Vec<Stage<'a>> {
    match node {
        JoinNode::Leaf {
            alias,
            table,
            access,
            ..
        } => vec![Stage {
            alias,
            table_name: table,
            base: db.table(table).expect("table registered"),
            access,
            hash_keys: &[],
            residual: &[],
            outer_aliases: Vec::new(),
            outer_tables: Vec::new(),
        }],
        JoinNode::Join {
            outer,
            alias,
            table,
            access,
            hash_keys,
            residual,
            ..
        } => {
            let stages = flatten_stages(outer, db);
            let outer_aliases: Vec<String> = stages.iter().map(|s| s.alias.to_string()).collect();
            let outer_tables: Vec<&Table> = stages.iter().map(|s| s.base).collect();
            let mut stages = stages;
            stages.push(Stage {
                alias,
                table_name: table,
                base: db.table(table).expect("table registered"),
                access,
                hash_keys,
                residual,
                outer_aliases,
                outer_tables,
            });
            stages
        }
    }
}

/// A posting list handed to the operators: owned fresh off the B-tree, or
/// shared out of the [`PostingsCache`] (hit *and* insert paths — the cache
/// hands back an `Arc` either way).  Derefs to the rid slice, so consumers
/// never care which.
pub(crate) enum Postings {
    Owned(Vec<usize>),
    Shared(Arc<Vec<usize>>),
}

impl Postings {
    /// Take an owned vector; copies only when the list is shared.
    fn into_vec(self) -> Vec<usize> {
        match self {
            Postings::Owned(v) => v,
            Postings::Shared(v) => (*v).clone(),
        }
    }
}

impl std::ops::Deref for Postings {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        match self {
            Postings::Owned(v) => v,
            Postings::Shared(v) => v,
        }
    }
}

/// The postings cache paired with the catalog version the execution
/// observed at entry (`None` = memoization off for this execution, either
/// no cache supplied or `XQJG_POSTINGS_CACHE=0`).
pub(crate) type PostingsCtx<'a> = Option<(&'a PostingsCache, u64)>;

/// `IXSCAN` probe bounds with every expression evaluated to a constant
/// composite key: the canonical form shared by the interpreted and
/// compiled paths, and — together with the index name — the
/// [`PostingsKey`] of the memoized range scan.  An unbounded side is the
/// empty key with its inclusive flag normalized to `true`, so every range
/// has exactly one spelling (cache keys must not alias).
struct ResolvedBounds {
    lower: Vec<Value>,
    lower_inc: bool,
    upper: Vec<Value>,
    upper_inc: bool,
}

impl ResolvedBounds {
    fn lower_bound(&self) -> Bound<&[Value]> {
        if self.lower.is_empty() {
            Bound::Unbounded
        } else if self.lower_inc {
            Bound::Included(self.lower.as_slice())
        } else {
            Bound::Excluded(self.lower.as_slice())
        }
    }

    fn upper_bound(&self) -> Bound<&[Value]> {
        if self.upper.is_empty() {
            Bound::Unbounded
        } else if self.upper_inc {
            Bound::Included(self.upper.as_slice())
        } else {
            Bound::Excluded(self.upper.as_slice())
        }
    }

    fn into_key(self, index: &str) -> PostingsKey {
        PostingsKey {
            index: index.to_string(),
            lower: self.lower,
            lower_inc: self.lower_inc,
            upper: self.upper,
            upper_inc: self.upper_inc,
        }
    }
}

/// Run (or recall) the B-tree range scan for resolved bounds.  With a
/// postings context the scan is memoized under (index name, bounds) and
/// the catalog version; without one it walks the tree directly.  Hit or
/// miss, callers count `rids.len()` into their fetch accounting — the
/// EXPLAIN actuals never depend on cache state.
fn cached_tree_range(
    tree: &xqjg_store::BPlusTree,
    rb: ResolvedBounds,
    index: &str,
    ctx: PostingsCtx<'_>,
) -> Postings {
    match ctx {
        Some((cache, version)) => {
            let (rids, _hit) = cache.get_or_compute(version, rb.into_key(index), |k| {
                tree.range_rids(k.lower_bound(), k.upper_bound())
            });
            Postings::Shared(rids)
        }
        None => Postings::Owned(tree.range_rids(rb.lower_bound(), rb.upper_bound())),
    }
}

/// The scan leaf's row-id domain, computed once before the workers start.
enum LeafDomain {
    /// `TBSCAN`: the base table's full rid range `[0, n)`.
    Rids(usize),
    /// `IXSCAN`: the pre-fetched posting list (pre-residual).
    Postings(Postings),
}

impl LeafDomain {
    fn len(&self) -> usize {
        match self {
            LeafDomain::Rids(n) => *n,
            LeafDomain::Postings(rids) => rids.len(),
        }
    }
}

/// Everything the spill machinery of one execution needs: the shared
/// [`MemBudget`] accountant, the run directory, the transient-failure
/// retry allowance and the cancellation/deadline context.
#[derive(Clone)]
struct SpillCtx {
    budget: Arc<MemBudget>,
    dir: PathBuf,
    retries: usize,
    interrupt: Interrupt,
}

/// Bytes booked against the execution's budget, released when the guard
/// drops — success and error paths alike, so every early `?` return still
/// drains the budget to zero.
struct Booked {
    budget: Arc<MemBudget>,
    bytes: usize,
}

impl Booked {
    fn new(budget: Arc<MemBudget>) -> Booked {
        Booked { budget, bytes: 0 }
    }

    /// Book unconditionally (the memory already exists).
    fn force(&mut self, bytes: usize) {
        self.budget.reserve_force(bytes);
        self.bytes += bytes;
    }

    /// Book if the budget allows it.
    fn try_book(&mut self, bytes: usize) -> bool {
        if self.budget.try_reserve(bytes) {
            self.bytes += bytes;
            true
        } else {
            false
        }
    }

    /// Release everything booked so far.
    fn clear(&mut self) {
        self.budget.release(self.bytes);
        self.bytes = 0;
    }
}

impl Drop for Booked {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// Declared first in [`try_execute_full`] so it drops last: by then every
/// operator, sorter, probe cache and booking guard has released its
/// reservations, and a non-zero balance is an accounting bug.
struct DrainCheck(Arc<MemBudget>);

impl Drop for DrainCheck {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            debug_assert_eq!(
                self.0.used(),
                0,
                "execution must drain its memory budget on every exit path"
            );
        }
    }
}

/// Where a hash-join build side lives.
enum BuildBackend {
    /// The classical in-memory bucket table.
    Mem(HashMap<u64, Vec<usize>>),
    /// Grace-style hash partitions on disk (the budget tripped during the
    /// build).  Probes route by hash and load one partition at a time.
    Spilled(SpilledPartitions),
}

/// A hash join's build side: enumerated and bucketed exactly once per
/// execution, then shared read-only by every worker pipeline (the
/// partitioned-build alternative would duplicate the build work
/// accounting; sharing keeps `build_rows` identical to DOP = 1).
///
/// In-memory builds are pure functions of (table contents, pushed-down
/// access path, key columns), so a [`BuildCache`] may hand the same build
/// to several executions of a session.  Builds that spilled under the
/// memory budget are *not* cached: their partition files are per-execution
/// temp state, and memoizing them would defeat the budget.
pub(crate) struct JoinBuild {
    key_cols: Vec<usize>,
    backend: BuildBackend,
    build_rows: usize,
    /// Rows fetched through a table scan while enumerating the build side.
    fetched_scan: usize,
    /// Rows fetched through an index while enumerating the build side.
    fetched_index: usize,
    /// Partition files written while Grace-partitioning (0 for in-memory
    /// builds).
    spill_runs: usize,
    /// Bytes written while Grace-partitioning.
    spill_bytes: usize,
    /// Leaf partitions of a spilled build (0 for in-memory builds).
    partitions: usize,
    /// Transient write failures retried while Grace-partitioning.
    retries: usize,
    /// Footprint of the in-memory bucket table in bytes.  The build holds
    /// no reservation of its own (it may outlive its execution in a
    /// session cache): every execution that uses the build — fresh or
    /// cached — books this many bytes against *its* budget for its
    /// lifetime, so hit and miss runs make identical spill decisions.
    reserved: usize,
}

impl JoinBuild {
    fn build(stage: &Stage<'_>, db: &Database, spill: &SpillCtx) -> Result<JoinBuild, ExecError> {
        // No postings context here: the build cache memoizes the whole
        // finished build, so memoizing its enumeration scan too would
        // only duplicate the rid list in two caches.
        let (inner_rows, fetched) =
            exec_access(stage.access, stage.alias, stage.table_name, db, None, None);
        let (fetched_scan, fetched_index) = match fetched {
            Fetched::Scanned(n) => (n, 0),
            Fetched::Indexed(n) => (0, n),
        };
        let key_cols: Vec<usize> = stage
            .hash_keys
            .iter()
            .map(|(_, col)| stage.base.schema().expect_index(col))
            .collect();
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut build_rows = 0;
        // Build-time bookings release on every exit — the error paths out
        // of the Grace writers included — and on success just before the
        // caller re-books the finished table's footprint.
        let mut res = Booked::new(spill.budget.clone());
        let mut grace: Option<GraceBuilder> = None;
        for &rid in inner_rows.iter() {
            if build_rows % 4096 == 0 {
                spill.interrupt.check()?;
            }
            let row = &stage.base.rows()[rid];
            if key_cols.iter().any(|&c| row[c].is_null()) {
                continue;
            }
            let h = hash_values(key_cols.iter().map(|&c| &row[c]));
            build_rows += 1;
            if let Some(g) = &mut grace {
                g.add(h, rid)?;
                continue;
            }
            if res.try_book(BUILD_ENTRY_FOOTPRINT) {
                buckets.entry(h).or_default().push(rid);
                continue;
            }
            // The budget tripped: switch to a Grace-partitioned build.
            // The buckets gathered so far drain to the partition files
            // (per-hash rid order is preserved — every bucket keeps its
            // scan order, and loads group by hash — so probe results and
            // their order are identical to the in-memory backend).
            let mut g = GraceBuilder::new(spill.dir.clone())?;
            g.set_retries(spill.retries);
            g.set_interrupt(spill.interrupt.clone());
            for (bh, rids) in buckets.drain() {
                for brid in rids {
                    g.add(bh, brid)?;
                }
            }
            res.clear();
            g.add(h, rid)?;
            grace = Some(g);
        }
        let (backend, spill_runs, spill_bytes, partitions, retries) = match grace {
            Some(g) => {
                // A loaded partition should fit in half the budget so that
                // probe-side partition tables can rotate without thrashing
                // the whole allowance.
                let load_limit = spill
                    .budget
                    .limit()
                    .map(|l| (l / 2).max(BUILD_ENTRY_FOOTPRINT))
                    .unwrap_or(usize::MAX);
                let parts = g.finish(load_limit)?;
                let (runs, bytes, nparts, retried) = (
                    parts.spill_runs,
                    parts.spill_bytes,
                    parts.partitions(),
                    parts.retries,
                );
                (BuildBackend::Spilled(parts), runs, bytes, nparts, retried)
            }
            None => (BuildBackend::Mem(buckets), 0, 0, 0, 0),
        };
        let reserved = res.bytes;
        res.clear();
        Ok(JoinBuild {
            key_cols,
            backend,
            build_rows,
            fetched_scan,
            fetched_index,
            spill_runs,
            spill_bytes,
            partitions,
            retries,
            reserved,
        })
    }

    /// Did this build spill to Grace partitions?
    fn is_spilled(&self) -> bool {
        matches!(self.backend, BuildBackend::Spilled(_))
    }

    /// Cache key: the build is fully determined by the inner table, the key
    /// columns and the pushed-down access path (whose expressions are
    /// constant on a build side — it is resolved with no outer bindings).
    fn cache_key(stage: &Stage<'_>) -> String {
        let keys: Vec<&str> = stage.hash_keys.iter().map(|(_, c)| c.as_str()).collect();
        format!("{}|{}|{:?}", stage.table_name, keys.join(","), stage.access)
    }
}

/// Probe-side view of a Grace-partitioned build: a small per-worker cache
/// of loaded partition bucket tables, bounded by the shared [`MemBudget`].
/// Each worker pipeline owns one — the shared [`SpilledPartitions`] is
/// immutable, so no locks are needed — and evicts FIFO when a new load
/// does not fit.  A single partition larger than what is left is loaded
/// anyway (progress guarantee); the overshoot shows in the budget's peak.
struct PartitionProbe<'a> {
    parts: &'a SpilledPartitions,
    budget: Arc<MemBudget>,
    loaded: HashMap<usize, LoadedPart>,
    fifo: VecDeque<usize>,
}

struct LoadedPart {
    buckets: HashMap<u64, Vec<usize>>,
    bytes: usize,
}

impl<'a> PartitionProbe<'a> {
    fn new(parts: &'a SpilledPartitions, budget: Arc<MemBudget>) -> Self {
        PartitionProbe {
            parts,
            budget,
            loaded: HashMap::new(),
            fifo: VecDeque::new(),
        }
    }

    /// The build candidates for probe hash `h`, loading (and possibly
    /// evicting) partitions as needed.  A failed partition read releases
    /// its booking before surfacing.
    fn candidates(&mut self, h: u64) -> Result<Option<&Vec<usize>>, ExecError> {
        let pid = self.parts.partition_of(h);
        if !self.loaded.contains_key(&pid) {
            let bytes = self.parts.load_footprint(pid);
            // Transient bookings: per-worker cache lifetime depends on
            // scheduling, and spill decisions elsewhere must not see it.
            let mut booked = self.budget.try_reserve_transient(bytes);
            while !booked {
                let Some(victim) = self.fifo.pop_front() else {
                    break;
                };
                if let Some(lp) = self.loaded.remove(&victim) {
                    self.budget.release_transient(lp.bytes);
                }
                booked = self.budget.try_reserve_transient(bytes);
            }
            if !booked {
                self.budget.reserve_transient_force(bytes);
            }
            let buckets = match self.parts.load(pid) {
                Ok(b) => b,
                Err(e) => {
                    self.budget.release_transient(bytes);
                    return Err(e);
                }
            };
            self.loaded.insert(pid, LoadedPart { buckets, bytes });
            self.fifo.push_back(pid);
        }
        Ok(self.loaded[&pid].buckets.get(&h))
    }

    /// Resolve a whole batch of probe hashes partition-by-partition: rows
    /// are grouped by their Grace partition (deterministic ascending pid
    /// order) and each group is resolved consecutively, so every partition
    /// is loaded at most once per batch regardless of how the probe rows
    /// interleave.  Returns the candidate rid list per input row, in input
    /// order — callers then probe rows in their original order, keeping
    /// output row order identical to per-row [`Self::candidates`] calls.
    fn spool(&mut self, hashes: &[Option<u64>]) -> Result<Vec<Vec<usize>>, ExecError> {
        let mut by_part: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, h) in hashes.iter().enumerate() {
            // NULL-keyed probe rows (no hash) match nothing — leave their
            // candidate lists empty without touching any partition.
            if let Some(h) = h {
                by_part
                    .entry(self.parts.partition_of(*h))
                    .or_default()
                    .push(i);
            }
        }
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); hashes.len()];
        for (_, rows) in by_part {
            for i in rows {
                let h = hashes[i].expect("only hashed rows were grouped");
                if let Some(c) = self.candidates(h)? {
                    out[i] = c.clone();
                }
            }
        }
        Ok(out)
    }
}

impl Drop for PartitionProbe<'_> {
    fn drop(&mut self) {
        for (_, lp) in self.loaded.drain() {
            self.budget.release_transient(lp.bytes);
        }
    }
}

/// Default [`BuildCache`] capacity in bytes.
pub const BUILD_CACHE_BYTES: usize = 64 << 20;

/// Fixed per-build charge covering the [`JoinBuild`] struct itself on top
/// of its bucket-table footprint.
const BUILD_BASE_COST: usize = 256;

/// Concurrent memo of hash-join build sides, keyed by (table, key
/// columns, pushed-down filters) and invalidated whenever the catalog
/// version moves (table or index DDL).  Built on the byte-bounded
/// [`ShardedLru`], so it is `Arc`-shared across `Processor` instances
/// (cloning the handle shares the cache) and bounded for long-lived
/// sessions: each build is charged its resident bucket-table footprint
/// and least-recently-used builds evict when the bound trips.  Repeated
/// queries skip re-enumerating and re-bucketing unchanged build sides;
/// hits surface as `cache_hits` in the operator's [`OpStats`].  The
/// cached builds are shared read-only (`Arc`) with the morsel workers of
/// each execution, which still books `JoinBuild::reserved` against its
/// own budget — hit and miss runs make identical spill decisions.
#[derive(Clone)]
pub struct BuildCache {
    inner: Arc<xqjg_store::ShardedLru<String, JoinBuild>>,
}

impl Default for BuildCache {
    fn default() -> Self {
        BuildCache::new()
    }
}

impl BuildCache {
    /// A cache with the default byte capacity.
    pub fn new() -> Self {
        BuildCache::with_capacity(BUILD_CACHE_BYTES)
    }

    /// A cache bounded to `bytes`.
    pub fn with_capacity(bytes: usize) -> Self {
        BuildCache {
            inner: Arc::new(xqjg_store::ShardedLru::new(bytes)),
        }
    }

    /// Number of lookups satisfied from the cache so far.
    pub fn hits(&self) -> usize {
        self.inner.hits()
    }

    /// Number of build-side lookups performed so far.
    pub fn lookups(&self) -> usize {
        self.inner.lookups()
    }

    /// Number of memoized build sides currently held.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Bytes currently charged against the capacity.
    pub fn bytes(&self) -> usize {
        self.inner.bytes()
    }

    /// Builds dropped (LRU eviction and version invalidation alike).
    pub fn evictions(&self) -> usize {
        self.inner.evictions()
    }

    /// Fetch the build for `key`, constructing it via `build` on a miss.
    /// Entries cached under a different catalog version never serve (the
    /// affected stripes drop lazily).  Returns the build and whether it
    /// was a cache hit.  Builds that spilled to disk are handed back but
    /// *not* memoized: their partition files are temp state of one
    /// execution, and pinning them would hold budget-sized bucket tables
    /// (or dead file handles) across queries.  A build that *fails*
    /// mid-construction surfaces its error without inserting anything —
    /// no poisoned or partial entry survives into the next lookup, which
    /// rebuilds from scratch.  Two sessions racing on one cold key may
    /// both build (the construction runs outside the stripe locks);
    /// builds are pure functions of key + catalog version, so either
    /// result is correct and last insert wins.
    fn get_or_build(
        &self,
        key: String,
        catalog_version: u64,
        build: impl FnOnce() -> Result<JoinBuild, ExecError>,
    ) -> Result<(Arc<JoinBuild>, bool), ExecError> {
        if let Some(b) = self.inner.get(catalog_version, &key) {
            return Ok((b, true));
        }
        let built = Arc::new(build()?);
        if !built.is_spilled() {
            self.inner.insert(
                catalog_version,
                key,
                built.clone(),
                BUILD_BASE_COST + built.reserved,
            );
        }
        Ok((built, false))
    }
}

// ---------------------------------------------------------------------
// Compiled expressions — the vectorized path resolves every schema offset
// once per execution instead of once per row.
// ---------------------------------------------------------------------

/// An expression with alias slots and column offsets pre-resolved.
#[derive(Clone)]
enum CExpr {
    /// Literal value.
    Lit(Value),
    /// Column of a bound outer alias: slot into the stage's outer alias
    /// list and column offset in that alias's base table.
    Outer { slot: usize, col: usize },
    /// Column of the current stage's candidate row.
    Cur { col: usize },
    /// Numeric addition.
    Add(Box<CExpr>, Box<CExpr>),
}

/// A predicate over compiled expressions.
struct CPred {
    lhs: CExpr,
    op: SqlCmp,
    rhs: CExpr,
}

/// Compiled index probe bounds (the outer-dependent `IXSCAN` keys).
struct CBounds {
    eq: Vec<CExpr>,
    lower: Option<(CExpr, bool)>,
    upper: Option<(CExpr, bool)>,
}

/// One row of a columnar batch as an expression environment: the outer
/// tables, the batch's rid columns and the physical row index.
struct ColEnv<'a> {
    tables: &'a [&'a Table],
    cols: &'a [Vec<usize>],
    idx: usize,
}

const EMPTY_ENV: ColEnv<'static> = ColEnv {
    tables: &[],
    cols: &[],
    idx: 0,
};

/// Evaluate a compiled expression.  Column references borrow straight from
/// table storage — only computed expressions allocate.
fn ceval<'v>(e: &'v CExpr, env: &ColEnv<'v>, cur: Option<(&'v Table, usize)>) -> Cow<'v, Value> {
    match e {
        CExpr::Lit(v) => Cow::Borrowed(v),
        CExpr::Outer { slot, col } => {
            let rid = env.cols[*slot][env.idx];
            Cow::Borrowed(&env.tables[*slot].rows()[rid][*col])
        }
        CExpr::Cur { col } => {
            let (table, rid) = cur.expect("current row required");
            Cow::Borrowed(&table.rows()[rid][*col])
        }
        CExpr::Add(a, b) => Cow::Owned(ceval(a, env, cur).numeric_add(&ceval(b, env, cur))),
    }
}

/// Check a compiled predicate (SQL three-valued semantics: NULL fails).
#[inline]
fn cpred_holds(p: &CPred, env: &ColEnv<'_>, cur: Option<(&Table, usize)>) -> bool {
    let l = ceval(&p.lhs, env, cur);
    let r = ceval(&p.rhs, env, cur);
    match l.sql_cmp(&r) {
        Some(ord) => p.op.eval(ord),
        None => false,
    }
}

/// A leaf access predicate lowered onto the typed column images of the
/// base table.  `Scalar` keeps the interpreted [`CPred`] path (mixed-type
/// column, computed expression, or a literal the column image cannot
/// represent); the kernel variants become [`MaskTerm`]s of one fused
/// branch-free selection pass.  NULL-bearing columns carry their validity
/// mask: a cleared bit fails every comparison (SQL three-valued logic),
/// so the sentinel slot values never leak into results.
enum TypedPred<'a> {
    /// Fall back to the row-at-a-time compiled predicate.
    Scalar,
    /// `i64` column `op` integer literal.
    Int {
        vals: &'a [i64],
        validity: Option<&'a BitMask>,
        op: KernelCmp,
        rhs: i64,
    },
    /// Dictionary-coded string column `op` code boundary.  String order
    /// equals code order (the dictionary is sorted), so range predicates
    /// rewrite to boundary comparisons even for absent literals.
    Code {
        vals: &'a [u32],
        validity: Option<&'a BitMask>,
        op: KernelCmp,
        rhs: u32,
    },
    /// The predicate holds exactly where the column is non-NULL (e.g.
    /// `<> 'absent'` over a NULL-bearing column).
    Valid { validity: &'a BitMask },
    /// The predicate is constant over the whole column (e.g. `= 'absent'`
    /// over a column with no NULLs).
    Const(bool),
}

impl<'a> TypedPred<'a> {
    /// The fused-pass selection term of this lowering (`None` keeps the
    /// predicate on the interpreted path).
    fn term(&self) -> Option<MaskTerm<'a>> {
        match self {
            TypedPred::Scalar => None,
            TypedPred::Int {
                vals,
                validity,
                op,
                rhs,
            } => Some(MaskTerm::I64 {
                vals,
                validity: *validity,
                op: *op,
                rhs: *rhs,
            }),
            TypedPred::Code {
                vals,
                validity,
                op,
                rhs,
            } => Some(MaskTerm::Code {
                vals,
                validity: *validity,
                op: *op,
                rhs: *rhs,
            }),
            TypedPred::Valid { validity } => Some(MaskTerm::Valid { validity }),
            TypedPred::Const(v) => Some(MaskTerm::Const(*v)),
        }
    }
}

fn kcmp(op: SqlCmp) -> KernelCmp {
    match op {
        SqlCmp::Eq => KernelCmp::Eq,
        SqlCmp::Ne => KernelCmp::Ne,
        SqlCmp::Lt => KernelCmp::Lt,
        SqlCmp::Le => KernelCmp::Le,
        SqlCmp::Gt => KernelCmp::Gt,
        SqlCmp::Ge => KernelCmp::Ge,
    }
}

/// Lower one access predicate onto `base`'s typed columns, if its shape
/// (`cur.col op lit` or flipped) and the column image allow it.
fn compile_typed_pred<'a>(p: &CPred, base: &'a Table) -> TypedPred<'a> {
    let (col, op, lit) = match (&p.lhs, &p.rhs) {
        (CExpr::Cur { col }, CExpr::Lit(v)) => (*col, p.op, v),
        (CExpr::Lit(v), CExpr::Cur { col }) => (*col, p.op.flip(), v),
        _ => return TypedPred::Scalar,
    };
    match (base.typed().col(col), lit) {
        (Some(TypedColumn::Int { vals, validity }), Value::Int(rhs)) => TypedPred::Int {
            vals,
            validity: validity.as_ref(),
            op: kcmp(op),
            rhs: *rhs,
        },
        (
            Some(
                tc @ TypedColumn::Dict {
                    codes, validity, ..
                },
            ),
            Value::Str(s),
        ) => {
            let validity = validity.as_ref();
            let present = tc.code_of(s);
            let lower = tc.dict_boundary(s).expect("dict column has boundaries");
            let code = |op, rhs| TypedPred::Code {
                vals: codes,
                validity,
                op,
                rhs,
            };
            match op {
                SqlCmp::Eq => match present {
                    Some(c) => code(KernelCmp::Eq, c),
                    None => TypedPred::Const(false),
                },
                // `<> 'absent'` holds for every *non-NULL* row: with no
                // validity mask that is the whole column, otherwise
                // exactly the set bits of the mask.
                SqlCmp::Ne => match (present, validity) {
                    (Some(c), _) => code(KernelCmp::Ne, c),
                    (None, Some(validity)) => TypedPred::Valid { validity },
                    (None, None) => TypedPred::Const(true),
                },
                // Codes < lower  <=>  strings < s; codes >= lower + present
                // <=>  strings > s (`lower` counts strings strictly below
                // `s`, and `lower + 1` skips `s` itself when present).
                SqlCmp::Lt => code(KernelCmp::Lt, lower),
                SqlCmp::Ge => code(KernelCmp::Ge, lower),
                SqlCmp::Le => code(KernelCmp::Lt, lower + u32::from(present.is_some())),
                SqlCmp::Gt => code(KernelCmp::Ge, lower + u32::from(present.is_some())),
            }
        }
        _ => TypedPred::Scalar,
    }
}

/// Compile an expression for a stage: `cur_alias` columns become
/// [`CExpr::Cur`], bound outer alias columns become [`CExpr::Outer`].
fn compile_expr(
    e: &SqlExpr,
    cur_alias: &str,
    cur_table: &Table,
    outer_aliases: &[String],
    outer_tables: &[&Table],
) -> CExpr {
    match e {
        SqlExpr::Lit(v) => CExpr::Lit(v.clone()),
        SqlExpr::Col(c) => {
            if c.table == cur_alias {
                CExpr::Cur {
                    col: cur_table.schema().expect_index(&c.column),
                }
            } else {
                let slot = outer_aliases
                    .iter()
                    .position(|a| *a == c.table)
                    .unwrap_or_else(|| panic!("alias {:?} not bound", c.table));
                CExpr::Outer {
                    slot,
                    col: outer_tables[slot].schema().expect_index(&c.column),
                }
            }
        }
        SqlExpr::Add(a, b) => CExpr::Add(
            Box::new(compile_expr(
                a,
                cur_alias,
                cur_table,
                outer_aliases,
                outer_tables,
            )),
            Box::new(compile_expr(
                b,
                cur_alias,
                cur_table,
                outer_aliases,
                outer_tables,
            )),
        ),
    }
}

/// One NLJOIN probe predicate kernelized over the inner column's `i64`
/// image: `cur.col op <outer-only expression>` (or flipped).  The rhs is
/// re-evaluated once per probe; an integer result runs the compare kernel
/// over the probe's candidate rids, a NULL result fails the whole probe,
/// and anything else falls back to interpreting the source predicate
/// (`pred` indexes the stage's predicate list) for that probe.
struct ProbeTerm<'a> {
    vals: &'a [i64],
    validity: Option<&'a BitMask>,
    op: KernelCmp,
    rhs: CExpr,
    /// Index of the source predicate in the stage's list (scalar fallback).
    pred: usize,
}

/// The NLJOIN lowering of one inner-side predicate list, split by what
/// each predicate needs: `static_terms` compare against constants (no
/// outer row required), `dynamic` terms re-resolve their rhs per probe,
/// and `scalar` indexes the predicates left to the interpreted path.
#[derive(Default)]
struct NlSplit<'a> {
    static_terms: Vec<MaskTerm<'a>>,
    dynamic: Vec<ProbeTerm<'a>>,
    scalar: Vec<usize>,
}

impl NlSplit<'_> {
    fn is_empty(&self) -> bool {
        self.static_terms.is_empty() && self.dynamic.is_empty()
    }
}

/// Does the expression avoid the current stage's candidate row (literals
/// and bound outer columns only)?
fn outer_only(e: &CExpr) -> bool {
    match e {
        CExpr::Lit(_) | CExpr::Outer { .. } => true,
        CExpr::Cur { .. } => false,
        CExpr::Add(a, b) => outer_only(a) && outer_only(b),
    }
}

/// Lower one predicate to an NLJOIN [`ProbeTerm`], if its shape
/// (`cur.col op outer-only-expr` or flipped) and the column image allow.
fn compile_probe_term<'a>(p: &CPred, pi: usize, base: &'a Table) -> Option<ProbeTerm<'a>> {
    let (col, op, rhs) = match (&p.lhs, &p.rhs) {
        (CExpr::Cur { col }, r) if outer_only(r) => (*col, p.op, r),
        (l, CExpr::Cur { col }) if outer_only(l) => (*col, p.op.flip(), l),
        _ => return None,
    };
    let (vals, validity) = base.typed().int_col_nullable(col)?;
    Some(ProbeTerm {
        vals,
        validity,
        op: kcmp(op),
        rhs: rhs.clone(),
        pred: pi,
    })
}

/// Split an NLJOIN inner-side predicate list into its kernel lowerings.
fn split_nl_preds<'a>(preds: &[CPred], base: &'a Table) -> NlSplit<'a> {
    let mut split = NlSplit::default();
    for (pi, p) in preds.iter().enumerate() {
        if let Some(t) = compile_typed_pred(p, base).term() {
            split.static_terms.push(t);
        } else if let Some(t) = compile_probe_term(p, pi, base) {
            split.dynamic.push(t);
        } else {
            split.scalar.push(pi);
        }
    }
    split
}

/// One kernelized hash key: the outer side's gatherable image and the
/// inner side's comparable image.  Probe hashes chain through
/// [`hash_keys_typed`] bit-identically to [`hash_values`] over the
/// corresponding `Value`s, so bucket lookups, Grace partition routing and
/// [`BuildCache`] reuse are unchanged; NULL outer keys hash to `None` and
/// never probe (the build side skipped NULL keys symmetrically).
enum KeyImage<'a> {
    /// `i64` = `i64` equijoin key.
    Int {
        slot: usize,
        outer: &'a [i64],
        outer_validity: Option<&'a BitMask>,
        inner: &'a [i64],
    },
    /// String = string equijoin key over two dictionary images.  Hashes
    /// chain the *outer* dictionary's string; collisions resolve by
    /// translating the outer code into the inner dictionary (`xlat`,
    /// `-1` = the outer string does not occur on the inner side).
    Str {
        slot: usize,
        outer_codes: &'a [u32],
        outer_dict: &'a [String],
        outer_validity: Option<&'a BitMask>,
        inner_codes: &'a [u32],
        xlat: Vec<i64>,
    },
}

impl KeyImage<'_> {
    fn slot(&self) -> usize {
        match self {
            KeyImage::Int { slot, .. } | KeyImage::Str { slot, .. } => *slot,
        }
    }

    fn outer_validity(&self) -> Option<&BitMask> {
        match self {
            KeyImage::Int { outer_validity, .. } | KeyImage::Str { outer_validity, .. } => {
                *outer_validity
            }
        }
    }
}

/// One hash key's gathered outer values for a probe batch.
enum GatheredKey {
    I64(Vec<i64>),
    Code(Vec<u32>),
}

/// A [`Stage`] with every predicate, hash key and probe bound compiled.
/// Borrows only from the plan and the database (never from `Stage`), so it
/// lives alongside the stages inside [`ExecCtx`].
struct CStage<'a> {
    base: &'a Table,
    access: &'a Access,
    /// Operator label (identical to the scalar path's, so EXPLAIN actuals
    /// are path-independent).
    label: String,
    /// B-tree of an `IndexScan` access, pre-resolved.
    tree: Option<&'a xqjg_store::BPlusTree>,
    /// Compiled probe bounds of an `IndexScan` access.
    cbounds: Option<CBounds>,
    /// Compiled access-level predicates: the pushed-down filters of a
    /// `TableScan`, or the sargable residuals of an `IndexScan`.
    access_preds: Vec<CPred>,
    /// Kernel lowerings of `access_preds` (aligned; empty when typed
    /// kernels are off — the leaf then treats every slot as `Scalar`).
    typed_preds: Vec<TypedPred<'a>>,
    /// Compiled join-level residual predicates.
    residual: Vec<CPred>,
    /// NLJOIN kernel split of `access_preds` (empty for leaf/hash stages
    /// or with typed kernels off).
    nl_access: NlSplit<'a>,
    /// NLJOIN kernel split of `residual`.
    nl_residual: NlSplit<'a>,
    /// Compiled hash keys: (outer expression, inner column offset).
    hash_keys: Vec<(CExpr, usize)>,
    /// Kernelized hash-key images, present only when *every* key is a
    /// plain outer column whose image type matches the inner column's
    /// ([`KeyImage`] per key — `i64` or dictionary string, NULL-bearing
    /// or not).  Any other shape (computed key, mixed `Int`/`Dec` column,
    /// type-mismatched sides) keeps the scalar [`Value`] path, which is
    /// the semantics of record for cross-type equality.
    typed_keys: Option<Vec<KeyImage<'a>>>,
    /// Base tables of the bound outer aliases (slot order).
    outer_tables: Vec<&'a Table>,
}

fn compile_stage<'a>(index: usize, stage: &Stage<'a>, db: &'a Database, typed: bool) -> CStage<'a> {
    let cc = |e: &SqlExpr| {
        compile_expr(
            e,
            stage.alias,
            stage.base,
            &stage.outer_aliases,
            &stage.outer_tables,
        )
    };
    let cp = |p: &SqlPredicate| CPred {
        lhs: cc(&p.lhs),
        op: p.op,
        rhs: cc(&p.rhs),
    };
    let (label, tree, cbounds, access_preds) = match stage.access {
        Access::TableScan { preds } => {
            let label = if index == 0 {
                format!("TBSCAN({})", stage.alias)
            } else {
                String::new()
            };
            (label, None, None, preds.iter().map(cp).collect::<Vec<_>>())
        }
        Access::IndexScan {
            index: ix_name,
            bounds,
            residual,
        } => {
            let label = if index == 0 {
                format!("IXSCAN({} ix={ix_name})", stage.alias)
            } else {
                String::new()
            };
            let tree = &db.index(ix_name).expect("index registered").tree;
            let cbounds = CBounds {
                eq: bounds.eq.iter().map(|(_, e)| cc(e)).collect(),
                lower: bounds.lower.as_ref().map(|(e, inc)| (cc(e), *inc)),
                upper: bounds.upper.as_ref().map(|(e, inc)| (cc(e), *inc)),
            };
            (
                label,
                Some(tree),
                Some(cbounds),
                residual.iter().map(cp).collect(),
            )
        }
    };
    let label = if index == 0 {
        label
    } else if stage.hash_keys.is_empty() {
        format!("NLJOIN({})", stage.alias)
    } else {
        format!("HSJOIN({})", stage.alias)
    };
    let typed_preds: Vec<TypedPred<'a>> = if typed {
        access_preds
            .iter()
            .map(|p| compile_typed_pred(p, stage.base))
            .collect()
    } else {
        Vec::new()
    };
    let hash_keys: Vec<(CExpr, usize)> = stage
        .hash_keys
        .iter()
        .map(|(e, col)| (cc(e), stage.base.schema().expect_index(col)))
        .collect();
    let typed_keys = if typed && !hash_keys.is_empty() {
        hash_keys
            .iter()
            .map(|(e, col)| {
                let CExpr::Outer { slot, col: ocol } = e else {
                    return None;
                };
                let outer_tc = stage.outer_tables[*slot].typed().col(*ocol)?;
                let inner_tc = stage.base.typed().col(*col)?;
                match (outer_tc, inner_tc) {
                    (
                        TypedColumn::Int {
                            vals: outer,
                            validity,
                        },
                        TypedColumn::Int { vals: inner, .. },
                    ) => Some(KeyImage::Int {
                        slot: *slot,
                        outer,
                        outer_validity: validity.as_ref(),
                        inner,
                    }),
                    (
                        TypedColumn::Dict {
                            codes: outer_codes,
                            dict: outer_dict,
                            validity,
                        },
                        TypedColumn::Dict {
                            codes: inner_codes,
                            dict: inner_dict,
                            ..
                        },
                    ) => {
                        // Outer code -> inner code (both dictionaries are
                        // sorted, so a binary search per outer entry).
                        let xlat: Vec<i64> = outer_dict
                            .iter()
                            .map(|s| match inner_dict.binary_search(s) {
                                Ok(c) => c as i64,
                                Err(_) => -1,
                            })
                            .collect();
                        Some(KeyImage::Str {
                            slot: *slot,
                            outer_codes,
                            outer_dict,
                            outer_validity: validity.as_ref(),
                            inner_codes,
                            xlat,
                        })
                    }
                    _ => None,
                }
            })
            .collect()
    } else {
        None
    };
    let residual: Vec<CPred> = stage.residual.iter().map(cp).collect();
    // NLJOIN stages (non-leaf, no hash keys) additionally split their
    // predicate lists into static / per-probe / scalar kernel lowerings.
    let (nl_access, nl_residual) = if typed && index > 0 && hash_keys.is_empty() {
        (
            split_nl_preds(&access_preds, stage.base),
            split_nl_preds(&residual, stage.base),
        )
    } else {
        (NlSplit::default(), NlSplit::default())
    };
    CStage {
        base: stage.base,
        access: stage.access,
        label,
        tree,
        cbounds,
        access_preds,
        typed_preds,
        residual,
        nl_access,
        nl_residual,
        hash_keys,
        typed_keys,
        outer_tables: stage.outer_tables.clone(),
    }
}

/// Evaluate compiled probe bounds against one outer row into their
/// canonical resolved form (the compiled mirror of [`resolve_bounds`]).
fn resolve_cbounds(bounds: &CBounds, env: &ColEnv<'_>) -> ResolvedBounds {
    let eq_vals: Vec<Value> = bounds
        .eq
        .iter()
        .map(|e| ceval(e, env, None).into_owned())
        .collect();
    let (lower, lower_inc) = match &bounds.lower {
        Some((e, inc)) => {
            let mut k = eq_vals.clone();
            k.push(ceval(e, env, None).into_owned());
            (k, *inc)
        }
        None => (eq_vals.clone(), true),
    };
    let (upper, upper_inc) = match &bounds.upper {
        Some((e, inc)) => {
            let mut k = eq_vals.clone();
            k.push(ceval(e, env, None).into_owned());
            (k, *inc)
        }
        None => (eq_vals, true),
    };
    ResolvedBounds {
        lower,
        lower_inc,
        upper,
        upper_inc,
    }
}

/// Perform (or recall) the B-tree range scan described by compiled probe
/// bounds for one outer row (the compiled mirror of [`resolve_bounds`] +
/// [`cached_tree_range`]).
fn cindex_range(
    tree: &xqjg_store::BPlusTree,
    bounds: &CBounds,
    env: &ColEnv<'_>,
    index: &str,
    ctx: PostingsCtx<'_>,
) -> Postings {
    cached_tree_range(tree, resolve_cbounds(bounds, env), index, ctx)
}

/// Everything a worker needs to run one morsel's pipeline — borrowed,
/// read-only, and shared by all workers of one execution.
struct ExecCtx<'a> {
    stages: Vec<Stage<'a>>,
    /// Compiled mirror of `stages` (the vectorized path).
    cstages: Vec<CStage<'a>>,
    /// Prebuilt hash-join build sides, aligned with `stages` (`None` for
    /// the leaf and nested-loop stages).  Shared read-only — possibly with
    /// a session [`BuildCache`].
    builds: Vec<Option<Arc<JoinBuild>>>,
    /// Whether the aligned build side came from the cache.
    build_hits: Vec<bool>,
    domain: LeafDomain,
    /// All stage aliases, outer-to-inner.
    aliases: Vec<String>,
    /// Base tables of `aliases`.
    tables: Vec<&'a Table>,
    select: &'a [SelectItem],
    order_exprs: Vec<SqlExpr>,
    db: &'a Database,
    batch_capacity: usize,
    /// Run the columnar operators instead of the row-at-a-time ones.
    vectorize: bool,
    /// Let leaves adapt their scan chunk to measured selectivity.
    adaptive: bool,
    /// The execution's shared memory accountant (probe-side partition
    /// caches of spilled builds reserve against it).
    budget: Arc<MemBudget>,
    /// Cancellation/timeout check shared by every worker; consulted at
    /// each morsel boundary.
    interrupt: Interrupt,
    /// Postings memoization context for the NLJOIN–IXSCAN inner probes
    /// (`None` when the cache is absent or disabled).  Hit/miss patterns
    /// race across workers, so its counters live on the shared cache —
    /// never in the per-operator [`OpStats`], which stay byte-identical
    /// across degrees of parallelism.
    postings: PostingsCtx<'a>,
}

/// What one morsel's pipeline produced: tail rows (select values plus sort
/// key), per-operator counters (leaf first), the aggregate counters, and
/// the leaf's adaptive batch-size trace.
struct MorselOutput {
    rows: Vec<(Row, Row)>,
    ops: Vec<OpStats>,
    tail_rows: usize,
    agg: Agg,
    trace: Vec<usize>,
}

/// Side-channel record of one execution's adaptive batch-size decisions:
/// for each scan leaf, the chunk sizes the [`BatchSizer`] chose (morsel
/// order).  Deliberately *not* part of [`ExecStats`]: the trace depends on
/// morsel boundaries and so is not invariant across degrees of
/// parallelism, unlike the EXPLAIN actuals.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// `(leaf operator label, chunk sizes chosen)`.
    pub leaves: Vec<(String, Vec<usize>)>,
}

/// The shared warm-path caches an execution may consult: hash-join build
/// sides and memoized `IXSCAN` posting lists.  Both are `Arc`-backed
/// handles a serving layer shares across `Processor` instances; `Default`
/// is no caching.  The `XQJG_BUILD_CACHE` / `XQJG_POSTINGS_CACHE` knobs
/// (see [`ExecConfig`]) gate each cache even when supplied.
#[derive(Clone, Copy, Default)]
pub struct ExecCaches<'a> {
    /// Hash-join build sides (see [`BuildCache`]).
    pub builds: Option<&'a BuildCache>,
    /// Memoized `IXSCAN` posting lists (see [`PostingsCache`]).
    pub postings: Option<&'a PostingsCache>,
}

/// One query execution, described declaratively: the plan and catalog are
/// mandatory; knobs, warm-path caches and cancellation are opt-in builder
/// state.  [`QueryRequest::run`] is the single execution entry point the
/// `Processor`, the serving layer and the bench harness all share — the
/// former seven-way entry-point sprawl (`execute`, `execute_with_stats`,
/// `execute_with_stats_config`, `try_execute_with_stats_config`,
/// `execute_full`, `try_execute_full`, `try_execute_with_caches`) survives
/// only as `#[deprecated]` shims over this type.
///
/// ```ignore
/// let outcome = QueryRequest::new(&plan, &db)
///     .config(&cfg)
///     .build_cache(&builds)
///     .cancel(&token)
///     .run()?;
/// ```
#[derive(Clone, Copy)]
pub struct QueryRequest<'a> {
    plan: &'a PhysPlan,
    db: &'a Database,
    config: Option<&'a ExecConfig>,
    caches: ExecCaches<'a>,
    cancel: Option<&'a CancelToken>,
}

/// Everything one [`QueryRequest::run`] produced: the result rows, the
/// DOP-invariant work counters, the adaptive batch-size trace, and the
/// warm-path cache actuals of this execution ([`CacheActuals::plan_cache`]
/// stays `None` here — plan caching happens in front of the executor, so
/// the planning layer fills it in).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result table, byte-identical across every DOP / knob setting.
    pub rows: Table,
    /// Aggregate and per-operator work counters.
    pub stats: ExecStats,
    /// Adaptive batch-size decisions (not DOP-invariant; see [`ExecTrace`]).
    pub trace: ExecTrace,
    /// Warm-path cache telemetry of this execution.
    pub cache_actuals: CacheActuals,
}

impl<'a> QueryRequest<'a> {
    /// A request to execute `plan` against `db` with environment-default
    /// knobs, no warm-path caches and no cancellation.
    pub fn new(plan: &'a PhysPlan, db: &'a Database) -> QueryRequest<'a> {
        QueryRequest {
            plan,
            db,
            config: None,
            caches: ExecCaches::default(),
            cancel: None,
        }
    }

    /// Pin the execution knobs (default: [`ExecConfig::from_env`]).
    ///
    /// The result table, the per-operator EXPLAIN actuals and the
    /// aggregate counters are identical for every `threads` /
    /// `morsel_size` / `vectorize` setting; `batch_capacity` additionally
    /// only affects the reported batch counts.
    pub fn config(mut self, cfg: &'a ExecConfig) -> QueryRequest<'a> {
        self.config = Some(cfg);
        self
    }

    /// Supply the full warm-path cache set at once.
    pub fn caches(mut self, caches: ExecCaches<'a>) -> QueryRequest<'a> {
        self.caches = caches;
        self
    }

    /// Consult (and populate) a hash-join build cache, subject to the
    /// `XQJG_BUILD_CACHE` knob.
    pub fn build_cache(mut self, cache: &'a BuildCache) -> QueryRequest<'a> {
        self.caches.builds = Some(cache);
        self
    }

    /// Memoize `IXSCAN` posting lists through the given cache, subject to
    /// the `XQJG_POSTINGS_CACHE` knob.
    pub fn postings_cache(mut self, cache: &'a PostingsCache) -> QueryRequest<'a> {
        self.caches.postings = Some(cache);
        self
    }

    /// Observe a cancellation token at morsel boundaries and inside the
    /// spill machinery.
    pub fn cancel(mut self, token: &'a CancelToken) -> QueryRequest<'a> {
        self.cancel = Some(token);
        self
    }

    /// Execute the request.  Every failure — spill I/O, corrupt run
    /// records, budget exhaustion, cancellation, timeout — surfaces as a
    /// typed [`ExecError`]; on error all spill run files are deleted and
    /// every memory-budget reservation is released before returning, so
    /// the same plan can immediately be re-executed on the same session.
    pub fn run(self) -> Result<QueryOutcome, ExecError> {
        let default_cfg;
        let cfg = match self.config {
            Some(c) => c,
            None => {
                default_cfg = ExecConfig::from_env();
                &default_cfg
            }
        };
        // Postings counters live on the (shared, concurrent) cache, so the
        // actuals are before/after deltas — telemetry that may include
        // concurrent traffic, not DOP-invariant actuals.
        let postings = self.caches.postings.filter(|_| cfg.postings_cache);
        let postings0 = postings.map(|p| (p.hits(), p.lookups()));
        let (rows, stats, trace) =
            run_with_caches(self.plan, self.db, cfg, self.caches, self.cancel)?;
        let (postings_hits, postings_lookups) = match (postings, postings0) {
            (Some(p), Some((h0, l0))) => (p.hits() - h0, p.lookups() - l0),
            _ => (0, 0),
        };
        let cache_actuals = CacheActuals {
            plan_cache: None,
            build_hits: stats.operators.iter().map(|o| o.cache_hits).sum(),
            postings_hits,
            postings_lookups,
        };
        Ok(QueryOutcome {
            rows,
            stats,
            trace,
            cache_actuals,
        })
    }

    /// [`QueryRequest::run`] for callers that treat execution failure as
    /// fatal (the benchmark harness, the infallible deprecated shims).
    pub fn expect_run(self) -> QueryOutcome {
        self.run()
            .unwrap_or_else(|e| panic!("query execution failed: {e}"))
    }
}

/// Execute a physical plan with explicit execution knobs.
#[deprecated(note = "use QueryRequest::new(plan, db).config(cfg).run()")]
pub fn execute_with_stats_config(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
) -> (Table, ExecStats) {
    let out = QueryRequest::new(plan, db).config(cfg).expect_run();
    (out.rows, out.stats)
}

/// Fallible twin of [`execute_with_stats_config`]: spill I/O failures,
/// budget exhaustion, cancellation and timeouts come back as
/// [`ExecError`]s instead of panics.
#[deprecated(note = "use QueryRequest::new(plan, db).config(cfg).run()")]
pub fn try_execute_with_stats_config(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<(Table, ExecStats), ExecError> {
    let out = QueryRequest::new(plan, db).config(cfg).run()?;
    Ok((out.rows, out.stats))
}

/// [`execute_with_stats_config`] plus an optional session [`BuildCache`]
/// and the adaptive batch-size [`ExecTrace`].  Infallible shim for
/// callers that treat execution failure as fatal.
#[deprecated(note = "use QueryRequest::new(plan, db).config(cfg).build_cache(cache).run()")]
pub fn execute_full(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
    cache: Option<&BuildCache>,
) -> (Table, ExecStats, ExecTrace) {
    let mut req = QueryRequest::new(plan, db).config(cfg);
    req.caches.builds = cache;
    let out = req.expect_run();
    (out.rows, out.stats, out.trace)
}

/// Probe whether `dir` can actually host spill runs: it must exist (or be
/// creatable) and accept a small write.  Probed once per call site because
/// the answer can change between executions (disk full, permissions).
fn spill_dir_usable(dir: &std::path::Path) -> bool {
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    static PROBE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = PROBE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let probe = dir.join(format!("xqjg-probe-{}-{n}.tmp", std::process::id()));
    match std::fs::write(&probe, b"xqjg") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            true
        }
        Err(_) => false,
    }
}

/// [`execute_full`]'s semantics, plus an optional [`CancelToken`], with
/// every failure surfaced as a typed [`ExecError`].
#[deprecated(
    note = "use QueryRequest::new(plan, db).config(cfg).build_cache(cache).cancel(token).run()"
)]
pub fn try_execute_full(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
    cache: Option<&BuildCache>,
    cancel: Option<&CancelToken>,
) -> Result<(Table, ExecStats, ExecTrace), ExecError> {
    let mut req = QueryRequest::new(plan, db).config(cfg);
    req.caches.builds = cache;
    req.cancel = cancel;
    let out = req.run()?;
    Ok((out.rows, out.stats, out.trace))
}

/// [`try_execute_full`] with the full warm-path cache set: hash-join
/// build sides *and* memoized `IXSCAN` posting lists.
#[deprecated(
    note = "use QueryRequest::new(plan, db).config(cfg).caches(caches).cancel(token).run()"
)]
pub fn try_execute_with_caches(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
    caches: ExecCaches<'_>,
    cancel: Option<&CancelToken>,
) -> Result<(Table, ExecStats, ExecTrace), ExecError> {
    let mut req = QueryRequest::new(plan, db).config(cfg).caches(caches);
    req.cancel = cancel;
    let out = req.run()?;
    Ok((out.rows, out.stats, out.trace))
}

/// The single execution implementation every public path funnels into
/// (see [`QueryRequest::run`]).  Each cache is consulted only when its
/// `ExecConfig` knob is on, and all lookups carry the catalog version
/// observed at entry, so DDL between executions invalidates without
/// coordination.  Results, row order and EXPLAIN actuals are
/// byte-identical with and without the caches.
fn run_with_caches(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
    caches: ExecCaches<'_>,
    cancel: Option<&CancelToken>,
) -> Result<(Table, ExecStats, ExecTrace), ExecError> {
    let build_cache = if cfg.build_cache { caches.builds } else { None };
    let postings_ctx: PostingsCtx<'_> = if cfg.postings_cache {
        caches.postings.map(|p| (p, db.version()))
    } else {
        None
    };
    let threads = cfg.threads.max(1);
    let cap = cfg.batch_capacity.max(1);
    let mut mem_budget = cfg.mem_budget;
    let dir = xqjg_store::spill_dir(cfg.spill_dir.as_deref());
    // Graceful degradation: a memory budget only matters because it makes
    // operators spill, and spilling needs a writable directory.  If the
    // spill dir is unusable, degrade to in-memory execution (warn once per
    // process) rather than failing every budgeted query at its first run
    // flush.
    if mem_budget.is_some() && !spill_dir_usable(&dir) {
        static WARN: std::sync::Once = std::sync::Once::new();
        WARN.call_once(|| {
            eprintln!(
                "xqjg: spill directory {} is not writable; \
                 ignoring memory budget and executing in memory",
                dir.display()
            );
        });
        mem_budget = None;
    }
    let budget = MemBudget::new(mem_budget);
    let _drain = DrainCheck(budget.clone());
    let interrupt = Interrupt::new(cancel.cloned(), cfg.query_timeout);
    let spill = SpillCtx {
        budget: budget.clone(),
        dir,
        retries: cfg.spill_retries,
        interrupt: interrupt.clone(),
    };
    let stages = flatten_stages(&plan.root, db);
    // Predicate/bounds compilation is a vectorized-path artifact; the
    // scalar fallback interprets the plan directly and skips it.
    let cstages: Vec<CStage<'_>> = if cfg.vectorize {
        stages
            .iter()
            .enumerate()
            .map(|(i, s)| compile_stage(i, s, db, cfg.typed_kernels))
            .collect()
    } else {
        Vec::new()
    };

    // Pre-phase: resolve the leaf domain and build (or fetch from the
    // session cache) all hash-join build sides once, on the coordinator.
    let mut pre_agg = Agg::default();
    let leaf = &stages[0];
    let domain = match leaf.access {
        Access::TableScan { .. } => LeafDomain::Rids(leaf.base.len()),
        Access::IndexScan { index, bounds, .. } => {
            let ix = db.index(index).expect("index registered");
            let rb = resolve_bounds(bounds, leaf.alias, None);
            let rids = cached_tree_range(&ix.tree, rb, index, postings_ctx);
            pre_agg.index_rows += rids.len();
            LeafDomain::Postings(rids)
        }
    };
    let mut build_hits = vec![false; stages.len()];
    // Every booking of this execution — resident build footprints and the
    // DISTINCT dedup set — goes through one guard, so early error returns
    // release it all without bespoke cleanup code.
    let mut booked = Booked::new(budget.clone());
    let mut builds: Vec<Option<Arc<JoinBuild>>> = Vec::with_capacity(stages.len());
    for (i, s) in stages.iter().enumerate() {
        if i == 0 || s.hash_keys.is_empty() {
            builds.push(None);
            continue;
        }
        let (build, hit) = match build_cache {
            Some(c) => c.get_or_build(JoinBuild::cache_key(s), db.version(), || {
                JoinBuild::build(s, db, &spill)
            })?,
            None => (Arc::new(JoinBuild::build(s, db, &spill)?), false),
        };
        build_hits[i] = hit;
        // A cache hit performs no fetch work, and the counters report the
        // work actually done.
        if !hit {
            pre_agg.scan_rows += build.fetched_scan;
            pre_agg.index_rows += build.fetched_index;
        }
        // The resident bucket table is memory of *this* execution whether
        // the build is fresh or cached: charge its footprint (forced — the
        // rows already exist) so hit and miss runs occupy the same budget
        // and downstream spill decisions are identical.  Spilled builds
        // have a zero footprint here; their probe-side partition loads
        // book transiently instead.
        booked.force(build.reserved);
        builds.push(Some(build));
    }

    let aliases: Vec<String> = stages.iter().map(|s| s.alias.to_string()).collect();
    let tables: Vec<&Table> = stages.iter().map(|s| s.base).collect();
    let order_exprs: Vec<SqlExpr> = plan
        .order_by
        .iter()
        .map(|c| SqlExpr::Col(c.clone()))
        .collect();
    let ctx = ExecCtx {
        stages,
        cstages,
        builds,
        build_hits,
        domain,
        aliases,
        tables,
        select: &plan.select,
        order_exprs,
        db,
        batch_capacity: cap,
        vectorize: cfg.vectorize,
        adaptive: cfg.vectorize && cfg.adaptive,
        budget: spill.budget.clone(),
        interrupt: interrupt.clone(),
        postings: postings_ctx,
    };

    // Parallel + merge phase: workers drain the morsel queue, each running
    // a private pipeline instance per morsel, and the coordinator consumes
    // each morsel's output in morsel order *as it completes* — tail rows
    // stream straight into the sorter instead of collecting every worker's
    // output first, so the sorter can flush sorted runs while the workers
    // are still scanning.  Per-morsel counters sum to the sequential
    // counters, and morsel-ordered consumption restores the sequential
    // scan order before the distinct/sort pass.  The SORT tail is the
    // pipeline breaker here: under a memory budget the sorter flushes
    // sorted runs to disk and merges them at the end (the run boundaries
    // depend only on the morsel-ordered row stream and the budget, so the
    // spill counters — like every other actual — are identical across
    // degrees of parallelism).
    let morsel_size = effective_morsel_size(ctx.domain.len(), threads, cfg.morsel_size);
    let morsels = partition_morsels(ctx.domain.len(), morsel_size);
    let mut agg = pre_agg;
    let mut per_morsel_ops: Vec<Vec<OpStats>> = Vec::new();
    let mut tail_rows_in = 0usize;
    let mut trace = ExecTrace::default();
    let mut sorter = ExternalSorter::new(spill.budget.clone(), spill.dir.clone());
    sorter.set_typed_kernels(cfg.typed_kernels);
    sorter.set_retries(cfg.spill_retries);
    sorter.set_interrupt(interrupt.clone());
    // DISTINCT repertoire: the classical dedup set keeps first-occurrence
    // semantics but cannot spill (the whole set must stay resident).  With
    // typed kernels on and a limited budget, a sort-based two-pass
    // DISTINCT runs instead: pass 1 sorts by the select row (original
    // sequence as tie-break) and drops adjacent duplicates with O(1)
    // carry-over state, pass 2 re-sorts the survivors by (order key,
    // original sequence) — byte-identical rows and order to the dedup set,
    // with both passes free to spill.
    let sort_distinct = plan.distinct && cfg.typed_kernels && spill.budget.limit().is_some();
    let mut seen: std::collections::HashSet<Row> = std::collections::HashSet::new();
    let mut seq = 0u64;
    try_execute_morsels_streaming(
        threads,
        morsels,
        |_, m| run_morsel(&ctx, m),
        |_, o: MorselOutput| {
            agg.add(&o.agg);
            tail_rows_in += o.tail_rows;
            if !o.trace.is_empty() {
                trace.leaves.push((ctx.cstages[0].label.clone(), o.trace));
            }
            per_morsel_ops.push(o.ops);
            for (sel, key) in o.rows {
                if sort_distinct {
                    // Pass-1 record: keyed by the select row; the payload
                    // carries (original sequence, order key, select row).
                    let mut payload: Row = Vec::with_capacity(1 + key.len() + sel.len());
                    payload.push(Value::Int(seq as i64));
                    payload.extend(key);
                    payload.extend(sel.iter().cloned());
                    sorter.push(sel, payload)?;
                    seq += 1;
                    continue;
                }
                if plan.distinct {
                    if !seen.insert(sel.clone()) {
                        continue;
                    }
                    // The dedup set is a genuine buffer too: account it (it
                    // cannot spill — first-occurrence semantics need the whole
                    // set — so the booking is forced and pressures the sorter
                    // to go external earlier).
                    booked.force(row_footprint(&sel) + 48);
                }
                sorter.push(key, sel)?;
            }
            Ok(())
        },
    )?;
    let mut operators = merge_worker_stats(&per_morsel_ops, cap);
    for (i, (op, build)) in operators.iter_mut().zip(&ctx.builds).enumerate() {
        if let Some(b) = build {
            op.build_rows += b.build_rows;
            op.spill_runs += b.spill_runs;
            op.spill_bytes += b.spill_bytes;
            op.partitions += b.partitions;
            op.retries += b.retries;
            if ctx.build_hits[i] {
                op.cache_hits += 1;
            }
        }
    }

    // The plan tail: DISTINCT over the select list, ORDER BY, RETURN.
    agg.bindings += tail_rows_in;
    let name = match (plan.distinct, plan.order_by.is_empty()) {
        (true, _) => "SORT(distinct)",
        (false, false) => "SORT",
        (false, true) => "RETURN",
    };
    let mut tail = OpStats::named(name);
    tail.rows_in = tail_rows_in;
    tail.build_rows = tail_rows_in;
    let sorted = if sort_distinct {
        // Pass 1: rows come back grouped by select row (ties in original
        // sequence order); adjacent duplicates drop with one carried row.
        let pass1 = sorter.finish()?;
        let (runs1, bytes1, typed1, retries1) = (
            pass1.spill_runs,
            pass1.spill_bytes,
            pass1.typed_rows,
            pass1.retries,
        );
        let kw = ctx.order_exprs.len();
        let mut resort = ExternalSorter::new(spill.budget.clone(), spill.dir.clone());
        resort.set_typed_kernels(cfg.typed_kernels);
        resort.set_retries(cfg.spill_retries);
        resort.set_interrupt(interrupt.clone());
        let mut prev_sel: Option<Row> = None;
        for payload in pass1 {
            let mut payload = payload?;
            let sel: Row = payload.split_off(1 + kw);
            let key: Row = payload.split_off(1);
            if prev_sel.as_ref() == Some(&sel) {
                continue;
            }
            let oseq = match payload[0] {
                Value::Int(s) => s as u64,
                _ => unreachable!("pass-1 payload starts with the sequence"),
            };
            prev_sel = Some(sel.clone());
            // Pass 2: survivors re-sort by (order key, original sequence)
            // — the explicit sequence reproduces the first-occurrence tie
            // order of the dedup-set path exactly.
            resort.push_with_seq(oseq, key, sel)?;
        }
        let mut sorted = resort.finish()?;
        sorted.spill_runs += runs1;
        sorted.spill_bytes += bytes1;
        sorted.typed_rows += typed1;
        sorted.retries += retries1;
        sorted
    } else {
        sorter.finish()?
    };
    tail.spill_runs = sorted.spill_runs;
    tail.spill_bytes = sorted.spill_bytes;
    tail.kernel_rows = sorted.typed_rows;
    tail.retries = sorted.retries;

    // Output schema and table.
    let mut columns: Vec<String> = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Star(alias) => {
                let table = alias_table(&plan.root, alias, db);
                columns.extend(table.schema().columns().iter().cloned());
            }
            SelectItem::Expr { alias, .. } => columns.push(alias.clone()),
        }
    }
    let mut table = Table::new(Schema::new(columns));
    for sel in sorted {
        table.push(sel?);
    }
    // `booked` (build footprints + dedup set) and any sorter state release
    // via their guards' Drop impls — on this path and on every early `?`
    // return above; `_drain` then asserts the budget drained to zero.
    drop(seen);
    booked.clear();
    tail.rows_out = table.len();
    tail.batches = tail.rows_out.div_ceil(cap);
    operators.push(tail);
    let stats = ExecStats {
        index_rows: agg.index_rows,
        scan_rows: agg.scan_rows,
        probes: agg.probes,
        bindings: agg.bindings,
        operators,
    };
    Ok((table, stats, trace))
}

/// Run one morsel through a private pipeline instance: leaf scan over the
/// morsel's domain slice, the join chain, and the pre-sort tail evaluation.
/// The stats sink and aggregate counters live and die inside this call —
/// workers never share mutable state.  `ctx.vectorize` selects between the
/// columnar (selection-vector) and the row-at-a-time operator repertoire;
/// both produce identical rows, row order and aggregate counters.
fn run_morsel(ctx: &ExecCtx<'_>, m: Morsel) -> Result<MorselOutput, ExecError> {
    // One interrupt check per morsel bounds cancellation/timeout latency to
    // a morsel's worth of work without a per-row atomic load.
    ctx.interrupt.check()?;
    if ctx.vectorize {
        return run_morsel_columnar(ctx, m);
    }
    let sink = new_stats_sink();
    let agg: SharedAgg = Rc::new(RefCell::new(Agg::default()));
    // Pull-based operators can't return errors through `next_batch`; the
    // spilled-probe operators park their first failure here and stop
    // producing, and the morsel driver surfaces it after the pipeline
    // closes.
    let err: ErrSlot = Rc::new(RefCell::new(None));
    let mut op: BoxedOperator<'_, Binding> = Box::new(MorselLeaf::new(
        &ctx.stages[0],
        &ctx.domain,
        m,
        ctx.batch_capacity,
        sink.clone(),
        agg.clone(),
    ));
    for (stage, build) in ctx.stages[1..].iter().zip(&ctx.builds[1..]) {
        op = match build {
            Some(b) => Box::new(HashJoinProbe::new(
                op,
                stage,
                b.as_ref(),
                &ctx.budget,
                ctx.batch_capacity,
                sink.clone(),
                agg.clone(),
                err.clone(),
            )),
            None => Box::new(NestedLoopJoin::new(
                op,
                stage,
                ctx.db,
                ctx.batch_capacity,
                sink.clone(),
                agg.clone(),
                ctx.postings,
            )),
        };
    }
    op.open();
    let mut rows: Vec<(Row, Row)> = Vec::new();
    let mut tail_rows = 0usize;
    while let Some(batch) = op.next_batch() {
        for binding in batch {
            tail_rows += 1;
            let env = Env {
                aliases: &ctx.aliases,
                tables: &ctx.tables,
                binding: &binding,
            };
            rows.push(tail_row(&env, ctx.select, &ctx.order_exprs));
        }
    }
    op.close();
    drop(op);
    if let Some(e) = err.borrow_mut().take() {
        return Err(e);
    }
    let ops = sink.borrow().clone();
    let agg = agg.borrow().clone();
    Ok(MorselOutput {
        rows,
        ops,
        tail_rows,
        agg,
        trace: Vec::new(),
    })
}

/// The vectorized morsel pipeline: columnar leaf, batch-at-a-time join
/// probes, and a tail loop that reads bindings through a reusable buffer
/// instead of allocating one `Vec` per binding.
fn run_morsel_columnar(ctx: &ExecCtx<'_>, m: Morsel) -> Result<MorselOutput, ExecError> {
    let sink = new_stats_sink();
    let agg: SharedAgg = Rc::new(RefCell::new(Agg::default()));
    let trace_cell: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
    let err: ErrSlot = Rc::new(RefCell::new(None));
    let mut op: Box<dyn ColOperator + '_> = Box::new(ColMorselLeaf::new(
        &ctx.cstages[0],
        &ctx.domain,
        m,
        ctx.batch_capacity,
        ctx.adaptive,
        sink.clone(),
        agg.clone(),
        trace_cell.clone(),
    ));
    for (cstage, build) in ctx.cstages[1..].iter().zip(&ctx.builds[1..]) {
        op = match build {
            Some(b) => Box::new(ColHashJoin::new(
                op,
                cstage,
                b.as_ref(),
                &ctx.budget,
                ctx.batch_capacity,
                sink.clone(),
                agg.clone(),
                err.clone(),
            )),
            None => Box::new(ColNLJoin::new(
                op,
                cstage,
                ctx.batch_capacity,
                sink.clone(),
                agg.clone(),
                ctx.postings,
            )),
        };
    }
    op.open();
    let mut rows: Vec<(Row, Row)> = Vec::new();
    let mut tail_rows = 0usize;
    let mut binding: Binding = Vec::with_capacity(ctx.aliases.len());
    while let Some(batch) = op.next_batch() {
        for i in 0..batch.live() {
            let p = batch.phys(i);
            binding.clear();
            binding.extend(batch.cols().iter().map(|c| c[p]));
            tail_rows += 1;
            let env = Env {
                aliases: &ctx.aliases,
                tables: &ctx.tables,
                binding: &binding,
            };
            rows.push(tail_row(&env, ctx.select, &ctx.order_exprs));
        }
    }
    op.close();
    drop(op);
    if let Some(e) = err.borrow_mut().take() {
        return Err(e);
    }
    let ops = sink.borrow().clone();
    let agg = agg.borrow().clone();
    let trace = trace_cell.borrow().clone();
    Ok(MorselOutput {
        rows,
        ops,
        tail_rows,
        agg,
        trace,
    })
}

/// Evaluate the select list and the order key for one binding.
fn tail_row(env: &Env<'_>, select: &[SelectItem], order_exprs: &[SqlExpr]) -> (Row, Row) {
    let mut select_vals = Vec::new();
    for item in select {
        match item {
            SelectItem::Star(alias) => {
                let (table, rid) = env.lookup(alias);
                select_vals.extend(table.rows()[rid].iter().cloned());
            }
            SelectItem::Expr { expr, .. } => select_vals.push(env.eval(expr)),
        }
    }
    let order_vals: Row = order_exprs.iter().map(|e| env.eval(e)).collect();
    (select_vals, order_vals)
}

/// Scan leaf over one morsel of the domain: emits single-alias bindings
/// batch-at-a-time, either from a filtered rid-range scan (`TBSCAN`) or a
/// slice of the pre-fetched posting list (`IXSCAN`).
struct MorselLeaf<'a> {
    alias: &'a str,
    base: &'a Table,
    access: &'a Access,
    cursor: LeafCursor<'a>,
    cap: usize,
    /// Rows surviving the pushed-down filters (TBSCAN accounting), folded
    /// into the aggregate at `close` — nothing shared is touched per batch.
    scan_rows: usize,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
}

enum LeafCursor<'a> {
    /// Full scan: next rid to examine and the morsel's end rid.
    Rids { next: usize, end: usize },
    /// Index scan: the morsel's slice of the posting list and the cursor.
    Postings { rids: &'a [usize], pos: usize },
}

impl<'a> MorselLeaf<'a> {
    fn new(
        stage: &Stage<'a>,
        domain: &'a LeafDomain,
        m: Morsel,
        cap: usize,
        sink: StatsSink,
        agg: SharedAgg,
    ) -> Self {
        let name = match stage.access {
            Access::TableScan { .. } => format!("TBSCAN({})", stage.alias),
            Access::IndexScan { index, .. } => format!("IXSCAN({} ix={index})", stage.alias),
        };
        let cursor = match domain {
            LeafDomain::Rids(n) => LeafCursor::Rids {
                next: m.start.min(*n),
                end: m.end.min(*n),
            },
            LeafDomain::Postings(rids) => LeafCursor::Postings {
                rids: &rids[m.start..m.end],
                pos: 0,
            },
        };
        MorselLeaf {
            alias: stage.alias,
            base: stage.base,
            access: stage.access,
            cursor,
            cap,
            scan_rows: 0,
            stats: OpStats::named(name),
            sink,
            agg,
        }
    }
}

impl Operator for MorselLeaf<'_> {
    type Item = Binding;

    fn open(&mut self) {}

    fn next_batch(&mut self) -> Option<Batch<Binding>> {
        let (alias, base, access) = (self.alias, self.base, self.access);
        let mut out: Batch<Binding> = Batch::with_capacity(self.cap);
        match (&mut self.cursor, access) {
            (LeafCursor::Rids { next, end }, Access::TableScan { preds }) => {
                while *next < *end && !out.is_full() {
                    let rid = *next;
                    *next += 1;
                    let ok = preds
                        .iter()
                        .all(|p| pred_holds(p, alias, Some((base, rid)), None));
                    if ok {
                        out.push(vec![rid]);
                    }
                }
                self.scan_rows += out.len();
            }
            (LeafCursor::Postings { rids, pos }, Access::IndexScan { residual, .. }) => {
                while *pos < rids.len() && !out.is_full() {
                    let rid = rids[*pos];
                    *pos += 1;
                    let ok = residual
                        .iter()
                        .all(|p| pred_holds(p, alias, Some((base, rid)), None));
                    if ok {
                        out.push(vec![rid]);
                    }
                }
            }
            _ => unreachable!("leaf cursor matches its access path"),
        }
        if out.is_empty() {
            return None;
        }
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.agg.borrow_mut().scan_rows += self.scan_rows;
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// The outer-binding feed shared by both join operators: buffers one input
/// batch at a time and hands out bindings one by one.
struct Feed<'a> {
    input: BoxedOperator<'a, Binding>,
    buf: VecDeque<Binding>,
    done: bool,
    rows_in: usize,
}

impl<'a> Feed<'a> {
    fn new(input: BoxedOperator<'a, Binding>) -> Self {
        Feed {
            input,
            buf: VecDeque::new(),
            done: false,
            rows_in: 0,
        }
    }

    fn next_outer(&mut self) -> Option<Binding> {
        loop {
            if let Some(b) = self.buf.pop_front() {
                return Some(b);
            }
            if self.done {
                return None;
            }
            match self.input.next_batch() {
                Some(batch) => {
                    self.rows_in += batch.len();
                    self.buf.extend(batch);
                }
                None => self.done = true,
            }
        }
    }
}

/// Index / scan nested-loop join: the inner access path is re-probed for
/// every outer binding (with an `IndexScan` inner this is DB2's
/// NLJOIN–IXSCAN pair).
struct NestedLoopJoin<'a> {
    feed: Feed<'a>,
    stage: &'a Stage<'a>,
    db: &'a Database,
    pending: VecDeque<Binding>,
    cap: usize,
    /// Per-probe fetch accounting, folded into the aggregate at `close`.
    fetched_scan: usize,
    fetched_index: usize,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
    /// Postings memoization context for `IXSCAN` inner probes.
    postings: PostingsCtx<'a>,
}

impl<'a> NestedLoopJoin<'a> {
    fn new(
        input: BoxedOperator<'a, Binding>,
        stage: &'a Stage<'a>,
        db: &'a Database,
        cap: usize,
        sink: StatsSink,
        agg: SharedAgg,
        postings: PostingsCtx<'a>,
    ) -> Self {
        NestedLoopJoin {
            feed: Feed::new(input),
            stage,
            db,
            pending: VecDeque::new(),
            cap,
            fetched_scan: 0,
            fetched_index: 0,
            stats: OpStats::named(format!("NLJOIN({})", stage.alias)),
            sink,
            agg,
            postings,
        }
    }

    /// Probe the inner access path for one outer binding, queueing the
    /// surviving extended bindings.
    fn probe(&mut self, binding: &Binding, pending: &mut VecDeque<Binding>) {
        self.stats.probes += 1;
        let stage = self.stage;
        let env = Env {
            aliases: &stage.outer_aliases,
            tables: &stage.outer_tables,
            binding,
        };
        let (rows, fetched) = exec_access(
            stage.access,
            stage.alias,
            stage.table_name,
            self.db,
            Some(&env),
            self.postings,
        );
        match fetched {
            Fetched::Scanned(n) => self.fetched_scan += n,
            Fetched::Indexed(n) => self.fetched_index += n,
        }
        for &rid in rows.iter() {
            let ok = stage
                .residual
                .iter()
                .all(|p| pred_holds(p, stage.alias, Some((stage.base, rid)), Some(&env)));
            if ok {
                // One exact-size allocation instead of clone-then-push
                // (which reallocates): this runs once per emitted binding.
                let mut b = Vec::with_capacity(binding.len() + 1);
                b.extend_from_slice(binding);
                b.push(rid);
                pending.push_back(b);
            }
        }
    }
}

impl Operator for NestedLoopJoin<'_> {
    type Item = Binding;

    fn open(&mut self) {
        self.feed.input.open();
        self.pending.clear();
    }

    fn next_batch(&mut self) -> Option<Batch<Binding>> {
        let mut pending = std::mem::take(&mut self.pending);
        let out = fill_from_pending_with_capacity(self.cap, &mut pending, |p| {
            match self.feed.next_outer() {
                Some(binding) => {
                    self.probe(&binding, p);
                    true
                }
                None => false,
            }
        });
        self.pending = pending;
        let out = out?;
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.feed.input.close();
        self.stats.rows_in = self.feed.rows_in;
        {
            let mut agg = self.agg.borrow_mut();
            agg.probes += self.stats.probes;
            agg.bindings += self.stats.rows_out;
            agg.scan_rows += self.fetched_scan;
            agg.index_rows += self.fetched_index;
        }
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Hash-join probe side: the build table was bucketed once up front (see
/// [`JoinBuild`]) and is shared read-only by all workers; probes compare
/// borrowed `&Value`s against the probe key to resolve hash collisions.
/// When the build spilled, probes route through a per-worker
/// [`PartitionProbe`] cache instead of the in-memory buckets — same
/// candidates, same order, so results and actuals do not move.
struct HashJoinProbe<'a> {
    feed: Feed<'a>,
    stage: &'a Stage<'a>,
    build: &'a JoinBuild,
    parts: Option<PartitionProbe<'a>>,
    pending: VecDeque<Binding>,
    cap: usize,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
    /// First partition-load failure of this morsel's pipeline; once set the
    /// operator stops producing batches.
    err: ErrSlot,
}

impl<'a> HashJoinProbe<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        input: BoxedOperator<'a, Binding>,
        stage: &'a Stage<'a>,
        build: &'a JoinBuild,
        budget: &Arc<MemBudget>,
        cap: usize,
        sink: StatsSink,
        agg: SharedAgg,
        err: ErrSlot,
    ) -> Self {
        let parts = match &build.backend {
            BuildBackend::Mem(_) => None,
            BuildBackend::Spilled(p) => Some(PartitionProbe::new(p, budget.clone())),
        };
        HashJoinProbe {
            feed: Feed::new(input),
            stage,
            build,
            parts,
            pending: VecDeque::new(),
            cap,
            stats: OpStats::named(format!("HSJOIN({})", stage.alias)),
            sink,
            agg,
            err,
        }
    }

    /// Probe the hash table for one outer binding, queueing the surviving
    /// extended bindings.
    fn probe(&mut self, binding: &Binding, pending: &mut VecDeque<Binding>) {
        self.stats.probes += 1;
        let stage = self.stage;
        let build = self.build;
        let env = Env {
            aliases: &stage.outer_aliases,
            tables: &stage.outer_tables,
            binding,
        };
        let probe_vals: Vec<Value> = stage
            .hash_keys
            .iter()
            .map(|(outer_expr, _)| env.eval(outer_expr))
            .collect();
        if probe_vals.iter().any(Value::is_null) {
            return;
        }
        let h = hash_values(probe_vals.iter());
        let candidates = match &build.backend {
            BuildBackend::Mem(buckets) => buckets.get(&h),
            BuildBackend::Spilled(_) => {
                let parts = self
                    .parts
                    .as_mut()
                    .expect("partition cache for spilled build");
                match parts.candidates(h) {
                    Ok(c) => c,
                    Err(e) => {
                        self.err.borrow_mut().get_or_insert(e);
                        return;
                    }
                }
            }
        };
        let Some(candidates) = candidates else {
            return;
        };
        for &rid in candidates {
            let row = &stage.base.rows()[rid];
            // Resolve hash collisions by comparing the borrowed key values.
            let keys_match = build
                .key_cols
                .iter()
                .zip(&probe_vals)
                .all(|(&c, pv)| &row[c] == pv);
            if !keys_match {
                continue;
            }
            let ok = stage
                .residual
                .iter()
                .all(|p| pred_holds(p, stage.alias, Some((stage.base, rid)), Some(&env)));
            if ok {
                // One exact-size allocation instead of clone-then-push
                // (which reallocates): this runs once per emitted binding.
                let mut b = Vec::with_capacity(binding.len() + 1);
                b.extend_from_slice(binding);
                b.push(rid);
                pending.push_back(b);
            }
        }
    }
}

impl Operator for HashJoinProbe<'_> {
    type Item = Binding;

    fn open(&mut self) {
        self.feed.input.open();
        self.pending.clear();
    }

    fn next_batch(&mut self) -> Option<Batch<Binding>> {
        if self.err.borrow().is_some() {
            return None;
        }
        let mut pending = std::mem::take(&mut self.pending);
        let out = fill_from_pending_with_capacity(self.cap, &mut pending, |p| {
            if self.err.borrow().is_some() {
                return false;
            }
            match self.feed.next_outer() {
                Some(binding) => {
                    self.probe(&binding, p);
                    true
                }
                None => false,
            }
        });
        self.pending = pending;
        let out = out?;
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.feed.input.close();
        self.stats.rows_in = self.feed.rows_in;
        {
            let mut agg = self.agg.borrow_mut();
            agg.probes += self.stats.probes;
            agg.bindings += self.stats.rows_out;
        }
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

// ---------------------------------------------------------------------
// The columnar operator repertoire.
// ---------------------------------------------------------------------

/// Columnar scan leaf: fills one rid column directly from the morsel's
/// domain slice (a bulk extend, not a per-tuple push), then evaluates each
/// pushed-down predicate column-at-a-time into the selection vector.  The
/// [`BatchSizer`] grows the scan chunk when the filters turn out to be
/// selective, so downstream operators keep seeing usefully full batches.
struct ColMorselLeaf<'a> {
    stage: &'a CStage<'a>,
    cursor: LeafCursor<'a>,
    sizer: BatchSizer,
    cap: usize,
    /// Rows surviving the pushed-down filters (TBSCAN accounting).
    scan_rows: usize,
    /// Every typed-lowered access predicate as one fused-pass term: the
    /// whole conjunction evaluates in a single gather over the batch's
    /// rids instead of one selection pass per predicate.
    kernel_terms: Vec<MaskTerm<'a>>,
    /// Indices of the access predicates left to the interpreted path.
    scalar_preds: Vec<usize>,
    /// Scratch: live rids gathered for one kernel pass (reused per batch).
    rid_buf: Vec<usize>,
    /// Scratch: packed keep bits of one kernel pass.
    keep: BitMask,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
    trace: Rc<RefCell<Vec<usize>>>,
}

impl<'a> ColMorselLeaf<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        stage: &'a CStage<'a>,
        domain: &'a LeafDomain,
        m: Morsel,
        cap: usize,
        adaptive: bool,
        sink: StatsSink,
        agg: SharedAgg,
        trace: Rc<RefCell<Vec<usize>>>,
    ) -> Self {
        let cursor = match domain {
            LeafDomain::Rids(n) => LeafCursor::Rids {
                next: m.start.min(*n),
                end: m.end.min(*n),
            },
            LeafDomain::Postings(rids) => LeafCursor::Postings {
                rids: &rids[m.start..m.end],
                pos: 0,
            },
        };
        let mut kernel_terms: Vec<MaskTerm<'a>> = Vec::new();
        let mut scalar_preds: Vec<usize> = Vec::new();
        for pi in 0..stage.access_preds.len() {
            let tp = stage.typed_preds.get(pi).unwrap_or(&TypedPred::Scalar);
            match tp.term() {
                Some(t) => kernel_terms.push(t),
                None => scalar_preds.push(pi),
            }
        }
        ColMorselLeaf {
            stage,
            cursor,
            sizer: BatchSizer::new(cap, adaptive),
            cap,
            scan_rows: 0,
            kernel_terms,
            scalar_preds,
            rid_buf: Vec::new(),
            keep: BitMask::default(),
            stats: OpStats::named(stage.label.clone()),
            sink,
            agg,
            trace,
        }
    }
}

impl ColOperator for ColMorselLeaf<'_> {
    fn open(&mut self) {}

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        let base = self.stage.base;
        loop {
            let chunk = self.sizer.chunk();
            let mut out = ColumnBatch::new(1, self.cap.max(chunk));
            let scanned = match &mut self.cursor {
                LeafCursor::Rids { next, end } => {
                    let n = chunk.min(*end - *next);
                    if n == 0 {
                        return None;
                    }
                    out.col_mut(0).extend(*next..*next + n);
                    *next += n;
                    n
                }
                LeafCursor::Postings { rids, pos } => {
                    let n = chunk.min(rids.len() - *pos);
                    if n == 0 {
                        return None;
                    }
                    out.col_mut(0).extend_from_slice(&rids[*pos..*pos + n]);
                    *pos += n;
                    n
                }
            };
            // Column-at-a-time filtering: every typed-lowered predicate
            // evaluates in ONE fused selection pass (single gather over
            // the batch's rids, conjunction folded word-wise), then the
            // interpreted remainder refines per live row.  Dropped rows
            // are never materialized.
            if !self.kernel_terms.is_empty() {
                out.gather_col(0, &mut self.rid_buf);
                mask_terms(&self.kernel_terms, true, &self.rid_buf, &mut self.keep);
                self.stats.kernel_rows += self.rid_buf.len() * self.kernel_terms.len();
                out.retain_by_mask(&self.keep);
            }
            for &pi in &self.scalar_preds {
                let pred = &self.stage.access_preds[pi];
                out.retain_by_col(0, |rid| cpred_holds(pred, &EMPTY_ENV, Some((base, rid))));
            }
            self.sizer.observe(scanned, out.live());
            if out.is_empty() {
                continue;
            }
            if matches!(self.stage.access, Access::TableScan { .. }) {
                self.scan_rows += out.live();
            }
            self.stats.rows_out += out.live();
            self.stats.batches += 1;
            return Some(out);
        }
    }

    fn close(&mut self) {
        self.agg.borrow_mut().scan_rows += self.scan_rows;
        self.sink.borrow_mut().push(self.stats.clone());
        self.trace.borrow_mut().extend(self.sizer.trace());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Append one extended binding to a join's output batch: the outer columns
/// are copied value-by-value into the output columns and the inner rid
/// goes into the last column — no per-binding `Vec` is ever allocated.
#[inline]
fn emit_extended(batch: &ColumnBatch, phys: usize, rid: usize, out: &mut ColumnBatch) {
    let arity = batch.arity();
    for j in 0..arity {
        let v = batch.col(j)[phys];
        out.col_mut(j).push(v);
    }
    out.col_mut(arity).push(rid);
}

/// Drop the rids whose keep bit is cleared, preserving order.
fn retain_rids(rids: &mut Vec<usize>, keep: &BitMask) {
    let mut w = 0;
    for i in keep.ones() {
        rids[w] = rids[i];
        w += 1;
    }
    rids.truncate(w);
}

/// Columnar index/scan nested-loop join: consumes outer batches whole,
/// probing the inner access path once per live outer row through compiled
/// bounds and predicates (no schema lookups, no value clones on the
/// comparison path).  When the stage carries NLJOIN kernel lowerings
/// ([`NlSplit`]), each probe runs as selection kernels over the inner
/// column images instead of row-at-a-time interpretation: constant-rhs
/// predicates pre-materialize one survivor rid list per `TBSCAN` inner
/// (shared by every probe of this operator instance), and outer-dependent
/// `i64` comparisons fuse into one multi-term mask pass per probe.
struct ColNLJoin<'a> {
    input: Box<dyn ColOperator + 'a>,
    stage: &'a CStage<'a>,
    cur: Option<(ColumnBatch, usize)>,
    cap: usize,
    fetched_scan: usize,
    fetched_index: usize,
    /// Rids of a `TBSCAN` inner surviving the static kernel terms,
    /// computed on the first kernelized probe and reused by the rest.
    static_list: Option<Vec<usize>>,
    /// Scratch: the probe's candidate rids (reused across probes).
    rid_buf: Vec<usize>,
    /// Scratch: packed keep bits of one fused pass.
    keep: BitMask,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
    /// Postings memoization context for `IXSCAN` inner probes.
    postings: PostingsCtx<'a>,
}

impl<'a> ColNLJoin<'a> {
    fn new(
        input: Box<dyn ColOperator + 'a>,
        stage: &'a CStage<'a>,
        cap: usize,
        sink: StatsSink,
        agg: SharedAgg,
        postings: PostingsCtx<'a>,
    ) -> Self {
        ColNLJoin {
            input,
            stage,
            cur: None,
            cap,
            fetched_scan: 0,
            fetched_index: 0,
            static_list: None,
            rid_buf: Vec::new(),
            keep: BitMask::default(),
            stats: OpStats::named(stage.label.clone()),
            sink,
            agg,
            postings,
        }
    }

    fn probe(&mut self, batch: &ColumnBatch, phys: usize, out: &mut ColumnBatch) {
        self.stats.probes += 1;
        let stage = self.stage;
        let base = stage.base;
        let env = ColEnv {
            tables: &stage.outer_tables,
            cols: batch.cols(),
            idx: phys,
        };
        if !stage.nl_access.is_empty() || !stage.nl_residual.is_empty() {
            return self.probe_kernel(batch, phys, &env, out);
        }
        match stage.access {
            Access::TableScan { .. } => {
                let mut fetched = 0usize;
                for rid in 0..base.len() {
                    let cur = Some((base, rid));
                    if !stage.access_preds.iter().all(|p| cpred_holds(p, &env, cur)) {
                        continue;
                    }
                    fetched += 1;
                    if stage.residual.iter().all(|p| cpred_holds(p, &env, cur)) {
                        emit_extended(batch, phys, rid, out);
                    }
                }
                self.fetched_scan += fetched;
            }
            Access::IndexScan { index, .. } => {
                let rids = cindex_range(
                    stage.tree.expect("index resolved"),
                    stage.cbounds.as_ref().expect("bounds compiled"),
                    &env,
                    index,
                    self.postings,
                );
                self.fetched_index += rids.len();
                for &rid in rids.iter() {
                    let cur = Some((base, rid));
                    if !stage.access_preds.iter().all(|p| cpred_holds(p, &env, cur)) {
                        continue;
                    }
                    if stage.residual.iter().all(|p| cpred_holds(p, &env, cur)) {
                        emit_extended(batch, phys, rid, out);
                    }
                }
            }
        }
    }

    /// Resolve one probe's dynamic terms against the outer row and run the
    /// fused kernel pass over `rid_buf`, then the interpreted remainder.
    /// Returns `false` when a dynamic rhs is NULL (no rid can match).
    fn apply_split(
        &mut self,
        split: &NlSplit<'a>,
        extra_static: &[MaskTerm<'a>],
        preds: &[CPred],
        env: &ColEnv<'_>,
    ) -> bool {
        let base = self.stage.base;
        let mut terms: Vec<MaskTerm<'a>> = extra_static.to_vec();
        let mut fallback: Vec<usize> = Vec::new();
        for t in &split.dynamic {
            match ceval(&t.rhs, env, None).as_ref() {
                Value::Int(k) => terms.push(MaskTerm::I64 {
                    vals: t.vals,
                    validity: t.validity,
                    op: t.op,
                    rhs: *k,
                }),
                // SQL three-valued logic: a NULL comparand fails every row.
                Value::Null => return false,
                // Non-integer rhs (e.g. a decimal): interpret this
                // predicate for this probe only.
                _ => fallback.push(t.pred),
            }
        }
        if !terms.is_empty() {
            mask_terms(&terms, true, &self.rid_buf, &mut self.keep);
            self.stats.kernel_rows += self.rid_buf.len() * terms.len();
            retain_rids(&mut self.rid_buf, &self.keep);
        }
        for &pi in split.scalar.iter().chain(&fallback) {
            let p = &preds[pi];
            self.rid_buf
                .retain(|&rid| cpred_holds(p, env, Some((base, rid))));
        }
        true
    }

    /// The kernelized probe: candidate rids flow through the access-level
    /// and residual-level [`NlSplit`]s as packed-mask passes.  Emission
    /// order, `fetched_*` accounting and `probes` are identical to the
    /// interpreted probe; only `kernel_rows` reports the engagement.
    fn probe_kernel(
        &mut self,
        batch: &ColumnBatch,
        phys: usize,
        env: &ColEnv<'_>,
        out: &mut ColumnBatch,
    ) {
        let stage = self.stage;
        // 1. Candidate rids: the static survivor list of a `TBSCAN` inner
        //    (constant-rhs predicates hold for every probe, so the list is
        //    computed once per operator instance), or the B-tree fetch of
        //    an `IXSCAN` inner.  Index-scan static terms join the fused
        //    pass below instead — their candidate set changes per probe.
        let mut index_static: &[MaskTerm<'a>] = &[];
        match stage.access {
            Access::TableScan { .. } => {
                let static_terms = &stage.nl_access.static_terms;
                let list = self.static_list.get_or_insert_with(|| {
                    let all: Vec<usize> = (0..stage.base.len()).collect();
                    if static_terms.is_empty() {
                        return all;
                    }
                    let mut keep = BitMask::default();
                    mask_terms(static_terms, true, &all, &mut keep);
                    keep.ones().map(|i| all[i]).collect()
                });
                self.rid_buf.clear();
                self.rid_buf.extend_from_slice(list);
                if !static_terms.is_empty() {
                    // Per-probe accounting (the probe count is invariant
                    // across DOP and morsel size, operator-instance counts
                    // are not): each probe consumes the kernel-built list.
                    self.stats.kernel_rows += self.rid_buf.len();
                }
            }
            Access::IndexScan { index, .. } => {
                // The buffer is a scratch the split passes mutate below, so
                // a cached (shared) list is copied out, never aliased.
                self.rid_buf = cindex_range(
                    stage.tree.expect("index resolved"),
                    stage.cbounds.as_ref().expect("bounds compiled"),
                    env,
                    index,
                    self.postings,
                )
                .into_vec();
                self.fetched_index += self.rid_buf.len();
                index_static = &stage.nl_access.static_terms;
            }
        }
        // 2. Access-level filtering (fused kernel pass + interpreted
        //    remainder), then the fetch accounting of a `TBSCAN` inner:
        //    rows surviving ALL access predicates, residuals not yet seen.
        let survived = self.apply_split(&stage.nl_access, index_static, &stage.access_preds, env);
        if !survived {
            self.rid_buf.clear();
        }
        if matches!(stage.access, Access::TableScan { .. }) {
            self.fetched_scan += self.rid_buf.len();
        }
        if self.rid_buf.is_empty() {
            return;
        }
        // 3. Residual filtering and emission (ascending/fetch rid order,
        //    same as the interpreted probe).  Residual static terms join
        //    the fused pass — there is no shared candidate list to bake
        //    them into.
        if !self.apply_split(
            &stage.nl_residual,
            &stage.nl_residual.static_terms,
            &stage.residual,
            env,
        ) {
            return;
        }
        let rids = std::mem::take(&mut self.rid_buf);
        for &rid in &rids {
            emit_extended(batch, phys, rid, out);
        }
        self.rid_buf = rids;
    }
}

impl ColOperator for ColNLJoin<'_> {
    fn open(&mut self) {
        self.input.open();
        self.cur = None;
    }

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        let arity = self.stage.outer_tables.len();
        let mut out = ColumnBatch::new(arity + 1, self.cap);
        loop {
            if out.live() >= self.cap {
                break;
            }
            match self.cur.take() {
                Some((batch, mut pos)) => {
                    while pos < batch.live() && out.live() < self.cap {
                        self.probe(&batch, batch.phys(pos), &mut out);
                        pos += 1;
                    }
                    if pos < batch.live() {
                        self.cur = Some((batch, pos));
                    }
                }
                None => match self.input.next_batch() {
                    Some(b) => {
                        self.stats.rows_in += b.live();
                        self.cur = Some((b, 0));
                    }
                    None => break,
                },
            }
        }
        if out.is_empty() {
            return None;
        }
        self.stats.rows_out += out.live();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.input.close();
        {
            let mut agg = self.agg.borrow_mut();
            agg.probes += self.stats.probes;
            agg.bindings += self.stats.rows_out;
            agg.scan_rows += self.fetched_scan;
            agg.index_rows += self.fetched_index;
        }
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Per-batch probe state of the columnar hash join: the key expressions
/// are evaluated column-at-a-time into one flattened buffer (column-major,
/// key `k` of row `i` at `k·live + i`) and all probe hashes are computed
/// in a single pass — one allocation per batch where the row path paid one
/// key vector per probe.
struct ProbeState {
    batch: ColumnBatch,
    keys: Vec<Value>,
    /// Gathered kernelized key columns (one per hash key, aligned with the
    /// stage's `typed_keys`); filled instead of `keys` when the stage
    /// carries key images.
    gkeys: Vec<GatheredKey>,
    hashes: Vec<Option<u64>>,
    /// Pre-resolved build candidates per probe row, when the probe side of
    /// a spilled build was spooled into Grace-partition order at prepare
    /// time (each partition loaded at most once per batch).
    cands: Option<Vec<Vec<usize>>>,
    pos: usize,
}

/// Columnar hash-join probe over a shared (possibly cached) build side.
/// A spilled build is probed through the same per-worker
/// [`PartitionProbe`] cache as the scalar path.
struct ColHashJoin<'a> {
    input: Box<dyn ColOperator + 'a>,
    stage: &'a CStage<'a>,
    build: &'a JoinBuild,
    parts: Option<PartitionProbe<'a>>,
    cur: Option<ProbeState>,
    cap: usize,
    stats: OpStats,
    sink: StatsSink,
    agg: SharedAgg,
    /// First partition-load failure of this morsel's pipeline; once set the
    /// operator stops producing batches.
    err: ErrSlot,
}

impl<'a> ColHashJoin<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        input: Box<dyn ColOperator + 'a>,
        stage: &'a CStage<'a>,
        build: &'a JoinBuild,
        budget: &Arc<MemBudget>,
        cap: usize,
        sink: StatsSink,
        agg: SharedAgg,
        err: ErrSlot,
    ) -> Self {
        let parts = match &build.backend {
            BuildBackend::Mem(_) => None,
            BuildBackend::Spilled(p) => Some(PartitionProbe::new(p, budget.clone())),
        };
        ColHashJoin {
            input,
            stage,
            build,
            parts,
            cur: None,
            cap,
            stats: OpStats::named(stage.label.clone()),
            sink,
            agg,
            err,
        }
    }

    /// The vectorized key pass over a freshly pulled batch.  With
    /// kernelized keys the pass gathers each key's flat column (`i64`
    /// values or dictionary codes), folds the keys' validity masks into
    /// one per-row NULL gate, and hashes every composite key in one fused
    /// loop ([`hash_keys_typed`] is bit-identical to [`hash_values`] over
    /// the corresponding `Value`s, so bucket lookups and Grace partition
    /// routing are unchanged).  NULL-keyed rows hash to `None` and are
    /// never probed — exactly the scalar path's behavior.
    fn prepare(&mut self, batch: ColumnBatch) -> ProbeState {
        let nk = self.stage.hash_keys.len();
        let live = batch.live();
        if let Some(tk) = &self.stage.typed_keys {
            let mut rid_buf: Vec<usize> = Vec::new();
            let mut gkeys: Vec<GatheredKey> = Vec::with_capacity(nk);
            let mut valid: Option<BitMask> = None;
            for ki in tk {
                batch.gather_col(ki.slot(), &mut rid_buf);
                match ki {
                    KeyImage::Int { outer, .. } => {
                        let mut vals = Vec::new();
                        gather_i64(outer, &rid_buf, &mut vals);
                        gkeys.push(GatheredKey::I64(vals));
                    }
                    KeyImage::Str { outer_codes, .. } => {
                        let mut codes = Vec::new();
                        gather_u32(outer_codes, &rid_buf, &mut codes);
                        gkeys.push(GatheredKey::Code(codes));
                    }
                }
                if let Some(ov) = ki.outer_validity() {
                    let m = valid.get_or_insert_with(|| BitMask::filled(live, true));
                    for (i, &rid) in rid_buf.iter().enumerate() {
                        if !ov.get(rid) {
                            m.set(i, false);
                        }
                    }
                }
            }
            let hkeys: Vec<HashKey<'_>> = tk
                .iter()
                .zip(&gkeys)
                .map(|(ki, gk)| match (ki, gk) {
                    (KeyImage::Int { .. }, GatheredKey::I64(v)) => HashKey::I64(v),
                    (KeyImage::Str { outer_dict, .. }, GatheredKey::Code(c)) => HashKey::Str {
                        codes: c,
                        dict: outer_dict,
                    },
                    _ => unreachable!("gathered keys align with the key images"),
                })
                .collect();
            let mut hashes: Vec<Option<u64>> = Vec::new();
            hash_keys_typed(&hkeys, valid.as_ref(), live, &mut hashes);
            self.stats.kernel_rows += live;
            // Probe side of a spilled build: group this batch's rows by
            // Grace partition up front so each partition file is read at
            // most once per batch.  A failed partition load parks its
            // error in the slot and leaves this batch candidate-less —
            // `next_batch` stops producing on the next poll.
            let cands = match self.parts.as_mut() {
                Some(parts) => match parts.spool(&hashes) {
                    Ok(c) => Some(c),
                    Err(e) => {
                        self.err.borrow_mut().get_or_insert(e);
                        Some(vec![Vec::new(); hashes.len()])
                    }
                },
                None => None,
            };
            ProbeState {
                batch,
                keys: Vec::new(),
                gkeys,
                hashes,
                cands,
                pos: 0,
            }
        } else {
            let mut keys: Vec<Value> = Vec::with_capacity(nk * live);
            for (expr, _) in &self.stage.hash_keys {
                for i in 0..live {
                    let env = ColEnv {
                        tables: &self.stage.outer_tables,
                        cols: batch.cols(),
                        idx: batch.phys(i),
                    };
                    keys.push(ceval(expr, &env, None).into_owned());
                }
            }
            let mut hashes = Vec::with_capacity(live);
            for i in 0..live {
                if (0..nk).any(|k| keys[k * live + i].is_null()) {
                    hashes.push(None);
                } else {
                    hashes.push(Some(hash_values((0..nk).map(|k| &keys[k * live + i]))));
                }
            }
            ProbeState {
                batch,
                keys,
                gkeys: Vec::new(),
                hashes,
                cands: None,
                pos: 0,
            }
        }
    }

    fn probe(&mut self, st: &ProbeState, i: usize, out: &mut ColumnBatch) {
        self.stats.probes += 1;
        let Some(h) = st.hashes[i] else { return };
        let build = self.build;
        let stage = self.stage;
        let candidates: &[usize] = match &st.cands {
            // Pre-spooled at prepare time (typed probe of a spilled build).
            Some(c) => &c[i],
            None => match &build.backend {
                BuildBackend::Mem(buckets) => buckets.get(&h).map_or(&[][..], Vec::as_slice),
                BuildBackend::Spilled(_) => {
                    let parts = self
                        .parts
                        .as_mut()
                        .expect("partition cache for spilled build");
                    match parts.candidates(h) {
                        Ok(c) => c.map_or(&[][..], Vec::as_slice),
                        Err(e) => {
                            self.err.borrow_mut().get_or_insert(e);
                            return;
                        }
                    }
                }
            },
        };
        let live = st.hashes.len();
        let phys = st.batch.phys(i);
        let base = stage.base;
        let env = ColEnv {
            tables: &stage.outer_tables,
            cols: st.batch.cols(),
            idx: phys,
        };
        for &rid in candidates {
            // Resolve hash collisions by comparing the key values: over
            // kernelized keys a primitive compare against the inner column
            // image (codes translate through `xlat`; build-side NULL keys
            // never entered the buckets, so inner sentinel slots cannot
            // appear here), otherwise the borrowed `Value` compare.
            let keys_match = match &stage.typed_keys {
                Some(tk) => tk.iter().zip(&st.gkeys).all(|(ki, gk)| match (ki, gk) {
                    (KeyImage::Int { inner, .. }, GatheredKey::I64(v)) => inner[rid] == v[i],
                    (
                        KeyImage::Str {
                            inner_codes, xlat, ..
                        },
                        GatheredKey::Code(c),
                    ) => xlat[c[i] as usize] == inner_codes[rid] as i64,
                    _ => unreachable!("gathered keys align with the key images"),
                }),
                None => {
                    let row = &base.rows()[rid];
                    build
                        .key_cols
                        .iter()
                        .enumerate()
                        .all(|(k, &c)| row[c] == st.keys[k * live + i])
                }
            };
            if !keys_match {
                continue;
            }
            if stage
                .residual
                .iter()
                .all(|p| cpred_holds(p, &env, Some((base, rid))))
            {
                emit_extended(&st.batch, phys, rid, out);
            }
        }
    }
}

impl ColOperator for ColHashJoin<'_> {
    fn open(&mut self) {
        self.input.open();
        self.cur = None;
    }

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        if self.err.borrow().is_some() {
            return None;
        }
        let arity = self.stage.outer_tables.len();
        let mut out = ColumnBatch::new(arity + 1, self.cap);
        loop {
            if out.live() >= self.cap || self.err.borrow().is_some() {
                break;
            }
            match self.cur.take() {
                Some(mut st) => {
                    while st.pos < st.hashes.len()
                        && out.live() < self.cap
                        && self.err.borrow().is_none()
                    {
                        let i = st.pos;
                        st.pos += 1;
                        self.probe(&st, i, &mut out);
                    }
                    if st.pos < st.hashes.len() {
                        self.cur = Some(st);
                    }
                }
                None => match self.input.next_batch() {
                    Some(b) => {
                        self.stats.rows_in += b.live();
                        let st = self.prepare(b);
                        self.cur = Some(st);
                    }
                    None => break,
                },
            }
        }
        if out.is_empty() {
            return None;
        }
        self.stats.rows_out += out.live();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.input.close();
        {
            let mut agg = self.agg.borrow_mut();
            agg.probes += self.stats.probes;
            agg.bindings += self.stats.rows_out;
        }
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Find the base table of an alias used in the join tree.
pub(crate) fn alias_table<'a>(node: &JoinNode, alias: &str, db: &'a Database) -> &'a Table {
    fn table_name<'n>(node: &'n JoinNode, alias: &str) -> Option<&'n str> {
        match node {
            JoinNode::Leaf {
                alias: a, table, ..
            } => (a == alias).then_some(table.as_str()),
            JoinNode::Join {
                outer,
                alias: a,
                table,
                ..
            } => {
                if a == alias {
                    Some(table.as_str())
                } else {
                    table_name(outer, alias)
                }
            }
        }
    }
    let name = table_name(node, alias).unwrap_or_else(|| panic!("alias {alias:?} not in plan"));
    db.table(name).expect("table registered")
}

/// Evaluation environment: one bound row per alias.
pub(crate) struct Env<'a> {
    pub(crate) aliases: &'a [String],
    pub(crate) tables: &'a [&'a Table],
    pub(crate) binding: &'a [usize],
}

impl<'a> Env<'a> {
    pub(crate) fn lookup(&self, alias: &str) -> (&'a Table, usize) {
        let idx = self
            .aliases
            .iter()
            .position(|a| a == alias)
            .unwrap_or_else(|| panic!("alias {alias:?} not bound"));
        (self.tables[idx], self.binding[idx])
    }

    pub(crate) fn eval(&self, expr: &SqlExpr) -> Value {
        match expr {
            SqlExpr::Lit(v) => v.clone(),
            SqlExpr::Col(c) => {
                let (table, rid) = self.lookup(&c.table);
                table.rows()[rid][table.schema().expect_index(&c.column)].clone()
            }
            SqlExpr::Add(a, b) => self.eval(a).numeric_add(&self.eval(b)),
        }
    }
}

/// Evaluate an expression that may reference the current alias's candidate
/// row (`current`) or outer aliases through `outer`.
pub(crate) fn eval_expr(
    expr: &SqlExpr,
    current_alias: &str,
    current: Option<(&Table, usize)>,
    outer: Option<&Env<'_>>,
) -> Value {
    match expr {
        SqlExpr::Lit(v) => v.clone(),
        SqlExpr::Col(c) => {
            if c.table == current_alias {
                let (table, rid) = current.expect("current row required");
                table.rows()[rid][table.schema().expect_index(&c.column)].clone()
            } else {
                outer
                    .expect("outer environment required")
                    .eval(&SqlExpr::Col(c.clone()))
            }
        }
        SqlExpr::Add(a, b) => eval_expr(a, current_alias, current, outer).numeric_add(&eval_expr(
            b,
            current_alias,
            current,
            outer,
        )),
    }
}

pub(crate) fn pred_holds(
    pred: &SqlPredicate,
    current_alias: &str,
    current: Option<(&Table, usize)>,
    outer: Option<&Env<'_>>,
) -> bool {
    let l = eval_expr(&pred.lhs, current_alias, current, outer);
    let r = eval_expr(&pred.rhs, current_alias, current, outer);
    match l.sql_cmp(&r) {
        Some(ord) => pred.op.eval(ord),
        None => false,
    }
}

/// How many rows an access-path execution fetched, and through which path
/// (table scans report the post-filter count, index scans the pre-residual
/// fetch count — the quantities Table IX's work accounting uses).
pub(crate) enum Fetched {
    /// Rows surviving a full scan's pushed-down filters.
    Scanned(usize),
    /// Rows fetched from a B-tree range scan (before residual filtering).
    Indexed(usize),
}

/// Execute an access path, returning the matching row ids and the fetch
/// accounting.  An `IndexScan` consults the postings context (if any) for
/// its B-tree range; the residual-free fast path hands the shared list
/// straight through without copying.
pub(crate) fn exec_access(
    access: &Access,
    alias: &str,
    table_name: &str,
    db: &Database,
    outer: Option<&Env<'_>>,
    postings: PostingsCtx<'_>,
) -> (Postings, Fetched) {
    let base = db.table(table_name).expect("table registered");
    match access {
        Access::TableScan { preds } => {
            let mut out = Vec::new();
            for rid in 0..base.len() {
                let ok = preds
                    .iter()
                    .all(|p| pred_holds(p, alias, Some((base, rid)), outer));
                if ok {
                    out.push(rid);
                }
            }
            let n = out.len();
            (Postings::Owned(out), Fetched::Scanned(n))
        }
        Access::IndexScan {
            index,
            bounds,
            residual,
        } => {
            let ix = db.index(index).expect("index registered");
            let rb = resolve_bounds(bounds, alias, outer);
            let rows = cached_tree_range(&ix.tree, rb, index, postings);
            let fetched = rows.len();
            if residual.is_empty() {
                return (rows, Fetched::Indexed(fetched));
            }
            let out: Vec<usize> = rows
                .iter()
                .copied()
                .filter(|&rid| {
                    residual
                        .iter()
                        .all(|p| pred_holds(p, alias, Some((base, rid)), outer))
                })
                .collect();
            (Postings::Owned(out), Fetched::Indexed(fetched))
        }
    }
}

/// Evaluate probe bounds against the outer environment into their
/// canonical resolved form (empty side = unbounded, inclusive).
fn resolve_bounds(bounds: &Bounds, alias: &str, outer: Option<&Env<'_>>) -> ResolvedBounds {
    let eq_vals: Vec<Value> = bounds
        .eq
        .iter()
        .map(|(_, e)| eval_expr(e, alias, None, outer))
        .collect();
    let (lower, lower_inc) = match &bounds.lower {
        Some((e, inclusive)) => {
            let mut k = eq_vals.clone();
            k.push(eval_expr(e, alias, None, outer));
            (k, *inclusive)
        }
        None => (eq_vals.clone(), true),
    };
    let (upper, upper_inc) = match &bounds.upper {
        Some((e, inclusive)) => {
            let mut k = eq_vals.clone();
            k.push(eval_expr(e, alias, None, outer));
            (k, *inclusive)
        }
        None => (eq_vals, true),
    };
    ResolvedBounds {
        lower,
        lower_inc,
        upper,
        upper_inc,
    }
}

/// Convenience: optimize and execute an SQL text against the database.
pub fn run_sql(sql: &str, db: &Database) -> Result<Table, Box<dyn std::error::Error>> {
    let query = crate::sqlparse::parse_sql(sql)?;
    let plan = crate::optimizer::optimize(&query, db)?;
    Ok(QueryRequest::new(&plan, db).run()?.rows)
}

/// Check a predicate operator against an ordering (exposed for reuse).
pub fn cmp_eval(op: SqlCmp, ord: std::cmp::Ordering) -> bool {
    op.eval(ord)
}

#[cfg(test)]
// The unit tests deliberately keep exercising the deprecated entry points:
// they are the regression suite proving the shims stay byte-identical to
// the `QueryRequest` path they forward to.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::materialize::execute_materialized_with_stats;
    use crate::optimizer::optimize;
    use crate::sqlparse::parse_sql;
    use xqjg_store::IndexDef;

    /// Small XML-encoding-like database: one document with nested elements.
    fn db() -> Database {
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        type FixtureRow = (
            i64,
            i64,
            i64,
            &'static str,
            Option<&'static str>,
            Option<&'static str>,
        );
        let rows: Vec<FixtureRow> = vec![
            (0, 8, 0, "DOC", Some("a.xml"), None),
            (1, 7, 1, "ELEM", Some("site"), None),
            (2, 2, 2, "ELEM", Some("open_auction"), None),
            (3, 1, 3, "ELEM", Some("bidder"), None),
            (4, 0, 4, "TEXT", None, Some("10")),
            (5, 3, 2, "ELEM", Some("open_auction"), None),
            (6, 0, 3, "ELEM", Some("initial"), Some("15")),
            (7, 1, 3, "ELEM", Some("bidder"), None),
            (8, 0, 4, "TEXT", None, Some("20")),
        ];
        for (pre, size, level, kind, name, value) in rows {
            t.push(vec![
                Value::Int(pre),
                Value::Int(size),
                Value::Int(level),
                Value::str(kind),
                name.map(Value::str).unwrap_or(Value::Null),
                value.map(Value::str).unwrap_or(Value::Null),
                value
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(Value::Dec)
                    .unwrap_or(Value::Null),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db.create_index(IndexDef {
            name: "nkspl".into(),
            table: "doc".into(),
            key_columns: vec![
                "name".into(),
                "kind".into(),
                "size".into(),
                "pre".into(),
                "level".into(),
            ],
            include_columns: vec![],
            clustered: false,
        });
        db.create_index(IndexDef {
            name: "p".into(),
            table: "doc".into(),
            key_columns: vec!["pre".into()],
            include_columns: vec![],
            clustered: true,
        });
        db
    }

    const Q1_LIKE: &str = "SELECT DISTINCT d2.* \
        FROM doc AS d1, doc AS d2, doc AS d3 \
        WHERE d1.kind = 'DOC' AND d1.name = 'a.xml' \
          AND d2.kind = 'ELEM' AND d2.name = 'open_auction' \
          AND d2.pre > d1.pre AND d2.pre <= d1.pre + d1.size \
          AND d3.kind = 'ELEM' AND d3.name = 'bidder' \
          AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
          AND d2.level + 1 = d3.level \
        ORDER BY d2.pre";

    #[test]
    fn executes_q1_join_graph() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        // Both open_auction elements (pre 2 and 5) have a bidder child.
        assert_eq!(result.len(), 2);
        let pre_idx = result.schema().expect_index("pre");
        assert_eq!(result.rows()[0][pre_idx], Value::Int(2));
        assert_eq!(result.rows()[1][pre_idx], Value::Int(5));
    }

    #[test]
    fn distinct_removes_duplicate_result_rows() {
        let db = db();
        // Without the level predicate, descendants at any depth qualify; the
        // DISTINCT on d2.* must still deliver each open_auction once.
        let sql = Q1_LIKE.replace(" AND d2.level + 1 = d3.level ", " ");
        let q = parse_sql(&sql).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn order_by_descending_document_order_not_supported_but_asc_enforced() {
        let db = db();
        let q =
            parse_sql("SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'ELEM' ORDER BY d1.pre")
                .unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        let pres: Vec<i64> = result
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let mut sorted = pres.clone();
        sorted.sort();
        assert_eq!(pres, sorted);
        assert_eq!(result.schema().columns(), &["p".to_string()]);
    }

    #[test]
    fn run_sql_end_to_end() {
        let db = db();
        let t = run_sql(
            "SELECT d1.* FROM doc AS d1 WHERE d1.name = 'bidder' ORDER BY d1.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn exec_stats_count_probes_and_rows() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (_, stats) = execute_with_stats(&plan, &db);
        assert!(stats.probes > 0);
        assert!(stats.index_rows + stats.scan_rows > 0);
    }

    #[test]
    fn per_operator_stats_cover_the_whole_tree() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (result, stats) = execute_with_stats(&plan, &db);
        // One leaf + two joins + the sort tail.
        assert_eq!(stats.operators.len(), 4);
        let tail = stats
            .operators
            .iter()
            .find(|o| o.name.starts_with("SORT"))
            .expect("sort tail reports stats");
        assert_eq!(tail.rows_out, result.len());
        assert!(tail.rows_in >= tail.rows_out);
        let joins = stats
            .operators
            .iter()
            .filter(|o| o.name.starts_with("NLJOIN") || o.name.starts_with("HSJOIN"))
            .count();
        assert_eq!(joins, 2);
        for op in &stats.operators {
            assert!(op.rows_out == 0 || op.batches > 0, "{}", op.name);
        }
    }

    #[test]
    fn pipelined_executor_matches_materializing_baseline() {
        let db = db();
        for sql in [
            Q1_LIKE.to_string(),
            Q1_LIKE.replace(" AND d2.level + 1 = d3.level ", " "),
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'ELEM' ORDER BY d1.pre".to_string(),
            "SELECT d2.pre AS a, d3.pre AS b FROM doc AS d2, doc AS d3 \
             WHERE d2.name = 'open_auction' AND d3.name = 'bidder' \
               AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
             ORDER BY d2.pre, d3.pre"
                .to_string(),
        ] {
            let q = parse_sql(&sql).unwrap();
            let plan = optimize(&q, &db).unwrap();
            let (pipelined, pstats) = execute_with_stats(&plan, &db);
            let (materialized, mstats) = execute_materialized_with_stats(&plan, &db);
            assert_eq!(pipelined, materialized, "{sql}");
            // Aggregate work accounting agrees between the two executors.
            assert_eq!(pstats.index_rows, mstats.index_rows, "{sql}");
            assert_eq!(pstats.scan_rows, mstats.scan_rows, "{sql}");
            assert_eq!(pstats.probes, mstats.probes, "{sql}");
            assert_eq!(pstats.bindings, mstats.bindings, "{sql}");
        }
    }

    #[test]
    fn dop_and_morsel_size_do_not_change_results_or_actuals() {
        let db = db();
        let reference = ExecConfig::sequential();
        for sql in [
            Q1_LIKE.to_string(),
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'ELEM' ORDER BY d1.pre".to_string(),
        ] {
            let q = parse_sql(&sql).unwrap();
            let plan = optimize(&q, &db).unwrap();
            let (t_ref, s_ref) = execute_with_stats_config(&plan, &db, &reference);
            for threads in [1, 2, 4] {
                // Tiny morsels force multi-morsel merging even on this
                // 9-row fixture.
                for morsel_size in [1, 3, xqjg_store::DEFAULT_MORSEL_SIZE] {
                    let cfg = ExecConfig::sequential()
                        .with_threads(threads)
                        .with_morsel_size(morsel_size);
                    let (t, s) = execute_with_stats_config(&plan, &db, &cfg);
                    assert_eq!(t, t_ref, "rows differ: {sql} DOP={threads}");
                    assert_eq!(
                        s, s_ref,
                        "stats differ: {sql} DOP={threads} morsel={morsel_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_capacity_sweeps_change_only_batch_counts() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (t_ref, s_ref) = execute_with_stats_config(&plan, &db, &ExecConfig::sequential());
        for cap in [1, 2, 7] {
            let cfg = ExecConfig::sequential().with_batch_capacity(cap);
            let (t, s) = execute_with_stats_config(&plan, &db, &cfg);
            assert_eq!(t, t_ref, "rows differ at batch capacity {cap}");
            assert_eq!(s.index_rows, s_ref.index_rows);
            assert_eq!(s.probes, s_ref.probes);
            assert_eq!(s.bindings, s_ref.bindings);
            for (a, b) in s.operators.iter().zip(&s_ref.operators) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.rows_out, b.rows_out);
                assert_eq!(a.batches, a.rows_out.div_ceil(cap), "{}", a.name);
            }
        }
    }

    #[test]
    fn value_predicates_via_index_or_scan() {
        let db = db();
        let t = run_sql(
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.name = 'initial' AND d1.data >= 10 ORDER BY d1.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(6));
    }

    #[test]
    fn select_expressions_and_multiple_order_keys() {
        let db = db();
        let t = run_sql(
            "SELECT d2.pre AS a, d3.pre AS b FROM doc AS d2, doc AS d3 \
             WHERE d2.name = 'open_auction' AND d3.name = 'bidder' \
               AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
             ORDER BY d2.pre, d3.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().columns(), &["a".to_string(), "b".to_string()]);
    }

    /// A value self-equijoin with no supporting index: the per-probe
    /// alternative is a full scan, so the optimizer picks a hash join.
    const HASH_LIKE: &str = "SELECT d1.pre AS a, d2.pre AS b \
        FROM doc AS d1, doc AS d2 \
        WHERE d1.kind = 'ELEM' AND d1.value = d2.value \
        ORDER BY d1.pre, d2.pre";

    #[test]
    fn build_cache_memoizes_hash_join_builds_and_invalidates_on_ddl() {
        let mut db = db();
        let q = parse_sql(HASH_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        fn has_hash(n: &crate::physical::JoinNode) -> bool {
            match n {
                crate::physical::JoinNode::Leaf { .. } => false,
                crate::physical::JoinNode::Join { outer, method, .. } => {
                    *method == crate::physical::JoinMethod::Hash || has_hash(outer)
                }
            }
        }
        assert!(
            has_hash(&plan.root),
            "fixture plan must contain a hash join"
        );
        let cache = BuildCache::new();
        let cfg = ExecConfig::sequential();
        let (t1, s1, _) = execute_full(&plan, &db, &cfg, Some(&cache));
        assert_eq!(cache.hits(), 0);
        assert!(cache.lookups() > 0);
        assert!(!cache.is_empty());
        let (t2, s2, _) = execute_full(&plan, &db, &cfg, Some(&cache));
        assert_eq!(t1, t2, "cached build must not change results");
        assert!(cache.hits() > 0, "second run hits the cache");
        // The hit is visible in the per-operator actuals, and the skipped
        // build fetch is honestly absent from the aggregate counters.
        assert!(s2.operators.iter().any(|o| o.cache_hits > 0));
        assert!(s1.operators.iter().all(|o| o.cache_hits == 0));
        assert!(s2.index_rows + s2.scan_rows <= s1.index_rows + s1.scan_rows);
        // DDL invalidates: the next lookup rebuilds instead of hitting.
        let hits = cache.hits();
        db.create_index(xqjg_store::IndexDef {
            name: "fresh".into(),
            table: "doc".into(),
            key_columns: vec!["level".into()],
            include_columns: vec![],
            clustered: false,
        });
        let plan2 = optimize(&parse_sql(HASH_LIKE).unwrap(), &db).unwrap();
        let (t3, _, _) = execute_full(&plan2, &db, &cfg, Some(&cache));
        assert_eq!(t1, t3);
        assert_eq!(cache.hits(), hits, "catalog change drops cached builds");
    }

    #[test]
    fn build_cache_byte_bound_evicts_instead_of_growing() {
        // Regression: the session build cache used to grow without bound.
        // 64 synthetic builds at ~4 KiB each cannot all stay resident in a
        // 64 KiB cache (8 KiB per stripe); the bound must evict, not grow.
        let cache = BuildCache::with_capacity(64 * 1024);
        for i in 0..64 {
            let (_, hit) = cache
                .get_or_build(format!("build-{i}"), 1, || {
                    Ok(JoinBuild {
                        key_cols: vec![],
                        backend: BuildBackend::Mem(HashMap::new()),
                        build_rows: 0,
                        fetched_scan: 0,
                        fetched_index: 0,
                        spill_runs: 0,
                        spill_bytes: 0,
                        partitions: 0,
                        retries: 0,
                        reserved: 4096,
                    })
                })
                .unwrap();
            assert!(!hit, "distinct keys never hit");
        }
        assert!(cache.evictions() > 0, "byte bound must evict");
        assert!(cache.len() < 64, "cache must not hold every build");
        assert!(cache.bytes() <= 64 * 1024, "resident bytes respect the cap");
    }

    #[test]
    fn postings_cache_preserves_results_and_actuals_and_hits_on_repeats() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let pc = xqjg_store::PostingsCache::new();
        let caches = ExecCaches {
            builds: None,
            postings: Some(&pc),
        };
        for cfg in [
            ExecConfig::sequential(),
            ExecConfig::sequential().with_vectorize(false),
            ExecConfig::sequential().with_threads(4),
        ] {
            let (t0, s0, _) =
                try_execute_with_caches(&plan, &db, &cfg, ExecCaches::default(), None).unwrap();
            let (t1, s1, _) = try_execute_with_caches(&plan, &db, &cfg, caches, None).unwrap();
            let (t2, s2, _) = try_execute_with_caches(&plan, &db, &cfg, caches, None).unwrap();
            assert_eq!(t0, t1, "cold cached run matches uncached");
            assert_eq!(t1, t2, "warm run matches cold");
            assert_eq!(s0, s1, "actuals identical with the cache cold");
            assert_eq!(s1, s2, "actuals identical hit or miss");
        }
        assert!(pc.hits() > 0, "repeated probes hit the postings cache");
        assert!(pc.lookups() > pc.hits(), "cold lookups missed first");
    }

    #[test]
    fn postings_knob_off_bypasses_a_supplied_cache() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let pc = xqjg_store::PostingsCache::new();
        let caches = ExecCaches {
            builds: None,
            postings: Some(&pc),
        };
        let cfg = ExecConfig::sequential().with_postings_cache(false);
        let (t1, _, _) = try_execute_with_caches(&plan, &db, &cfg, caches, None).unwrap();
        let (t2, _, _) = try_execute_with_caches(&plan, &db, &cfg, caches, None).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(pc.lookups(), 0, "disabled cache is never consulted");
        assert!(pc.is_empty());
    }

    /// A copy of `s` with every operator's `kernel_rows` zeroed: the only
    /// actual allowed to differ between the scalar and vectorized paths
    /// (kernel engagement reports which representation ran, not what the
    /// operators computed).
    fn sans_kernels(s: &ExecStats) -> ExecStats {
        let mut s = s.clone();
        for op in &mut s.operators {
            op.kernel_rows = 0;
        }
        s
    }

    #[test]
    fn scalar_and_vectorized_paths_agree_on_results_and_counters() {
        let db = db();
        for sql in [
            Q1_LIKE.to_string(),
            Q1_LIKE.replace(" AND d2.level + 1 = d3.level ", " "),
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'ELEM' ORDER BY d1.pre".to_string(),
        ] {
            let q = parse_sql(&sql).unwrap();
            let plan = optimize(&q, &db).unwrap();
            let vec_cfg = ExecConfig::sequential().with_vectorize(true);
            let row_cfg = ExecConfig::sequential().with_vectorize(false);
            let (tv, sv) = execute_with_stats_config(&plan, &db, &vec_cfg);
            let (tr, sr) = execute_with_stats_config(&plan, &db, &row_cfg);
            assert_eq!(tv, tr, "{sql}");
            assert_eq!(
                sans_kernels(&sv),
                sans_kernels(&sr),
                "{sql}: per-operator actuals must match modulo kernel engagement"
            );
        }
    }

    #[test]
    fn adaptive_leaf_grows_chunks_for_selective_filters_without_changing_results() {
        let db = db();
        let q =
            parse_sql("SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'TEXT' ORDER BY d1.pre")
                .unwrap();
        let plan = optimize(&q, &db).unwrap();
        let base_cfg = ExecConfig::sequential().with_batch_capacity(2);
        let (t_adaptive, _, trace) =
            execute_full(&plan, &db, &base_cfg.clone().with_adaptive(true), None);
        let (t_fixed, _, fixed_trace) =
            execute_full(&plan, &db, &base_cfg.with_adaptive(false), None);
        assert_eq!(t_adaptive, t_fixed);
        // The fixed policy records no trace; the adaptive one records its
        // chunk decisions whenever the leaf observed at least one chunk.
        assert!(fixed_trace.leaves.is_empty());
        for (name, chunks) in &trace.leaves {
            assert!(!name.is_empty());
            for &c in chunks {
                assert!((2..=2 * xqjg_store::MAX_ADAPTIVE_GROWTH).contains(&c));
            }
        }
    }

    /// A database with enough rows that a few-KB budget forces both the
    /// SORT tail and a hash-join build side to spill.
    fn big_db(rows: i64) -> Database {
        let mut t = Table::new(Schema::new(["pre", "grp", "payload"]));
        for i in 0..rows {
            t.push(vec![
                Value::Int(i),
                Value::Int(i % 97),
                Value::str(format!("row-{i:06}")),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db
    }

    /// A value self-equijoin with no supporting index: the optimizer picks
    /// a hash join, and `ORDER BY` keeps the SORT tail honest.
    const SPILL_SQL: &str = "SELECT d1.pre AS a, d2.pre AS b \
        FROM doc AS d1, doc AS d2 \
        WHERE d1.grp = d2.grp AND d1.pre <= 200 \
        ORDER BY d1.pre, d2.pre";

    #[test]
    fn tight_budget_spills_sort_and_hash_join_without_changing_results() {
        let db = big_db(2000);
        let q = parse_sql(SPILL_SQL).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let unlimited = ExecConfig::sequential().with_mem_budget(None);
        let (t_ref, s_ref) = execute_with_stats_config(&plan, &db, &unlimited);
        assert!(t_ref.len() > 1000, "fixture large enough to pressure 16K");

        let tight = ExecConfig::sequential().with_mem_budget(Some(16 * 1024));
        let (t, s) = execute_with_stats_config(&plan, &db, &tight);
        assert_eq!(t, t_ref, "spilled execution must return identical rows");

        // Actuals agree modulo the spill counters…
        let sans: Vec<OpStats> = s.operators.iter().map(OpStats::sans_spill).collect();
        let sans_ref: Vec<OpStats> = s_ref.operators.iter().map(OpStats::sans_spill).collect();
        assert_eq!(sans, sans_ref);
        // …and the unlimited run never spilled while the tight run spilled
        // on both pipeline breakers.
        assert!(s_ref.operators.iter().all(|o| o.spill_runs == 0));
        let hsjoin = s
            .operators
            .iter()
            .find(|o| o.name.starts_with("HSJOIN"))
            .expect("plan contains a hash join");
        assert!(hsjoin.spill_runs > 0, "build side spilled");
        assert!(hsjoin.spill_bytes > 0);
        assert!(hsjoin.partitions > 0, "Grace partitions reported");
        let sort = s
            .operators
            .iter()
            .find(|o| o.name.starts_with("SORT"))
            .expect("plan has a sort tail");
        assert!(sort.spill_runs > 0, "sort tail spilled runs");
        assert!(sort.spill_bytes > 0);
    }

    #[test]
    fn spilled_executions_agree_across_dop_vectorize_and_budgets() {
        let db = big_db(1200);
        let q = parse_sql(SPILL_SQL).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (t_ref, s_ref) =
            execute_with_stats_config(&plan, &db, &ExecConfig::sequential().with_mem_budget(None));
        for budget in [Some(8 * 1024), Some(64 * 1024), None] {
            for threads in [1, 4] {
                for vectorize in [true, false] {
                    let cfg = ExecConfig::sequential()
                        .with_mem_budget(budget)
                        .with_threads(threads)
                        .with_morsel_size(64)
                        .with_vectorize(vectorize);
                    let (t, s) = execute_with_stats_config(&plan, &db, &cfg);
                    assert_eq!(t, t_ref, "budget {budget:?} DOP {threads} vec {vectorize}");
                    let sans: Vec<OpStats> = s.operators.iter().map(OpStats::sans_spill).collect();
                    let sans_ref: Vec<OpStats> =
                        s_ref.operators.iter().map(OpStats::sans_spill).collect();
                    assert_eq!(sans, sans_ref, "actuals modulo spill drifted");
                }
            }
        }
    }

    #[test]
    fn spill_counters_identical_across_dop_at_fixed_budget() {
        let db = big_db(1500);
        let q = parse_sql(SPILL_SQL).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let budget = Some(16 * 1024);
        let mut references: Vec<(Table, ExecStats)> = Vec::new();
        for vectorize in [true, false] {
            let reference = execute_with_stats_config(
                &plan,
                &db,
                &ExecConfig::sequential()
                    .with_mem_budget(budget)
                    .with_vectorize(vectorize),
            );
            assert!(
                reference.1.operators.iter().any(|o| o.spill_runs > 0),
                "fixture must spill"
            );
            for threads in [2, 4] {
                let cfg = ExecConfig::sequential()
                    .with_mem_budget(budget)
                    .with_threads(threads)
                    .with_morsel_size(32)
                    .with_vectorize(vectorize);
                let got = execute_with_stats_config(&plan, &db, &cfg);
                assert_eq!(got.0, reference.0);
                assert_eq!(
                    got.1, reference.1,
                    "full actuals (spill counters included) must be DOP-invariant"
                );
            }
            references.push(reference);
        }
        // Across the two operator repertoires only the kernel-engagement
        // counters may differ — spill counters included, everything else
        // is path-invariant.
        assert_eq!(references[0].0, references[1].0);
        assert_eq!(
            sans_kernels(&references[0].1),
            sans_kernels(&references[1].1),
            "vectorize may only change kernel engagement"
        );
    }

    #[test]
    fn typed_kernels_toggle_changes_only_kernel_engagement() {
        let db = big_db(1500);
        let q = parse_sql(SPILL_SQL).unwrap();
        let plan = optimize(&q, &db).unwrap();
        for budget in [None, Some(16 * 1024)] {
            let base = ExecConfig::sequential()
                .with_vectorize(true)
                .with_mem_budget(budget);
            let (t_on, s_on) =
                execute_with_stats_config(&plan, &db, &base.clone().with_typed_kernels(true));
            let (t_off, s_off) =
                execute_with_stats_config(&plan, &db, &base.with_typed_kernels(false));
            assert_eq!(t_on, t_off, "budget {budget:?}");
            // No DISTINCT in the plan: even the spill counters must agree —
            // the kernels change the representation, not the row stream the
            // pipeline breakers see.
            assert_eq!(
                sans_kernels(&s_on),
                sans_kernels(&s_off),
                "budget {budget:?}: toggle must be invisible modulo kernel_rows"
            );
            // With kernels on, the leaf predicate (`pre <= 200` over an
            // all-i64 column) and the hash-join key pass both engage.
            let leaf = &s_on.operators[0];
            assert!(leaf.kernel_rows > 0, "leaf kernel engaged");
            let hsjoin = s_on
                .operators
                .iter()
                .find(|o| o.name.starts_with("HSJOIN"))
                .unwrap();
            assert!(hsjoin.kernel_rows > 0, "join key kernel engaged");
            assert!(s_off.operators.iter().all(|o| o.kernel_rows == 0));
        }
    }

    #[test]
    fn dictionary_predicates_run_on_the_code_kernel() {
        let db = big_db(300);
        // `payload` is an all-string column, so its dictionary image is
        // live; sweep every comparison shape including absent literals.
        for (pred, engaged) in [
            ("d1.payload = 'row-000123'", true),
            ("d1.payload = 'absent'", true),
            ("d1.payload <> 'row-000123'", true),
            ("d1.payload < 'row-000100'", true),
            ("d1.payload <= 'row-0000995'", true),
            ("d1.payload > 'row-000200'", true),
            ("d1.payload >= 'row-000200'", true),
            ("'row-000100' <= d1.payload", true),
            // Mixed-type comparison stays on the scalar path.
            ("d1.payload > 7", false),
        ] {
            let sql = format!("SELECT d1.pre AS p FROM doc AS d1 WHERE {pred} ORDER BY d1.pre");
            let q = parse_sql(&sql).unwrap();
            let plan = optimize(&q, &db).unwrap();
            let (t_on, s_on) = execute_with_stats_config(
                &plan,
                &db,
                &ExecConfig::sequential()
                    .with_vectorize(true)
                    .with_typed_kernels(true),
            );
            let (t_off, _) = execute_with_stats_config(
                &plan,
                &db,
                &ExecConfig::sequential()
                    .with_vectorize(true)
                    .with_typed_kernels(false),
            );
            assert_eq!(t_on, t_off, "{pred}");
            let leaf = &s_on.operators[0];
            assert_eq!(leaf.kernel_rows > 0, engaged, "{pred}");
        }
    }

    #[test]
    fn nljoin_residual_and_access_terms_run_on_the_fused_kernel() {
        // Q1's inner probes carry `col ⋈ outer-expr` terms (`d2.pre > d1.pre`,
        // `d2.pre <= d1.pre + d1.size`, `d2.level + 1 = d3.level`): the fused
        // pass re-evaluates each right-hand side per probe and runs one
        // multi-term mask over the fetched rids, so the NLJOINs now report
        // kernel engagement instead of `kernel_rows: 0`.
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let base = ExecConfig::sequential().with_vectorize(true);
        let (t_on, s_on) =
            execute_with_stats_config(&plan, &db, &base.clone().with_typed_kernels(true));
        let (t_off, s_off) = execute_with_stats_config(&plan, &db, &base.with_typed_kernels(false));
        assert_eq!(t_on, t_off);
        assert_eq!(sans_kernels(&s_on), sans_kernels(&s_off));
        let nljoins: Vec<&OpStats> = s_on
            .operators
            .iter()
            .filter(|o| o.name.starts_with("NLJOIN"))
            .collect();
        assert!(!nljoins.is_empty(), "fixture plan nests at least one loop");
        assert!(
            nljoins.iter().any(|o| o.kernel_rows > 0),
            "probe terms engage the fused kernel: {nljoins:?}"
        );
    }

    /// Rows with NULLs sprinkled through an `i64` column (`grp`) and a
    /// dictionary column (`tag`): every typed image is masked, so this
    /// fixture exercises the NULL-aware kernels end-to-end.
    fn null_db(rows: i64) -> Database {
        let mut t = Table::new(Schema::new(["pre", "grp", "tag", "payload"]));
        for i in 0..rows {
            let grp = if i % 11 == 3 {
                Value::Null
            } else {
                Value::Int(i % 23)
            };
            let tag = if i % 13 == 7 {
                Value::Null
            } else {
                Value::str(format!("t{}", i % 5))
            };
            t.push(vec![
                Value::Int(i),
                grp,
                tag,
                Value::str(format!("row-{i:05}")),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db
    }

    #[test]
    fn null_bearing_leaf_predicates_engage_masked_kernels() {
        let db = null_db(400);
        // Every comparison shape over the NULL-bearing int and dictionary
        // columns: the masked kernels must agree with the scalar
        // interpreter, and NULL never satisfies a predicate — not even `<>`.
        for pred in [
            "d1.grp = 5",
            "d1.grp <> 3",
            "d1.grp >= 15",
            "d1.grp < 4",
            "d1.tag = 't3'",
            "d1.tag <> 't3'",
            "d1.tag <> 'absent'",
            "d1.tag >= 't2'",
        ] {
            let sql = format!("SELECT d1.pre AS p FROM doc AS d1 WHERE {pred} ORDER BY d1.pre");
            let q = parse_sql(&sql).unwrap();
            let plan = optimize(&q, &db).unwrap();
            let base = ExecConfig::sequential().with_vectorize(true);
            let (t_on, s_on) =
                execute_with_stats_config(&plan, &db, &base.clone().with_typed_kernels(true));
            let (t_off, _) = execute_with_stats_config(&plan, &db, &base.with_typed_kernels(false));
            assert_eq!(t_on, t_off, "{pred}");
            assert!(s_on.operators[0].kernel_rows > 0, "{pred}: kernel engaged");
            // NULL rows never qualify: `pre % 11 == 3` rows have NULL grp,
            // `pre % 13 == 7` rows have NULL tag.
            let (m, r) = if pred.contains("grp") {
                (11, 3)
            } else {
                (13, 7)
            };
            assert!(
                t_on.rows()
                    .iter()
                    .all(|row| row[0].as_i64().unwrap() % m != r),
                "{pred}: NULL must not match"
            );
        }
    }

    /// A composite-key value equijoin (`i64` + dictionary key, both
    /// NULL-bearing) with no supporting index: the optimizer picks a hash
    /// join whose key image fuses both columns.
    const COMPOSITE_SQL: &str = "SELECT d1.pre AS a, d2.pre AS b \
        FROM doc AS d1, doc AS d2 \
        WHERE d1.grp = d2.grp AND d1.tag = d2.tag AND d1.pre <= 150 \
        ORDER BY d1.pre, d2.pre";

    #[test]
    fn composite_null_keys_hash_join_matches_the_row_path_even_when_spilled() {
        let db = null_db(800);
        let q = parse_sql(COMPOSITE_SQL).unwrap();
        let plan = optimize(&q, &db).unwrap();
        // Oracle: the scalar row-at-a-time path under an unlimited budget.
        let (t_ref, s_ref) =
            execute_with_stats_config(&plan, &db, &ExecConfig::sequential().with_vectorize(false));
        assert!(
            s_ref.operators.iter().any(|o| o.name.starts_with("HSJOIN")),
            "fixture plan must contain a hash join"
        );
        // NULL keys never join (no NULL = NULL matches).
        assert!(t_ref
            .rows()
            .iter()
            .all(|r| r[0].as_i64().unwrap() % 11 != 3 && r[0].as_i64().unwrap() % 13 != 7));
        let mut spilled = false;
        for budget in [None, Some(8 * 1024)] {
            for typed in [true, false] {
                let cfg = ExecConfig::sequential()
                    .with_vectorize(true)
                    .with_typed_kernels(typed)
                    .with_mem_budget(budget);
                let (t, s) = execute_with_stats_config(&plan, &db, &cfg);
                assert_eq!(t, t_ref, "budget {budget:?} typed {typed}");
                let sans: Vec<OpStats> = sans_kernels(&s)
                    .operators
                    .iter()
                    .map(OpStats::sans_spill)
                    .collect();
                let sans_ref: Vec<OpStats> = sans_kernels(&s_ref)
                    .operators
                    .iter()
                    .map(OpStats::sans_spill)
                    .collect();
                assert_eq!(sans, sans_ref, "budget {budget:?} typed {typed}");
                let hsjoin = s
                    .operators
                    .iter()
                    .find(|o| o.name.starts_with("HSJOIN"))
                    .unwrap();
                // The fused gather+hash pass engages exactly when the typed
                // kernels are on — NULL-bearing keys included — and its
                // hashes route the spilled legs through the same Grace
                // partitions as the `Value` hash chain.
                assert_eq!(hsjoin.kernel_rows > 0, typed, "budget {budget:?}");
                spilled |= hsjoin.partitions > 0;
            }
        }
        assert!(spilled, "the tiny budget must exercise the spilled leg");
    }

    #[test]
    fn sort_based_distinct_matches_the_dedup_set_exactly() {
        let db = big_db(2000);
        let sql = "SELECT DISTINCT d1.grp AS g FROM doc AS d1 ORDER BY d1.grp";
        let q = parse_sql(sql).unwrap();
        let plan = optimize(&q, &db).unwrap();
        assert!(plan.distinct);
        let unlimited = ExecConfig::sequential().with_mem_budget(None);
        let (t_ref, s_ref) = execute_with_stats_config(&plan, &db, &unlimited);
        assert_eq!(t_ref.len(), 97);
        for budget in [Some(4 * 1024), Some(64 * 1024)] {
            let base = ExecConfig::sequential().with_mem_budget(budget);
            // Typed kernels + limited budget engage the two-pass sort
            // DISTINCT; kernels off keeps the classical dedup set.
            let (t_sort, s_sort) =
                execute_with_stats_config(&plan, &db, &base.clone().with_typed_kernels(true));
            let (t_hash, s_hash) =
                execute_with_stats_config(&plan, &db, &base.with_typed_kernels(false));
            assert_eq!(t_sort, t_ref, "budget {budget:?}");
            assert_eq!(t_hash, t_ref, "budget {budget:?}");
            let sans_sort: Vec<OpStats> =
                s_sort.operators.iter().map(OpStats::sans_spill).collect();
            let sans_hash: Vec<OpStats> =
                s_hash.operators.iter().map(OpStats::sans_spill).collect();
            let sans_ref: Vec<OpStats> = s_ref.operators.iter().map(OpStats::sans_spill).collect();
            assert_eq!(sans_sort, sans_ref);
            assert_eq!(sans_hash, sans_ref);
        }
        // Under real pressure the sort DISTINCT spills where the dedup set
        // could only overshoot its forced reservation.
        let tight = ExecConfig::sequential()
            .with_mem_budget(Some(4 * 1024))
            .with_typed_kernels(true);
        let (_, s) = execute_with_stats_config(&plan, &db, &tight);
        let tail = s.operators.last().unwrap();
        assert_eq!(tail.name, "SORT(distinct)");
        assert!(tail.spill_runs > 0, "distinct tail spilled");
    }

    #[test]
    fn cached_build_sides_charge_the_executing_budget() {
        let db = big_db(900);
        let q = parse_sql(SPILL_SQL).unwrap();
        let plan = optimize(&q, &db).unwrap();
        // A budget wide enough that the build side stays in memory (and so
        // cacheable) but tight enough that the SORT tail spills: the spill
        // pattern then depends on how much of the budget the build
        // occupies — which must be identical whether the build was made
        // fresh or fetched from the session cache.
        let budget = Some(256 * 1024);
        let cache = BuildCache::new();
        let cfg = ExecConfig::sequential().with_mem_budget(budget);
        let (t1, s1, _) = execute_full(&plan, &db, &cfg, Some(&cache));
        assert_eq!(cache.hits(), 0);
        let (t2, s2, _) = execute_full(&plan, &db, &cfg, Some(&cache));
        assert!(cache.hits() > 0, "second run hits the cache");
        assert_eq!(t1, t2);
        let sort1 = s1.operators.last().unwrap();
        let sort2 = s2.operators.last().unwrap();
        assert!(sort1.spill_runs > 0, "fixture pressures the sort tail");
        assert_eq!(
            (sort1.spill_runs, sort1.spill_bytes),
            (sort2.spill_runs, sort2.spill_bytes),
            "a cache hit must occupy the budget exactly like a fresh build"
        );
    }

    #[test]
    fn spilled_builds_are_not_cached() {
        let db = big_db(2000);
        let q = parse_sql(SPILL_SQL).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let cache = BuildCache::new();
        let tight = ExecConfig::sequential().with_mem_budget(Some(16 * 1024));
        let (t1, s1, _) = execute_full(&plan, &db, &tight, Some(&cache));
        assert!(
            s1.operators.iter().any(|o| o.partitions > 0),
            "build must spill under the tight budget"
        );
        assert!(cache.lookups() > 0);
        assert!(
            cache.is_empty(),
            "a spilled build must not be memoized in the session cache"
        );
        let (t2, s2, _) = execute_full(&plan, &db, &tight, Some(&cache));
        assert_eq!(t1, t2);
        assert_eq!(cache.hits(), 0, "second run rebuilds, it cannot hit");
        assert!(s2.operators.iter().all(|o| o.cache_hits == 0));
        // The same query under an unlimited budget is cached as before.
        let unlimited = ExecConfig::sequential().with_mem_budget(None);
        let (_, _, _) = execute_full(&plan, &db, &unlimited, Some(&cache));
        assert!(!cache.is_empty());
        let (_, s4, _) = execute_full(&plan, &db, &unlimited, Some(&cache));
        assert!(s4.operators.iter().any(|o| o.cache_hits > 0));
    }

    #[test]
    fn exec_stats_merge_folds_counters() {
        let mut a = ExecStats {
            index_rows: 1,
            scan_rows: 2,
            probes: 3,
            bindings: 4,
            operators: vec![OpStats::named("IXSCAN(d1)")],
        };
        let b = ExecStats {
            index_rows: 10,
            scan_rows: 20,
            probes: 30,
            bindings: 40,
            operators: vec![OpStats::named("SORT")],
        };
        a.merge(&b);
        assert_eq!(a.index_rows, 11);
        assert_eq!(a.scan_rows, 22);
        assert_eq!(a.probes, 33);
        assert_eq!(a.bindings, 44);
        assert_eq!(a.operators.len(), 2);
    }
}
