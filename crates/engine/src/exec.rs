//! Execution of physical plans.
//!
//! The executor implements the operator repertoire of Table VII: index and
//! table scans, index nested-loop joins (the inner access path is re-probed
//! for every outer row, with probe bounds computed from the outer columns),
//! hash joins, and the plan tail (duplicate-eliminating SORT + RETURN).

use crate::physical::{Access, Bounds, JoinNode, PhysPlan};
use crate::sql::{SelectItem, SqlCmp, SqlExpr, SqlPredicate};
use std::collections::HashMap;
use std::ops::Bound;
use xqjg_store::{Database, Schema, Table, Value};

/// Counters describing the work a query execution performed — used by the
/// benchmark harness to explain *why* one plan beats another.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Rows produced by index scans.
    pub index_rows: usize,
    /// Rows produced by table scans.
    pub scan_rows: usize,
    /// Index probes performed (NLJOIN inner lookups).
    pub probes: usize,
    /// Bindings (partial join results) materialized.
    pub bindings: usize,
}

/// Execute a physical plan, returning the result table.
pub fn execute(plan: &PhysPlan, db: &Database) -> Table {
    execute_with_stats(plan, db).0
}

/// Execute a physical plan, returning the result table and work counters.
pub fn execute_with_stats(plan: &PhysPlan, db: &Database) -> (Table, ExecStats) {
    let mut stats = ExecStats::default();
    let (aliases, bindings) = exec_node(&plan.root, db, &mut stats);
    stats.bindings += bindings.len();

    let env_tables: Vec<&Table> = aliases
        .iter()
        .map(|a| alias_table(&plan.root, a, db))
        .collect();

    // Evaluate select and order expressions per binding.
    let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(bindings.len());
    for binding in &bindings {
        let env = Env {
            aliases: &aliases,
            tables: &env_tables,
            binding,
        };
        let mut select_vals = Vec::new();
        for item in &plan.select {
            match item {
                SelectItem::Star(alias) => {
                    let (table, rid) = env.lookup(alias);
                    select_vals.extend(table.rows()[rid].iter().cloned());
                }
                SelectItem::Expr { expr, .. } => select_vals.push(env.eval(expr)),
            }
        }
        let order_vals: Vec<Value> = plan
            .order_by
            .iter()
            .map(|c| env.eval(&SqlExpr::Col(c.clone())))
            .collect();
        out_rows.push((select_vals, order_vals));
    }

    // DISTINCT over the select list.
    if plan.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|(sel, _)| seen.insert(sel.clone()));
    }
    // ORDER BY.
    out_rows.sort_by(|a, b| a.1.cmp(&b.1));

    // Output schema.
    let mut columns: Vec<String> = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Star(alias) => {
                let table = alias_table(&plan.root, alias, db);
                columns.extend(table.schema().columns().iter().cloned());
            }
            SelectItem::Expr { alias, .. } => columns.push(alias.clone()),
        }
    }
    let mut table = Table::new(Schema::new(columns));
    for (sel, _) in out_rows {
        table.push(sel);
    }
    (table, stats)
}

/// Find the base table of an alias used in the join tree.
fn alias_table<'a>(node: &JoinNode, alias: &str, db: &'a Database) -> &'a Table {
    fn table_name<'n>(node: &'n JoinNode, alias: &str) -> Option<&'n str> {
        match node {
            JoinNode::Leaf {
                alias: a, table, ..
            } => (a == alias).then_some(table.as_str()),
            JoinNode::Join {
                outer,
                alias: a,
                table,
                ..
            } => {
                if a == alias {
                    Some(table.as_str())
                } else {
                    table_name(outer, alias)
                }
            }
        }
    }
    let name = table_name(node, alias).unwrap_or_else(|| panic!("alias {alias:?} not in plan"));
    db.table(name).expect("table registered")
}

/// Evaluation environment: one bound row per alias.
struct Env<'a> {
    aliases: &'a [String],
    tables: &'a [&'a Table],
    binding: &'a [usize],
}

impl<'a> Env<'a> {
    fn lookup(&self, alias: &str) -> (&'a Table, usize) {
        let idx = self
            .aliases
            .iter()
            .position(|a| a == alias)
            .unwrap_or_else(|| panic!("alias {alias:?} not bound"));
        (self.tables[idx], self.binding[idx])
    }

    fn eval(&self, expr: &SqlExpr) -> Value {
        match expr {
            SqlExpr::Lit(v) => v.clone(),
            SqlExpr::Col(c) => {
                let (table, rid) = self.lookup(&c.table);
                table.rows()[rid][table.schema().expect_index(&c.column)].clone()
            }
            SqlExpr::Add(a, b) => add(&self.eval(a), &self.eval(b)),
        }
    }
}

fn add(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Value::Dec(x + y),
            _ => Value::Null,
        },
    }
}

/// Evaluate an expression that may reference the current alias's candidate
/// row (`current`) or outer aliases through `outer`.
fn eval_expr(
    expr: &SqlExpr,
    current_alias: &str,
    current: Option<(&Table, usize)>,
    outer: Option<&Env<'_>>,
) -> Value {
    match expr {
        SqlExpr::Lit(v) => v.clone(),
        SqlExpr::Col(c) => {
            if c.table == current_alias {
                let (table, rid) = current.expect("current row required");
                table.rows()[rid][table.schema().expect_index(&c.column)].clone()
            } else {
                outer
                    .expect("outer environment required")
                    .eval(&SqlExpr::Col(c.clone()))
            }
        }
        SqlExpr::Add(a, b) => add(
            &eval_expr(a, current_alias, current, outer),
            &eval_expr(b, current_alias, current, outer),
        ),
    }
}

fn pred_holds(
    pred: &SqlPredicate,
    current_alias: &str,
    current: Option<(&Table, usize)>,
    outer: Option<&Env<'_>>,
) -> bool {
    let l = eval_expr(&pred.lhs, current_alias, current, outer);
    let r = eval_expr(&pred.rhs, current_alias, current, outer);
    match l.sql_cmp(&r) {
        Some(ord) => pred.op.eval(ord),
        None => false,
    }
}

fn exec_node(
    node: &JoinNode,
    db: &Database,
    stats: &mut ExecStats,
) -> (Vec<String>, Vec<Vec<usize>>) {
    match node {
        JoinNode::Leaf {
            alias,
            table,
            access,
            ..
        } => {
            let rows = exec_access(access, alias, table, db, None, stats);
            (
                vec![alias.clone()],
                rows.into_iter().map(|r| vec![r]).collect(),
            )
        }
        JoinNode::Join {
            outer,
            alias,
            table,
            access,
            method: _,
            hash_keys,
            residual,
            ..
        } => {
            let (mut aliases, outer_bindings) = exec_node(outer, db, stats);
            let outer_tables: Vec<&Table> =
                aliases.iter().map(|a| alias_table(outer, a, db)).collect();
            let base = db.table(table).expect("table registered");
            let mut result: Vec<Vec<usize>> = Vec::new();

            if hash_keys.is_empty() {
                // Nested-loop join: probe the access path per outer binding.
                for binding in &outer_bindings {
                    stats.probes += 1;
                    let env = Env {
                        aliases: &aliases,
                        tables: &outer_tables,
                        binding,
                    };
                    let rows = exec_access(access, alias, table, db, Some(&env), stats);
                    for rid in rows {
                        let ok = residual
                            .iter()
                            .all(|p| pred_holds(p, alias, Some((base, rid)), Some(&env)));
                        if ok {
                            let mut b = binding.clone();
                            b.push(rid);
                            result.push(b);
                        }
                    }
                }
            } else {
                // Hash join: enumerate inner rows once, hash on key columns.
                let inner_rows = exec_access(access, alias, table, db, None, stats);
                let key_cols: Vec<usize> = hash_keys
                    .iter()
                    .map(|(_, col)| base.schema().expect_index(col))
                    .collect();
                let mut buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for rid in inner_rows {
                    let key: Vec<Value> = key_cols
                        .iter()
                        .map(|&c| base.rows()[rid][c].clone())
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    buckets.entry(key).or_default().push(rid);
                }
                for binding in &outer_bindings {
                    let env = Env {
                        aliases: &aliases,
                        tables: &outer_tables,
                        binding,
                    };
                    let probe_key: Vec<Value> = hash_keys
                        .iter()
                        .map(|(outer_expr, _)| env.eval(outer_expr))
                        .collect();
                    if probe_key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = buckets.get(&probe_key) {
                        for &rid in matches {
                            let ok = residual
                                .iter()
                                .all(|p| pred_holds(p, alias, Some((base, rid)), Some(&env)));
                            if ok {
                                let mut b = binding.clone();
                                b.push(rid);
                                result.push(b);
                            }
                        }
                    }
                }
            }
            aliases.push(alias.clone());
            stats.bindings += result.len();
            (aliases, result)
        }
    }
}

fn exec_access(
    access: &Access,
    alias: &str,
    table_name: &str,
    db: &Database,
    outer: Option<&Env<'_>>,
    stats: &mut ExecStats,
) -> Vec<usize> {
    let base = db.table(table_name).expect("table registered");
    match access {
        Access::TableScan { preds } => {
            let mut out = Vec::new();
            for rid in 0..base.len() {
                let ok = preds
                    .iter()
                    .all(|p| pred_holds(p, alias, Some((base, rid)), outer));
                if ok {
                    out.push(rid);
                }
            }
            stats.scan_rows += out.len();
            out
        }
        Access::IndexScan {
            index,
            bounds,
            residual,
        } => {
            let ix = db.index(index).expect("index registered");
            let rows = index_range(&ix.tree, bounds, alias, outer);
            stats.index_rows += rows.len();
            rows.into_iter()
                .filter(|&rid| {
                    residual
                        .iter()
                        .all(|p| pred_holds(p, alias, Some((base, rid)), outer))
                })
                .collect()
        }
    }
}

/// Perform the B-tree range scan described by the probe bounds.
fn index_range(
    tree: &xqjg_store::BPlusTree,
    bounds: &Bounds,
    alias: &str,
    outer: Option<&Env<'_>>,
) -> Vec<usize> {
    let eq_vals: Vec<Value> = bounds
        .eq
        .iter()
        .map(|(_, e)| eval_expr(e, alias, None, outer))
        .collect();
    let (lower_key, lower_bound);
    let (upper_key, upper_bound);
    match (&bounds.lower, &bounds.upper) {
        (None, None) => {
            lower_key = eq_vals.clone();
            lower_bound = true;
            upper_key = eq_vals.clone();
            upper_bound = true;
        }
        (lo, hi) => {
            match lo {
                Some((e, inclusive)) => {
                    let mut k = eq_vals.clone();
                    k.push(eval_expr(e, alias, None, outer));
                    lower_key = k;
                    lower_bound = *inclusive;
                }
                None => {
                    lower_key = eq_vals.clone();
                    lower_bound = true;
                }
            }
            match hi {
                Some((e, inclusive)) => {
                    let mut k = eq_vals.clone();
                    k.push(eval_expr(e, alias, None, outer));
                    upper_key = k;
                    upper_bound = *inclusive;
                }
                None => {
                    upper_key = eq_vals.clone();
                    upper_bound = true;
                }
            }
        }
    }
    let lower = if lower_bound {
        Bound::Included(lower_key.as_slice())
    } else {
        Bound::Excluded(lower_key.as_slice())
    };
    let upper = if upper_bound {
        Bound::Included(upper_key.as_slice())
    } else {
        Bound::Excluded(upper_key.as_slice())
    };
    // An empty bound vector means an unbounded side.
    let lower = if lower_key.is_empty() {
        Bound::Unbounded
    } else {
        lower
    };
    let upper = if upper_key.is_empty() {
        Bound::Unbounded
    } else {
        upper
    };
    tree.range(lower, upper)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Convenience: optimize and execute an SQL text against the database.
pub fn run_sql(sql: &str, db: &Database) -> Result<Table, Box<dyn std::error::Error>> {
    let query = crate::sqlparse::parse_sql(sql)?;
    let plan = crate::optimizer::optimize(&query, db)?;
    Ok(execute(&plan, db))
}

/// Check a predicate operator against an ordering (exposed for reuse).
pub fn cmp_eval(op: SqlCmp, ord: std::cmp::Ordering) -> bool {
    op.eval(ord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::sqlparse::parse_sql;
    use xqjg_store::IndexDef;

    /// Small XML-encoding-like database: one document with nested elements.
    fn db() -> Database {
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        type FixtureRow = (
            i64,
            i64,
            i64,
            &'static str,
            Option<&'static str>,
            Option<&'static str>,
        );
        let rows: Vec<FixtureRow> = vec![
            (0, 8, 0, "DOC", Some("a.xml"), None),
            (1, 7, 1, "ELEM", Some("site"), None),
            (2, 2, 2, "ELEM", Some("open_auction"), None),
            (3, 1, 3, "ELEM", Some("bidder"), None),
            (4, 0, 4, "TEXT", None, Some("10")),
            (5, 3, 2, "ELEM", Some("open_auction"), None),
            (6, 0, 3, "ELEM", Some("initial"), Some("15")),
            (7, 1, 3, "ELEM", Some("bidder"), None),
            (8, 0, 4, "TEXT", None, Some("20")),
        ];
        for (pre, size, level, kind, name, value) in rows {
            t.push(vec![
                Value::Int(pre),
                Value::Int(size),
                Value::Int(level),
                Value::str(kind),
                name.map(Value::str).unwrap_or(Value::Null),
                value.map(Value::str).unwrap_or(Value::Null),
                value
                    .and_then(|v| v.parse::<f64>().ok())
                    .map(Value::Dec)
                    .unwrap_or(Value::Null),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db.create_index(IndexDef {
            name: "nkspl".into(),
            table: "doc".into(),
            key_columns: vec![
                "name".into(),
                "kind".into(),
                "size".into(),
                "pre".into(),
                "level".into(),
            ],
            include_columns: vec![],
            clustered: false,
        });
        db.create_index(IndexDef {
            name: "p".into(),
            table: "doc".into(),
            key_columns: vec!["pre".into()],
            include_columns: vec![],
            clustered: true,
        });
        db
    }

    const Q1_LIKE: &str = "SELECT DISTINCT d2.* \
        FROM doc AS d1, doc AS d2, doc AS d3 \
        WHERE d1.kind = 'DOC' AND d1.name = 'a.xml' \
          AND d2.kind = 'ELEM' AND d2.name = 'open_auction' \
          AND d2.pre > d1.pre AND d2.pre <= d1.pre + d1.size \
          AND d3.kind = 'ELEM' AND d3.name = 'bidder' \
          AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
          AND d2.level + 1 = d3.level \
        ORDER BY d2.pre";

    #[test]
    fn executes_q1_join_graph() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        // Both open_auction elements (pre 2 and 5) have a bidder child.
        assert_eq!(result.len(), 2);
        let pre_idx = result.schema().expect_index("pre");
        assert_eq!(result.rows()[0][pre_idx], Value::Int(2));
        assert_eq!(result.rows()[1][pre_idx], Value::Int(5));
    }

    #[test]
    fn distinct_removes_duplicate_result_rows() {
        let db = db();
        // Without the level predicate, descendants at any depth qualify; the
        // DISTINCT on d2.* must still deliver each open_auction once.
        let sql = Q1_LIKE.replace(" AND d2.level + 1 = d3.level ", " ");
        let q = parse_sql(&sql).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn order_by_descending_document_order_not_supported_but_asc_enforced() {
        let db = db();
        let q =
            parse_sql("SELECT d1.pre AS p FROM doc AS d1 WHERE d1.kind = 'ELEM' ORDER BY d1.pre")
                .unwrap();
        let plan = optimize(&q, &db).unwrap();
        let result = execute(&plan, &db);
        let pres: Vec<i64> = result
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let mut sorted = pres.clone();
        sorted.sort();
        assert_eq!(pres, sorted);
        assert_eq!(result.schema().columns(), &["p".to_string()]);
    }

    #[test]
    fn run_sql_end_to_end() {
        let db = db();
        let t = run_sql(
            "SELECT d1.* FROM doc AS d1 WHERE d1.name = 'bidder' ORDER BY d1.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn exec_stats_count_probes_and_rows() {
        let db = db();
        let q = parse_sql(Q1_LIKE).unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (_, stats) = execute_with_stats(&plan, &db);
        assert!(stats.probes > 0);
        assert!(stats.index_rows + stats.scan_rows > 0);
    }

    #[test]
    fn value_predicates_via_index_or_scan() {
        let db = db();
        let t = run_sql(
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.name = 'initial' AND d1.data >= 10 ORDER BY d1.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(6));
    }

    #[test]
    fn select_expressions_and_multiple_order_keys() {
        let db = db();
        let t = run_sql(
            "SELECT d2.pre AS a, d3.pre AS b FROM doc AS d2, doc AS d3 \
             WHERE d2.name = 'open_auction' AND d3.name = 'bidder' \
               AND d3.pre > d2.pre AND d3.pre <= d2.pre + d2.size \
             ORDER BY d2.pre, d3.pre",
            &db,
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().columns(), &["a".to_string(), "b".to_string()]);
    }
}
