//! EXPLAIN rendering of physical plans.
//!
//! The output format mirrors the DB2 visual-explain style plans reproduced
//! in Figures 10 and 11: a `RETURN` root, a duplicate-eliminating `SORT`,
//! and a left-deep chain of `NLJOIN` / `HSJOIN` operators whose inner legs
//! are `IXSCAN`s over the advisor-proposed B-trees (or `TBSCAN`s).
//!
//! [`explain_with_stats`] appends the per-operator *actuals* recorded by
//! the executor.  Besides the raw counters (`rows_in`, `rows_out`,
//! `batches`, `probes`, `build_rows`, `cache_hits`), each line shows the
//! memory-governor counters when the operator went external
//!
//! * `spill_runs` — sorted runs (SORT tail) or partition files (Grace
//!   hash-join build, repartitioning passes included) written to disk
//!   because the `XQJG_MEM_BUDGET` tripped,
//! * `spill_bytes` — bytes written across those runs, and
//! * `partitions` — leaf partitions of a Grace-partitioned build side, and
//! * `retries` — transient spill-write failures the operator survived by
//!   retrying (bounded by `XQJG_SPILL_RETRIES`, default 2); shown only
//!   when a retry actually rescued a write,
//!
//! the typed-kernel engagement counter when a kernel ran
//!
//! * `kernel_rows` — rows the operator pushed through a branch-free
//!   typed-column kernel instead of the scalar `Value` path; `0` when
//!   `XQJG_TYPED_KERNELS=0`, when the operand columns have no typed
//!   image, or when the operator ran row-at-a-time.  Each kernel pass
//!   counts once per (row, term): a leaf or NLJOIN fusing a k-term
//!   conjunction over n fetched rows adds `n·k`, an NLJOIN's static
//!   pre-masked inner list adds its surviving length once per probe, a
//!   hash join's composite gather+hash pass adds one per probe row
//!   (NULL-keyed rows included — the NULL gate is part of the pass), and
//!   the columnar SORT tail adds one per row it key-compared.  Masked
//!   aggregate reductions feeding `TableStats` run outside any operator
//!   and are not counted here,
//!
//! and derives
//!
//! * `sel` — the operator's measured selectivity (`rows_out / rows_in`;
//!   values above 1 mean the operator expands, as joins do), the quantity
//!   the adaptive batch sizer steers on, and
//! * `avg_vec` — the average vector length (`rows_out / batches`), i.e.
//!   how full the batches the operator shipped downstream actually were.
//!
//! The actuals are byte-identical across degrees of parallelism (the
//! spill counters included, because spill decisions are made on the
//! coordinator against the morsel-ordered row stream) and byte-identical
//! modulo `kernel_rows` across the vectorized/scalar executor switch and
//! the `XQJG_TYPED_KERNELS` toggle (the typed parity suite).  Across
//! *budgets* the actuals additionally agree modulo the spill counters
//! (the spill parity suite).
//!
//! [`explain_with_caches`] additionally appends one warm-path cache line
//!
//! * `plan_cache=hit|miss` — whether this plan came out of the plan cache
//!   (skipping DP enumeration) or was freshly optimized; omitted when the
//!   plan cache is off,
//! * `cache_hits=N` — hash-join build sides served from the build cache
//!   (the sum of the per-operator `cache_hits` actuals), and
//! * `postings=H/L` — memoized `IXSCAN` posting-list hits over lookups
//!   *during this execution*.  Unlike every counter above these are
//!   **cache-wide deltas, not per-operator actuals**: at DOP > 1 the
//!   workers race for cold keys, so which probe hits is
//!   scheduling-dependent even though results and every `OpStats` line
//!   stay byte-identical.  Treat `postings=` as telemetry, not as a
//!   parity-checked actual.

use crate::exec::ExecStats;
use crate::physical::{Access, JoinMethod, JoinNode, PhysPlan};

/// Render a plan as an indented operator tree.
pub fn explain(plan: &PhysPlan) -> String {
    let mut out = String::new();
    out.push_str("RETURN\n");
    let order: Vec<String> = plan.order_by.iter().map(|c| c.to_string()).collect();
    let sort_label = match (plan.distinct, order.is_empty()) {
        (true, false) => format!("SORT (distinct, order by {})", order.join(", ")),
        (true, true) => "SORT (distinct)".to_string(),
        (false, false) => format!("SORT (order by {})", order.join(", ")),
        (false, true) => "TBSCAN (temp)".to_string(),
    };
    out.push_str(&format!("  {sort_label}\n"));
    render_join(&plan.root, 2, &mut out);
    out.push_str(&format!(
        "-- estimated cost: {:.1}, estimated rows: {:.1}, join order: {}\n",
        plan.est_cost,
        plan.est_rows,
        plan.join_order().join(" -> ")
    ));
    out
}

/// Render a plan together with the per-operator work counters an execution
/// recorded — the "actuals" column DB2's explain facility prints next to
/// the optimizer's estimates.
pub fn explain_with_stats(plan: &PhysPlan, stats: &ExecStats) -> String {
    let mut out = explain(plan);
    if stats.operators.is_empty() {
        return out;
    }
    out.push_str("-- operator stats (upstream first):\n");
    for op in &stats.operators {
        out.push_str(&format!("--   {}\n", op.render()));
    }
    out
}

/// Warm-path cache telemetry of one execution, rendered by
/// [`explain_with_caches`] (see the module docs for the semantics of each
/// field — the postings counters are cache-wide deltas, not
/// DOP-invariant actuals).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheActuals {
    /// `Some(true)` = plan served from the plan cache, `Some(false)` =
    /// freshly optimized, `None` = plan cache off (field omitted).
    pub plan_cache: Option<bool>,
    /// Hash-join build sides served from the build cache.
    pub build_hits: usize,
    /// Memoized posting-list hits during this execution.
    pub postings_hits: usize,
    /// Posting-list lookups during this execution.
    pub postings_lookups: usize,
}

impl CacheActuals {
    /// Is there anything to print?  All-off executions render no line, so
    /// caches-off EXPLAIN output is byte-identical to the pre-cache format.
    fn is_empty(&self) -> bool {
        self == &CacheActuals::default()
    }
}

/// [`explain_with_stats`] plus the warm-path cache line (`plan_cache=`,
/// `cache_hits=`, `postings=`).  With caching entirely off the line is
/// suppressed and the output equals [`explain_with_stats`].
pub fn explain_with_caches(plan: &PhysPlan, stats: &ExecStats, caches: &CacheActuals) -> String {
    let mut out = explain_with_stats(plan, stats);
    if caches.is_empty() {
        return out;
    }
    let mut parts = Vec::new();
    if let Some(hit) = caches.plan_cache {
        parts.push(format!("plan_cache={}", if hit { "hit" } else { "miss" }));
    }
    parts.push(format!("cache_hits={}", caches.build_hits));
    if caches.postings_lookups > 0 {
        parts.push(format!(
            "postings={}/{}",
            caches.postings_hits, caches.postings_lookups
        ));
    }
    out.push_str(&format!("-- caches: {}\n", parts.join(" ")));
    out
}

fn render_join(node: &JoinNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match node {
        JoinNode::Leaf {
            alias,
            table,
            access,
            est_rows,
        } => {
            out.push_str(&format!(
                "{indent}{} [{table} as {alias}, est {est_rows:.1} rows]\n",
                access_label(access)
            ));
        }
        JoinNode::Join {
            outer,
            alias,
            table,
            access,
            method,
            residual,
            est_rows,
            ..
        } => {
            let join_label = match method {
                JoinMethod::NestedLoop => "NLJOIN",
                JoinMethod::Hash => "HSJOIN",
            };
            let residual_note = if residual.is_empty() {
                String::new()
            } else {
                format!(", {} residual pred(s)", residual.len())
            };
            out.push_str(&format!(
                "{indent}{join_label} [est {est_rows:.1} rows{residual_note}]\n"
            ));
            render_join(outer, depth + 1, out);
            out.push_str(&format!(
                "{indent}  {} [{table} as {alias}]\n",
                access_label(access)
            ));
        }
    }
}

fn access_label(access: &Access) -> String {
    match access {
        Access::TableScan { preds } => {
            if preds.is_empty() {
                "TBSCAN".to_string()
            } else {
                let ps: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
                format!("TBSCAN filter({})", ps.join(" AND "))
            }
        }
        Access::IndexScan {
            index,
            bounds,
            residual,
        } => {
            let mut parts = Vec::new();
            for (col, expr) in &bounds.eq {
                parts.push(format!("{col} = {expr}"));
            }
            if let Some(rc) = &bounds.range_col {
                if let Some((e, inc)) = &bounds.lower {
                    parts.push(format!("{rc} {} {e}", if *inc { ">=" } else { ">" }));
                }
                if let Some((e, inc)) = &bounds.upper {
                    parts.push(format!("{rc} {} {e}", if *inc { "<=" } else { "<" }));
                }
            }
            let mut s = format!("IXSCAN {index} ({})", parts.join(", "));
            if !residual.is_empty() {
                s.push_str(&format!(" +{} sarg", residual.len()));
            }
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::Bounds;
    use crate::sql::{ColRef, SelectItem, SqlExpr};

    fn sample_plan() -> PhysPlan {
        let leaf = JoinNode::Leaf {
            alias: "d1".into(),
            table: "doc".into(),
            access: Access::IndexScan {
                index: "nksp".into(),
                bounds: Bounds {
                    eq: vec![
                        ("name".into(), SqlExpr::lit("auction.xml")),
                        ("kind".into(), SqlExpr::lit("DOC")),
                    ],
                    range_col: None,
                    lower: None,
                    upper: None,
                },
                residual: vec![],
            },
            est_rows: 1.0,
        };
        let join = JoinNode::Join {
            outer: Box::new(leaf),
            alias: "d2".into(),
            table: "doc".into(),
            access: Access::IndexScan {
                index: "nkspl".into(),
                bounds: Bounds {
                    eq: vec![("name".into(), SqlExpr::lit("open_auction"))],
                    range_col: Some("pre".into()),
                    lower: Some((SqlExpr::col("d1", "pre"), false)),
                    upper: Some((SqlExpr::col("d1", "pre") + SqlExpr::col("d1", "size"), true)),
                },
                residual: vec![],
            },
            method: JoinMethod::NestedLoop,
            hash_keys: vec![],
            residual: vec![],
            est_rows: 120.0,
        };
        PhysPlan {
            root: join,
            select: vec![SelectItem::Star("d2".into())],
            distinct: true,
            order_by: vec![ColRef::new("d2", "pre")],
            est_cost: 42.0,
            est_rows: 120.0,
        }
    }

    #[test]
    fn explain_shows_fig10_style_structure() {
        let text = explain(&sample_plan());
        assert!(text.starts_with("RETURN"));
        assert!(text.contains("SORT (distinct, order by d2.pre)"));
        assert!(text.contains("NLJOIN"));
        assert!(text.contains("IXSCAN nksp"));
        assert!(text.contains("IXSCAN nkspl"));
        assert!(text.contains("pre > d1.pre"));
        assert!(text.contains("join order: d1 -> d2"));
    }

    #[test]
    fn explain_without_order_by() {
        let mut p = sample_plan();
        p.order_by.clear();
        p.distinct = false;
        let text = explain(&p);
        assert!(text.contains("TBSCAN (temp)"));
    }

    #[test]
    fn explain_with_stats_appends_operator_counters() {
        use xqjg_store::OpStats;
        let plan = sample_plan();
        let mut op = OpStats::named("NLJOIN(d2)");
        op.rows_in = 1;
        op.rows_out = 120;
        op.batches = 1;
        op.probes = 1;
        let stats = ExecStats {
            operators: vec![op],
            ..ExecStats::default()
        };
        let text = explain_with_stats(&plan, &stats);
        assert!(text.contains("operator stats"));
        assert!(text.contains("NLJOIN(d2): rows_in=1 rows_out=120 batches=1 probes=1"));
        // Derived selectivity / vector-length actuals.
        assert!(text.contains("sel=120.000"));
        assert!(text.contains("avg_vec=120.0"));
        // Without per-operator counters the output is the plain explain.
        assert_eq!(
            explain_with_stats(&plan, &ExecStats::default()),
            explain(&plan)
        );
    }

    #[test]
    fn explain_with_caches_appends_cache_line() {
        let plan = sample_plan();
        let stats = ExecStats::default();
        let caches = CacheActuals {
            plan_cache: Some(true),
            build_hits: 2,
            postings_hits: 3,
            postings_lookups: 5,
        };
        let text = explain_with_caches(&plan, &stats, &caches);
        assert!(text.contains("-- caches: plan_cache=hit cache_hits=2 postings=3/5\n"));
        let miss = CacheActuals {
            plan_cache: Some(false),
            ..CacheActuals::default()
        };
        assert!(explain_with_caches(&plan, &stats, &miss).contains("plan_cache=miss cache_hits=0"));
        // Zero-lookup postings are omitted; all-off suppresses the line
        // entirely so caches-off output matches the pre-cache format.
        assert!(!explain_with_caches(&plan, &stats, &miss).contains("postings="));
        assert_eq!(
            explain_with_caches(&plan, &stats, &CacheActuals::default()),
            explain_with_stats(&plan, &stats)
        );
    }
}
