//! The seed's operator-at-a-time executor, retained as the measured
//! baseline the pipelined executor in [`crate::exec`] is benchmarked
//! against.
//!
//! Every join level materializes the complete binding set before the next
//! level starts, and the hash join clones an owned `Vec<Value>` key per
//! inner row and per probe — exactly the allocation churn the batch
//! pipeline eliminates.  Keep this module semantically frozen: the
//! `executor` benchmark and the executor-parity tests treat it as ground
//! truth for "what the materializing strategy costs".

use crate::exec::{alias_table, exec_access, pred_holds, Env, ExecStats, Fetched};
use crate::physical::{JoinNode, PhysPlan};
use crate::sql::{SelectItem, SqlExpr};
use std::collections::HashMap;
use xqjg_store::{Database, Schema, Table, Value};

/// Execute a physical plan by materializing every join level, returning
/// the result table.
pub fn execute_materialized(plan: &PhysPlan, db: &Database) -> Table {
    execute_materialized_with_stats(plan, db).0
}

/// Execute a physical plan by materializing every join level, returning
/// the result table and aggregate work counters (per-operator counters are
/// a pipelined-executor feature; the baseline reports none).
pub fn execute_materialized_with_stats(plan: &PhysPlan, db: &Database) -> (Table, ExecStats) {
    let mut stats = ExecStats::default();
    let (aliases, bindings) = exec_node(&plan.root, db, &mut stats);
    stats.bindings += bindings.len();

    let env_tables: Vec<&Table> = aliases
        .iter()
        .map(|a| alias_table(&plan.root, a, db))
        .collect();

    // Evaluate select and order expressions per binding.
    let mut out_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(bindings.len());
    for binding in &bindings {
        let env = Env {
            aliases: &aliases,
            tables: &env_tables,
            binding,
        };
        let mut select_vals = Vec::new();
        for item in &plan.select {
            match item {
                SelectItem::Star(alias) => {
                    let (table, rid) = env.lookup(alias);
                    select_vals.extend(table.rows()[rid].iter().cloned());
                }
                SelectItem::Expr { expr, .. } => select_vals.push(env.eval(expr)),
            }
        }
        let order_vals: Vec<Value> = plan
            .order_by
            .iter()
            .map(|c| env.eval(&SqlExpr::Col(c.clone())))
            .collect();
        out_rows.push((select_vals, order_vals));
    }

    // DISTINCT over the select list.
    if plan.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|(sel, _)| seen.insert(sel.clone()));
    }
    // ORDER BY.
    out_rows.sort_by(|a, b| a.1.cmp(&b.1));

    // Output schema.
    let mut columns: Vec<String> = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Star(alias) => {
                let table = alias_table(&plan.root, alias, db);
                columns.extend(table.schema().columns().iter().cloned());
            }
            SelectItem::Expr { alias, .. } => columns.push(alias.clone()),
        }
    }
    let mut table = Table::new(Schema::new(columns));
    for (sel, _) in out_rows {
        table.push(sel);
    }
    (table, stats)
}

fn record(stats: &mut ExecStats, fetched: Fetched) {
    match fetched {
        Fetched::Scanned(n) => stats.scan_rows += n,
        Fetched::Indexed(n) => stats.index_rows += n,
    }
}

fn exec_node(
    node: &JoinNode,
    db: &Database,
    stats: &mut ExecStats,
) -> (Vec<String>, Vec<Vec<usize>>) {
    match node {
        JoinNode::Leaf {
            alias,
            table,
            access,
            ..
        } => {
            let (rows, fetched) = exec_access(access, alias, table, db, None, None);
            record(stats, fetched);
            (vec![alias.clone()], rows.iter().map(|&r| vec![r]).collect())
        }
        JoinNode::Join {
            outer,
            alias,
            table,
            access,
            method: _,
            hash_keys,
            residual,
            ..
        } => {
            let (mut aliases, outer_bindings) = exec_node(outer, db, stats);
            let outer_tables: Vec<&Table> =
                aliases.iter().map(|a| alias_table(outer, a, db)).collect();
            let base = db.table(table).expect("table registered");
            let mut result: Vec<Vec<usize>> = Vec::new();

            if hash_keys.is_empty() {
                // Nested-loop join: probe the access path per outer binding.
                for binding in &outer_bindings {
                    stats.probes += 1;
                    let env = Env {
                        aliases: &aliases,
                        tables: &outer_tables,
                        binding,
                    };
                    let (rows, fetched) = exec_access(access, alias, table, db, Some(&env), None);
                    record(stats, fetched);
                    for &rid in rows.iter() {
                        let ok = residual
                            .iter()
                            .all(|p| pred_holds(p, alias, Some((base, rid)), Some(&env)));
                        if ok {
                            let mut b = binding.clone();
                            b.push(rid);
                            result.push(b);
                        }
                    }
                }
            } else {
                // Hash join: enumerate inner rows once, hash on key columns
                // (owned key vectors per inner row and per probe — the
                // allocation behaviour the pipelined executor fixes).
                let (inner_rows, fetched) = exec_access(access, alias, table, db, None, None);
                record(stats, fetched);
                let key_cols: Vec<usize> = hash_keys
                    .iter()
                    .map(|(_, col)| base.schema().expect_index(col))
                    .collect();
                let mut buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for &rid in inner_rows.iter() {
                    let key: Vec<Value> = key_cols
                        .iter()
                        .map(|&c| base.rows()[rid][c].clone())
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    buckets.entry(key).or_default().push(rid);
                }
                for binding in &outer_bindings {
                    stats.probes += 1;
                    let env = Env {
                        aliases: &aliases,
                        tables: &outer_tables,
                        binding,
                    };
                    let probe_key: Vec<Value> = hash_keys
                        .iter()
                        .map(|(outer_expr, _)| env.eval(outer_expr))
                        .collect();
                    if probe_key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = buckets.get(&probe_key) {
                        for &rid in matches {
                            let ok = residual
                                .iter()
                                .all(|p| pred_holds(p, alias, Some((base, rid)), Some(&env)));
                            if ok {
                                let mut b = binding.clone();
                                b.push(rid);
                                result.push(b);
                            }
                        }
                    }
                }
            }
            aliases.push(alias.clone());
            stats.bindings += result.len();
            (aliases, result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::sqlparse::parse_sql;
    use xqjg_store::IndexDef;

    fn db() -> Database {
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        let rows: Vec<(i64, i64, i64, &str, Option<&str>)> = vec![
            (0, 4, 0, "DOC", Some("a.xml")),
            (1, 3, 1, "ELEM", Some("site")),
            (2, 1, 2, "ELEM", Some("open_auction")),
            (3, 0, 3, "ELEM", Some("bidder")),
            (4, 0, 2, "ELEM", Some("open_auction")),
        ];
        for (pre, size, level, kind, name) in rows {
            t.push(vec![
                Value::Int(pre),
                Value::Int(size),
                Value::Int(level),
                Value::str(kind),
                name.map(Value::str).unwrap_or(Value::Null),
                Value::Null,
                Value::Null,
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db.create_index(IndexDef {
            name: "nkp".into(),
            table: "doc".into(),
            key_columns: vec!["name".into(), "kind".into(), "pre".into()],
            include_columns: vec![],
            clustered: false,
        });
        db
    }

    #[test]
    fn materializing_executor_still_answers_queries() {
        let db = db();
        let q = parse_sql(
            "SELECT d1.pre AS p FROM doc AS d1 WHERE d1.name = 'open_auction' ORDER BY d1.pre",
        )
        .unwrap();
        let plan = optimize(&q, &db).unwrap();
        let (t, stats) = execute_materialized_with_stats(&plan, &db);
        assert_eq!(t.len(), 2);
        assert!(stats.index_rows + stats.scan_rows > 0);
        // The baseline reports aggregate counters only.
        assert!(stats.operators.is_empty());
    }
}
