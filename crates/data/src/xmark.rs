//! XMark-like auction document generator.
//!
//! Mirrors the parts of the XMark schema the evaluation queries touch:
//! `site / regions / item`, `categories / category`, `people / person`,
//! `open_auctions / open_auction (initial, bidder*, current)` and
//! `closed_auctions / closed_auction (price, itemref, buyer)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xqjg_xml::tree::Document;
use xqjg_xml::{DocTable, NodeId};

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Scale factor: 1.0 produces roughly 20k nodes; XMark's 110 MB instance
    /// corresponds to a few million nodes.
    pub scale: f64,
    /// RNG seed (generation is fully deterministic for a given seed).
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            scale: 0.1,
            seed: 42,
        }
    }
}

impl XmarkConfig {
    /// A configuration with the given scale factor.
    pub fn with_scale(scale: f64) -> Self {
        XmarkConfig {
            scale,
            ..Default::default()
        }
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }
}

/// Generate an XMark-like auction document (infoset tree).
pub fn generate_xmark(config: &XmarkConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_items = config.count(1000);
    let n_categories = config.count(250);
    let n_persons = config.count(500);
    let n_open = config.count(600);
    let n_closed = config.count(500);

    let mut doc = Document::new();
    let site = doc.add_element(Document::ROOT, "site");

    // Categories.
    let categories = doc.add_element(site, "categories");
    for c in 0..n_categories {
        let cat = doc.add_element(categories, "category");
        doc.add_attribute(cat, "id", format!("category{c}"));
        let name = doc.add_element(cat, "name");
        doc.add_text(name, format!("category name {c}"));
        let descr = doc.add_element(cat, "description");
        add_text_block(&mut doc, descr, &mut rng);
    }

    // Regions with items.
    let regions = doc.add_element(site, "regions");
    let region_names = [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ];
    let mut region_nodes: Vec<NodeId> = Vec::new();
    for r in region_names {
        region_nodes.push(doc.add_element(regions, r));
    }
    for i in 0..n_items {
        let region = region_nodes[i % region_nodes.len()];
        let item = doc.add_element(region, "item");
        doc.add_attribute(item, "id", format!("item{i}"));
        let location = doc.add_element(item, "location");
        doc.add_text(location, "United States");
        let name = doc.add_element(item, "name");
        doc.add_text(name, format!("item name {i}"));
        let payment = doc.add_element(item, "payment");
        doc.add_text(payment, "Creditcard");
        for _ in 0..rng.gen_range(1..=3) {
            let cat = rng.gen_range(0..n_categories);
            let incat = doc.add_element(item, "incategory");
            doc.add_attribute(incat, "category", format!("category{cat}"));
        }
        let quantity = doc.add_element(item, "quantity");
        doc.add_text(quantity, format!("{}", rng.gen_range(1..=5)));
    }

    // People.
    let people = doc.add_element(site, "people");
    for p in 0..n_persons {
        let person = doc.add_element(people, "person");
        doc.add_attribute(person, "id", format!("person{p}"));
        let name = doc.add_element(person, "name");
        doc.add_text(name, format!("Person Name{p}"));
        let email = doc.add_element(person, "emailaddress");
        doc.add_text(email, format!("mailto:person{p}@example.org"));
        if rng.gen_bool(0.6) {
            let phone = doc.add_element(person, "phone");
            doc.add_text(
                phone,
                format!("+1 ({}) 555-01{:02}", rng.gen_range(100..999), p % 100),
            );
        }
    }

    // Open auctions.
    let open_auctions = doc.add_element(site, "open_auctions");
    for a in 0..n_open {
        let auction = doc.add_element(open_auctions, "open_auction");
        doc.add_attribute(auction, "id", format!("open_auction{a}"));
        let initial = doc.add_element(auction, "initial");
        let initial_amount = rng.gen_range(1.0..200.0_f64);
        doc.add_text(initial, format!("{initial_amount:.2}"));
        // Roughly 70 % of the auctions have at least one bidder (Q1's
        // predicate must be selective but not trivial).
        let bidders = if rng.gen_bool(0.7) {
            rng.gen_range(1..=5)
        } else {
            0
        };
        let mut amount = initial_amount;
        for b in 0..bidders {
            let bidder = doc.add_element(auction, "bidder");
            let time = doc.add_element(bidder, "time");
            doc.add_text(time, format!("{:02}:{:02}", (b * 3) % 24, (b * 17) % 60));
            let personref = doc.add_element(bidder, "personref");
            doc.add_attribute(
                personref,
                "person",
                format!("person{}", rng.gen_range(0..n_persons)),
            );
            let increase = doc.add_element(bidder, "increase");
            let inc = rng.gen_range(1.0..30.0_f64);
            amount += inc;
            doc.add_text(increase, format!("{inc:.2}"));
        }
        let current = doc.add_element(auction, "current");
        doc.add_text(current, format!("{amount:.2}"));
        let itemref = doc.add_element(auction, "itemref");
        doc.add_attribute(
            itemref,
            "item",
            format!("item{}", rng.gen_range(0..n_items)),
        );
        let seller = doc.add_element(auction, "seller");
        doc.add_attribute(
            seller,
            "person",
            format!("person{}", rng.gen_range(0..n_persons)),
        );
    }

    // Closed auctions.
    let closed_auctions = doc.add_element(site, "closed_auctions");
    for _ in 0..n_closed {
        let auction = doc.add_element(closed_auctions, "closed_auction");
        let seller = doc.add_element(auction, "seller");
        doc.add_attribute(
            seller,
            "person",
            format!("person{}", rng.gen_range(0..n_persons)),
        );
        let buyer = doc.add_element(auction, "buyer");
        doc.add_attribute(
            buyer,
            "person",
            format!("person{}", rng.gen_range(0..n_persons)),
        );
        let itemref = doc.add_element(auction, "itemref");
        doc.add_attribute(
            itemref,
            "item",
            format!("item{}", rng.gen_range(0..n_items)),
        );
        let price = doc.add_element(auction, "price");
        // Skewed prices: only a small fraction exceeds 500 (Q2's predicate).
        // The first closed auction is always expensive so that Q2 has a
        // non-empty result at every scale.
        let value: f64 = if doc.node(closed_auctions).children.len() == 1 || rng.gen_bool(0.08) {
            rng.gen_range(500.0..2000.0)
        } else {
            rng.gen_range(1.0..500.0)
        };
        doc.add_text(price, format!("{value:.2}"));
        let date = doc.add_element(auction, "date");
        doc.add_text(
            date,
            format!(
                "{:02}/{:02}/2000",
                rng.gen_range(1..=12),
                rng.gen_range(1..=28)
            ),
        );
        let quantity = doc.add_element(auction, "quantity");
        doc.add_text(quantity, "1");
    }

    doc
}

fn add_text_block(doc: &mut Document, parent: NodeId, rng: &mut StdRng) {
    let text = doc.add_element(parent, "text");
    let words = rng.gen_range(3..10);
    let content: Vec<String> = (0..words).map(|w| format!("word{w}")).collect();
    doc.add_text(text, content.join(" "));
}

/// Generate and immediately encode an XMark-like document.
pub fn generate_xmark_encoded(uri: &str, config: &XmarkConfig) -> DocTable {
    DocTable::from_document(uri, &generate_xmark(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = XmarkConfig::default();
        let a = generate_xmark(&cfg);
        let b = generate_xmark(&cfg);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn scale_controls_size() {
        let small = generate_xmark(&XmarkConfig::with_scale(0.05));
        let large = generate_xmark(&XmarkConfig::with_scale(0.2));
        assert!(large.len() > 2 * small.len());
    }

    #[test]
    fn vocabulary_needed_by_queries_is_present() {
        let table = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(0.05));
        let names: std::collections::HashSet<&str> =
            table.rows().filter_map(|r| r.name.as_deref()).collect();
        for required in [
            "site",
            "open_auction",
            "bidder",
            "closed_auction",
            "price",
            "itemref",
            "item",
            "incategory",
            "category",
            "person",
            "people",
            "name",
        ] {
            assert!(names.contains(required), "missing {required}");
        }
        // person0 exists for Q3.
        assert!(table.rows().any(|r| r.value.as_deref() == Some("person0")));
        // Some price above 500 for Q2.
        assert!(table
            .rows()
            .any(|r| r.name.as_deref() == Some("price") && r.data.unwrap_or(0.0) > 500.0));
    }
}
