//! Synthetic XML data generators.
//!
//! The paper evaluates against a 110 MB XMark auction instance and a 400 MB
//! XML dump of the DBLP bibliography — neither of which can be bundled here.
//! These generators produce documents with the same element vocabulary,
//! nesting structure and value skew that Q1–Q6 exercise, at a configurable
//! scale, so the benchmark harness can reproduce the *shape* of Table IX on
//! any machine (see DESIGN.md, substitutions).

pub mod dblp;
pub mod xmark;

pub use dblp::{generate_dblp, generate_dblp_encoded, DblpConfig};
pub use xmark::{generate_xmark, generate_xmark_encoded, XmarkConfig};
