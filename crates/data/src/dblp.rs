//! DBLP-like bibliography generator.
//!
//! Produces a `dblp` document whose children are publication elements
//! (`article`, `inproceedings`, `proceedings`, `phdthesis`) carrying `key`
//! attributes and `author` / `title` / `year` / `editor` children — the
//! structure Q5 and Q6 query.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xqjg_xml::tree::Document;
use xqjg_xml::DocTable;

/// Configuration of the DBLP-like generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Scale factor: 1.0 produces roughly 120k nodes.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            scale: 0.1,
            seed: 7,
        }
    }
}

impl DblpConfig {
    /// A configuration with the given scale factor.
    pub fn with_scale(scale: f64) -> Self {
        DblpConfig {
            scale,
            ..Default::default()
        }
    }

    fn count(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }
}

/// Generate a DBLP-like bibliography document.
pub fn generate_dblp(config: &DblpConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_articles = config.count(6000);
    let n_inproceedings = config.count(5000);
    let n_proceedings = config.count(400);
    let n_phdtheses = config.count(600);

    let mut doc = Document::new();
    let dblp = doc.add_element(Document::ROOT, "dblp");

    for i in 0..n_articles {
        let article = doc.add_element(dblp, "article");
        doc.add_attribute(article, "key", format!("journals/j{}/A{i}", i % 40));
        for a in 0..rng.gen_range(1..=3) {
            let author = doc.add_element(article, "author");
            doc.add_text(author, format!("Author {} {}", i % 900, a));
        }
        let title = doc.add_element(article, "title");
        doc.add_text(title, format!("An Article About Topic {i}"));
        let year = doc.add_element(article, "year");
        doc.add_text(year, format!("{}", 1975 + (i % 35)));
        let journal = doc.add_element(article, "journal");
        doc.add_text(journal, format!("Journal {}", i % 40));
    }

    for i in 0..n_inproceedings {
        let paper = doc.add_element(dblp, "inproceedings");
        doc.add_attribute(paper, "key", format!("conf/c{}/P{i}", i % 60));
        for a in 0..rng.gen_range(1..=4) {
            let author = doc.add_element(paper, "author");
            doc.add_text(author, format!("Author {} {}", (i * 7) % 900, a));
        }
        let title = doc.add_element(paper, "title");
        doc.add_text(title, format!("A Conference Paper on Subject {i}"));
        let year = doc.add_element(paper, "year");
        doc.add_text(year, format!("{}", 1980 + (i % 30)));
        let booktitle = doc.add_element(paper, "booktitle");
        doc.add_text(booktitle, format!("Conf {}", i % 60));
        let pages = doc.add_element(paper, "pages");
        doc.add_text(pages, format!("{}-{}", i % 400, i % 400 + 12));
    }

    for i in 0..n_proceedings {
        let proceedings = doc.add_element(dblp, "proceedings");
        // Q5 looks up the key "conf/vldb2001": make sure it exists exactly
        // once, with editor and title children.
        let key = if i == n_proceedings / 2 {
            "conf/vldb2001".to_string()
        } else {
            format!("conf/c{}/{}", i % 60, 1980 + (i % 30))
        };
        doc.add_attribute(proceedings, "key", key);
        for e in 0..rng.gen_range(1..=3) {
            let editor = doc.add_element(proceedings, "editor");
            doc.add_text(editor, format!("Editor {} {}", i % 200, e));
        }
        let title = doc.add_element(proceedings, "title");
        doc.add_text(title, format!("Proceedings of Conference {}", i % 60));
        let year = doc.add_element(proceedings, "year");
        doc.add_text(year, format!("{}", 1980 + (i % 30)));
        let publisher = doc.add_element(proceedings, "publisher");
        doc.add_text(publisher, "ACM");
    }

    for i in 0..n_phdtheses {
        let thesis = doc.add_element(dblp, "phdthesis");
        doc.add_attribute(thesis, "key", format!("phd/T{i}"));
        let author = doc.add_element(thesis, "author");
        doc.add_text(author, format!("Doctoral Candidate {i}"));
        let title = doc.add_element(thesis, "title");
        doc.add_text(title, format!("A Dissertation on Question {i}"));
        let year = doc.add_element(thesis, "year");
        // Q6 selects theses before 1994: make them a modest fraction.
        let y = 1986 + (i % 25);
        doc.add_text(year, format!("{y}"));
        let school = doc.add_element(thesis, "school");
        doc.add_text(school, format!("University {}", i % 50));
    }

    doc
}

/// Generate and immediately encode a DBLP-like document.
pub fn generate_dblp_encoded(uri: &str, config: &DblpConfig) -> DocTable {
    DocTable::from_document(uri, &generate_dblp(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_q5_and_q6_targets() {
        let table = generate_dblp_encoded("dblp.xml", &DblpConfig::with_scale(0.05));
        // Exactly one conf/vldb2001 key.
        let vldb = table
            .rows()
            .filter(|r| r.value.as_deref() == Some("conf/vldb2001"))
            .count();
        assert_eq!(vldb, 1);
        // phdthesis elements with year < 1994 exist.
        assert!(table.rows().any(|r| r.name.as_deref() == Some("phdthesis")));
        assert!(table
            .rows()
            .any(|r| r.name.as_deref() == Some("year") && r.value.as_deref() < Some("1994")));
    }

    #[test]
    fn deterministic_and_scalable() {
        let a = generate_dblp(&DblpConfig::default());
        let b = generate_dblp(&DblpConfig::default());
        assert_eq!(a.len(), b.len());
        let bigger = generate_dblp(&DblpConfig::with_scale(0.3));
        assert!(bigger.len() > a.len());
    }
}
