//! Plan property inference (Tables II–V).
//!
//! The peephole rewriting of Fig. 5 decides rule applicability by inspecting
//! four properties of each operator:
//!
//! * `icols` — columns required upstream (top-down, seeded `{pos, item}` at
//!   the serialization point, accumulated over all parents),
//! * `const` — columns known to hold a constant value (bottom-up),
//! * `key`   — candidate keys of the operator's output (bottom-up),
//! * `set`   — whether the output is subject to duplicate elimination
//!   further up the plan (top-down, `false` only at the root).

use std::collections::{HashMap, HashSet};
use xqjg_algebra::{OpId, OpKind, Plan};
use xqjg_store::Value;

/// Inferred properties for every reachable operator.
#[derive(Debug, Clone)]
pub struct Properties {
    /// `icols` per operator.
    pub icols: HashMap<OpId, HashSet<String>>,
    /// `const` per operator: column → constant value.
    pub consts: HashMap<OpId, HashMap<String, Value>>,
    /// `key` per operator: candidate keys (sets of columns).
    pub keys: HashMap<OpId, Vec<HashSet<String>>>,
    /// `set` per operator.
    pub set: HashMap<OpId, bool>,
}

impl Properties {
    /// Infer all four properties for the reachable part of the plan.
    pub fn infer(plan: &Plan) -> Properties {
        let topo = plan.topo_order();
        let mut consts: HashMap<OpId, HashMap<String, Value>> = HashMap::new();
        let mut keys: HashMap<OpId, Vec<HashSet<String>>> = HashMap::new();

        // Bottom-up: const and key.
        for &id in &topo {
            let (c, k) = infer_bottom_up(plan, id, &consts, &keys);
            consts.insert(id, c);
            keys.insert(id, k);
        }

        // Top-down: icols and set (walk in reverse topological order).
        let mut icols: HashMap<OpId, HashSet<String>> = HashMap::new();
        let mut set: HashMap<OpId, bool> = HashMap::new();
        for &id in &topo {
            icols.insert(id, HashSet::new());
            set.insert(id, true);
        }
        // Seed the root.
        icols.insert(
            plan.root(),
            ["pos", "item"].iter().map(|s| s.to_string()).collect(),
        );
        set.insert(plan.root(), false);
        for &id in topo.iter().rev() {
            let own_icols = icols.get(&id).cloned().unwrap_or_default();
            let own_set = *set.get(&id).unwrap_or(&true);
            let contributions = infer_top_down(plan, id, &own_icols, own_set);
            for (child, child_icols, child_set) in contributions {
                icols.entry(child).or_default().extend(child_icols);
                let entry = set.entry(child).or_insert(true);
                *entry = *entry && child_set;
            }
        }

        Properties {
            icols,
            consts,
            keys,
            set,
        }
    }

    /// The `icols` of an operator.
    pub fn icols_of(&self, id: OpId) -> &HashSet<String> {
        self.icols.get(&id).expect("icols inferred")
    }

    /// The constant columns of an operator.
    pub fn consts_of(&self, id: OpId) -> &HashMap<String, Value> {
        self.consts.get(&id).expect("const inferred")
    }

    /// The candidate keys of an operator.
    pub fn keys_of(&self, id: OpId) -> &[HashSet<String>] {
        self.keys.get(&id).expect("key inferred")
    }

    /// The `set` property of an operator.
    pub fn set_of(&self, id: OpId) -> bool {
        *self.set.get(&id).expect("set inferred")
    }

    /// Does the operator's output have a key entirely within its `icols`?
    pub fn has_needed_key(&self, id: OpId) -> bool {
        let icols = self.icols_of(id);
        self.keys_of(id).iter().any(|k| k.is_subset(icols))
    }
}

/// Bottom-up inference of (const, key) for a single operator.
fn infer_bottom_up(
    plan: &Plan,
    id: OpId,
    consts: &HashMap<OpId, HashMap<String, Value>>,
    keys: &HashMap<OpId, Vec<HashSet<String>>>,
) -> (HashMap<String, Value>, Vec<HashSet<String>>) {
    let child_const = |c: OpId| consts.get(&c).cloned().unwrap_or_default();
    let child_keys = |c: OpId| keys.get(&c).cloned().unwrap_or_default();
    match plan.op(id) {
        OpKind::DocTable => {
            let key = vec![["pre".to_string()].into_iter().collect()];
            (HashMap::new(), key)
        }
        OpKind::Literal { columns, rows } => {
            let mut c = HashMap::new();
            if rows.len() == 1 {
                for (i, col) in columns.iter().enumerate() {
                    c.insert(col.clone(), rows[0][i].clone());
                }
            }
            // Single-row (or empty) literals are keyed by every column; for
            // larger literals we stay conservative.
            let k = if rows.len() <= 1 {
                columns
                    .iter()
                    .map(|col| [col.clone()].into_iter().collect())
                    .collect()
            } else {
                Vec::new()
            };
            (c, k)
        }
        OpKind::Serialize { input } | OpKind::Select { input, .. } => {
            (child_const(*input), child_keys(*input))
        }
        OpKind::Distinct { input } => {
            let mut k = child_keys(*input);
            let all: HashSet<String> = plan.output_cols(*input).into_iter().collect();
            k.push(all);
            (child_const(*input), k)
        }
        OpKind::Project { input, cols } => {
            let cc = child_const(*input);
            let mut c = HashMap::new();
            for (new, old) in cols {
                if let Some(v) = cc.get(old) {
                    c.insert(new.clone(), v.clone());
                }
            }
            // Translate keys whose columns survive the projection.
            let mut k = Vec::new();
            for key in child_keys(*input) {
                let translated: Option<HashSet<String>> = key
                    .iter()
                    .map(|kc| {
                        cols.iter()
                            .find(|(_, old)| old == kc)
                            .map(|(new, _)| new.clone())
                    })
                    .collect();
                if let Some(t) = translated {
                    k.push(t);
                }
            }
            (c, k)
        }
        OpKind::Attach { input, col, value } => {
            let mut c = child_const(*input);
            c.insert(col.clone(), value.clone());
            (c, child_keys(*input))
        }
        OpKind::RowNum { input, col } => {
            let mut k = child_keys(*input);
            k.push([col.clone()].into_iter().collect());
            (child_const(*input), k)
        }
        OpKind::Rank {
            input,
            col,
            order_by,
        } => {
            let mut k = child_keys(*input);
            // ϱ: {a} ∪ (k \ {b1..bn}) is a key for any key k intersecting
            // the ranking criteria.
            let extra: Vec<HashSet<String>> = child_keys(*input)
                .iter()
                .filter(|key| key.iter().any(|c| order_by.contains(c)))
                .map(|key| {
                    let mut nk: HashSet<String> = key
                        .iter()
                        .filter(|c| !order_by.contains(*c))
                        .cloned()
                        .collect();
                    nk.insert(col.clone());
                    nk
                })
                .collect();
            k.extend(extra);
            (child_const(*input), k)
        }
        OpKind::Join { left, right, pred } => {
            let mut c = child_const(*left);
            c.extend(child_const(*right));
            let lk = child_keys(*left);
            let rk = child_keys(*right);
            let mut k: Vec<HashSet<String>> = Vec::new();
            // Generic case: union of a left key and a right key.
            for a in &lk {
                for b in &rk {
                    k.push(a.union(b).cloned().collect());
                }
            }
            // Equi-join refinement: if the join column of one side is a key
            // of that side, the other side's keys carry over.
            if let Some((a, b)) = pred.as_single_col_eq() {
                let left_cols: HashSet<String> = plan.output_cols(*left).into_iter().collect();
                let (lcol, rcol) = if left_cols.contains(a) {
                    (a, b)
                } else {
                    (b, a)
                };
                let l_is_key = lk.iter().any(|k| k.len() == 1 && k.contains(lcol));
                let r_is_key = rk.iter().any(|k| k.len() == 1 && k.contains(rcol));
                if r_is_key {
                    k.extend(lk.iter().cloned());
                }
                if l_is_key {
                    k.extend(rk.iter().cloned());
                }
            }
            (c, k)
        }
        OpKind::Cross { left, right } => {
            let mut c = child_const(*left);
            c.extend(child_const(*right));
            let mut k = Vec::new();
            for a in child_keys(*left) {
                for b in child_keys(*right) {
                    k.push(a.union(&b).cloned().collect());
                }
            }
            (c, k)
        }
    }
}

/// Top-down contributions `(child, icols, set)` of an operator to its
/// children.
fn infer_top_down(
    plan: &Plan,
    id: OpId,
    icols: &HashSet<String>,
    set: bool,
) -> Vec<(OpId, HashSet<String>, bool)> {
    let s = |x: &str| x.to_string();
    match plan.op(id) {
        OpKind::Serialize { input } => {
            // The serialization point needs the sequence encoding columns.
            let mut need: HashSet<String> = icols.clone();
            need.insert(s("pos"));
            need.insert(s("item"));
            let available: HashSet<String> = plan.output_cols(*input).into_iter().collect();
            vec![(
                *input,
                need.intersection(&available).cloned().collect(),
                false,
            )]
        }
        OpKind::Project { input, cols } => {
            let mut need = HashSet::new();
            for (new, old) in cols {
                if icols.contains(new) {
                    need.insert(old.clone());
                }
            }
            vec![(*input, need, set)]
        }
        OpKind::Select { input, pred } => {
            let mut need = icols.clone();
            need.extend(pred.cols());
            vec![(*input, need, set)]
        }
        OpKind::Join { left, right, pred } => {
            let mut need = icols.clone();
            need.extend(pred.cols());
            let lcols: HashSet<String> = plan.output_cols(*left).into_iter().collect();
            let rcols: HashSet<String> = plan.output_cols(*right).into_iter().collect();
            vec![
                (*left, need.intersection(&lcols).cloned().collect(), set),
                (*right, need.intersection(&rcols).cloned().collect(), set),
            ]
        }
        OpKind::Cross { left, right } => {
            let lcols: HashSet<String> = plan.output_cols(*left).into_iter().collect();
            let rcols: HashSet<String> = plan.output_cols(*right).into_iter().collect();
            vec![
                (*left, icols.intersection(&lcols).cloned().collect(), set),
                (*right, icols.intersection(&rcols).cloned().collect(), set),
            ]
        }
        OpKind::Distinct { input } => vec![(*input, icols.clone(), true)],
        OpKind::Attach { input, col, .. } | OpKind::RowNum { input, col } => {
            let mut need = icols.clone();
            need.remove(col);
            vec![(*input, need, set)]
        }
        OpKind::Rank {
            input,
            col,
            order_by,
        } => {
            let mut need = icols.clone();
            need.remove(col);
            need.extend(order_by.iter().cloned());
            vec![(*input, need, set)]
        }
        OpKind::DocTable | OpKind::Literal { .. } => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqjg_algebra::{Comparison, Predicate};

    /// serialize(π_pos,item(ϱ_pos:⟨item⟩(δ(π_iter,item(σ_kind=ELEM(doc))))))
    fn ddo_plan() -> Plan {
        let mut p = Plan::new();
        let doc = p.add(OpKind::DocTable);
        let sel = p.add(OpKind::Select {
            input: doc,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let proj = p.add(OpKind::Project {
            input: sel,
            cols: vec![
                ("iter".to_string(), "level".to_string()),
                ("item".to_string(), "pre".to_string()),
            ],
        });
        let dis = p.add(OpKind::Distinct { input: proj });
        let rank = p.add(OpKind::Rank {
            input: dis,
            col: "pos".to_string(),
            order_by: vec!["item".to_string()],
        });
        let root = p.add(OpKind::Serialize { input: rank });
        p.set_root(root);
        p
    }

    #[test]
    fn icols_seeded_and_propagated() {
        let p = ddo_plan();
        let props = Properties::infer(&p);
        // The rank's input needs item (for ordering and output) but not pos.
        let dis = OpId(3);
        assert!(props.icols_of(dis).contains("item"));
        assert!(!props.icols_of(dis).contains("pos"));
        // The doc leaf must supply pre (item source) and kind (selection
        // predicate) — but not level (iter is never required upstream) nor
        // value.
        let doc = OpId(0);
        let doc_icols = props.icols_of(doc);
        assert!(doc_icols.contains("pre"));
        assert!(doc_icols.contains("kind"));
        assert!(!doc_icols.contains("level"));
        assert!(!doc_icols.contains("value"));
    }

    #[test]
    fn set_true_below_distinct_false_above() {
        let p = ddo_plan();
        let props = Properties::infer(&p);
        // Below the δ: duplicates are eliminated upstream.
        assert!(props.set_of(OpId(2)));
        assert!(props.set_of(OpId(0)));
        // The δ itself and the rank above feed the root without another δ.
        assert!(!props.set_of(OpId(3)));
        assert!(!props.set_of(OpId(4)));
    }

    #[test]
    fn keys_flow_through_operators() {
        let p = ddo_plan();
        let props = Properties::infer(&p);
        // doc is keyed by pre.
        assert!(props
            .keys_of(OpId(0))
            .iter()
            .any(|k| k.len() == 1 && k.contains("pre")));
        // The projection renames pre to item: key {item}.
        assert!(props
            .keys_of(OpId(2))
            .iter()
            .any(|k| k.len() == 1 && k.contains("item")));
        // Distinct adds the all-columns key.
        assert!(props
            .keys_of(OpId(3))
            .iter()
            .any(|k| k.contains("iter") && k.contains("item")));
    }

    #[test]
    fn consts_from_attach_and_literal() {
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["iter".to_string()],
            rows: vec![vec![Value::Int(1)]],
        });
        let att = p.add(OpKind::Attach {
            input: lit,
            col: "pos".to_string(),
            value: Value::Int(1),
        });
        let root = p.add(OpKind::Serialize { input: att });
        p.set_root(root);
        let props = Properties::infer(&p);
        let c = props.consts_of(att);
        assert_eq!(c.get("iter"), Some(&Value::Int(1)));
        assert_eq!(c.get("pos"), Some(&Value::Int(1)));
    }

    #[test]
    fn has_needed_key_detects_keyed_output() {
        let p = ddo_plan();
        let props = Properties::infer(&p);
        // The projection's output is keyed by item which is within its icols.
        assert!(props.has_needed_key(OpId(2)));
    }
}
