//! XQuery join graph isolation — the paper's contribution.
//!
//! * [`properties`] — plan property inference (icols / const / key / set,
//!   Tables II–V),
//! * [`rewrite`] — the house-cleaning and ϱ-goal rewrite rules of Fig. 5,
//! * [`sfw`] — join graph / plan tail extraction into a single
//!   `SELECT DISTINCT-FROM-WHERE-ORDER BY` block (the δ⃝ / ⋈⃝ goals) and the
//!   reconstruction of the isolated algebra plan (Fig. 7),
//! * [`processor`] — the end-to-end [`Processor`] tying the XQuery front end,
//!   the compiler, the isolation pass and the relational engine together.
//!
//! ```no_run
//! use xqjg_core::{Mode, Processor};
//!
//! let mut p = Processor::new();
//! p.load_document("auction.xml", "<site>...</site>").unwrap();
//! p.create_default_indexes();
//! let out = p
//!     .execute("doc(\"auction.xml\")/descendant::open_auction[bidder]", Mode::JoinGraph)
//!     .unwrap();
//! println!("{} nodes in {:?}", out.items.len(), out.elapsed);
//! ```

pub mod processor;
pub mod properties;
pub mod rewrite;
pub mod sfw;

pub use processor::{
    decompose_sequences, Mode, Outcome, Prepared, PreparedBranch, Processor, QueryCaches,
    QueryError,
};
pub use properties::Properties;
pub use rewrite::{simplify, RewriteReport};
pub use sfw::{isolate_sfw, isolated_plan, result_items_from_sql, IsolateError, Isolated};
