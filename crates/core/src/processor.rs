//! The end-to-end XQuery processor.
//!
//! [`Processor`] owns the XML encoding (the `doc` table on both the XML and
//! the relational side), the B-tree index set, and the full query pipeline:
//!
//! ```text
//! parse → normalize → (sequence decomposition) → loop-lifting compilation
//!       → simplification → join graph isolation → SQL → cost-based
//!         optimization → index-driven execution → node sequence
//! ```
//!
//! Three execution modes are exposed so the evaluation of Table IX can be
//! reproduced: the reference interpreter, direct evaluation of the *stacked*
//! plan, and the isolated *join graph* executed by the relational engine.

use crate::rewrite::{simplify, RewriteReport};
use crate::sfw::{isolate_sfw, isolated_plan, result_items_from_sql, Isolated};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xqjg_algebra::{doc_relation, evaluate as eval_plan, result_items, EvalContext, Plan};
use xqjg_compiler::compile;
use xqjg_engine::{
    advise, deploy, explain_with_caches, optimize, optimize_cached, BuildCache, ExecCaches,
    ExecStats, IndexProposal, PhysPlan, PlanCache, QueryRequest, SfwQuery,
};
use xqjg_store::{CancelToken, Database, ExecConfig, ExecError, IndexDef, PostingsCache};
use xqjg_xml::{encode_document, serialize_nodes, serialized_node_count, DocTable, Pre};
use xqjg_xquery::{interpret, normalize, parse, CoreExpr};

/// How a query should be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The tree-walking reference interpreter (correctness oracle).
    Interpreter,
    /// Direct operator-at-a-time evaluation of the stacked plan
    /// ("DB2 + Pathfinder, stacked" in Table IX).
    Stacked,
    /// Join graph isolation + relational execution
    /// ("DB2 + Pathfinder, join graph" in Table IX).
    JoinGraph,
}

/// Error raised anywhere in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A compilation-pipeline stage failed (parse, normalize, compile,
    /// isolate, optimize, interpret).
    Stage {
        /// Pipeline stage that failed.
        stage: &'static str,
        /// Description.
        message: String,
    },
    /// Relational execution failed with a typed runtime error: spill I/O,
    /// corrupt spill data, budget exhaustion, cancellation or timeout.
    /// The query can be retried on the same [`Processor`] — execution
    /// releases its memory reservations and deletes its run files on
    /// every error path.
    Exec(ExecError),
}

impl QueryError {
    fn new(stage: &'static str, message: impl fmt::Display) -> Self {
        QueryError::Stage {
            stage,
            message: message.to_string(),
        }
    }

    /// The pipeline stage that failed (`"exec"` for runtime errors).
    pub fn stage(&self) -> &'static str {
        match self {
            QueryError::Stage { stage, .. } => stage,
            QueryError::Exec(_) => "exec",
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Stage { stage, message } => write!(f, "{stage} error: {message}"),
            QueryError::Exec(e) => write!(f, "exec error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ExecError> for QueryError {
    fn from(e: ExecError) -> Self {
        QueryError::Exec(e)
    }
}

/// A fully prepared query branch (after sequence decomposition).
#[derive(Debug, Clone)]
pub struct PreparedBranch {
    /// The normalized Core expression of this branch.
    pub core: CoreExpr,
    /// The initial stacked plan (Fig. 4 artifact).
    pub stacked: Plan,
    /// The simplified plan (after the Fig. 5 house-cleaning rules).
    pub simplified: Plan,
    /// Statistics of the simplification pass.
    pub rewrite_report: RewriteReport,
    /// The isolated join graph (SQL block, Fig. 8 / 9 artifact).
    pub isolated: Isolated,
    /// The isolated plan reconstructed as an algebra DAG (Fig. 7 artifact).
    pub isolated_plan: Plan,
}

/// A prepared query: one branch per item of a top-level comma sequence.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The normalized Core expression of the whole query.
    pub core: CoreExpr,
    /// The branches (usually exactly one).
    pub branches: Vec<PreparedBranch>,
}

impl Prepared {
    /// SQL text of every branch.
    pub fn sql(&self) -> Vec<String> {
        self.branches.iter().map(|b| b.isolated.sql()).collect()
    }
}

/// The outcome of executing a query.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The resulting node sequence (`pre` ranks in sequence order).
    pub items: Vec<Pre>,
    /// Number of nodes a full serialization of the result would emit
    /// (the "# nodes" column of Table IX).
    pub serialized_nodes: usize,
    /// Wall-clock execution time (excludes compilation).
    pub elapsed: Duration,
    /// Relational execution work counters (join-graph mode only).
    pub exec_stats: Option<ExecStats>,
    /// EXPLAIN text per executed SQL block (join-graph mode only).
    pub explain: Vec<String>,
}

/// The cross-query caches of a query service: hash-join build sides,
/// optimized physical plans, and hot IXSCAN posting lists.
///
/// All three are concurrent, byte-bounded, LRU-evicting maps; a
/// `QueryCaches` value is a set of shared handles (`Clone` shares, never
/// copies), so many [`Processor`] instances — including ones on different
/// threads — can warm each other.  Every cached entry is stamped with the
/// catalog version of the database it was computed against; catalog
/// versions are process-wide unique, so processors over *different*
/// documents can share one `QueryCaches` without cross-talk (each other's
/// entries simply evict on version mismatch).
#[derive(Clone, Default)]
pub struct QueryCaches {
    builds: BuildCache,
    plans: PlanCache,
    postings: PostingsCache,
}

impl QueryCaches {
    /// Create a fresh cache set with the default byte budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hash-join build-side cache.
    pub fn builds(&self) -> &BuildCache {
        &self.builds
    }

    /// The optimized-plan cache.
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// The IXSCAN posting-list cache.
    pub fn postings(&self) -> &PostingsCache {
        &self.postings
    }
}

/// The purely relational XQuery processor.
pub struct Processor {
    doc: DocTable,
    default_doc: Option<String>,
    db: Option<Database>,
    /// Cross-query caches (build sides, plans, postings).  Defaults to a
    /// private set; [`Processor::with_caches`] shares one set across
    /// processors.  Entries are invalidated automatically when the catalog
    /// version moves — document loads, index DDL.
    caches: QueryCaches,
    /// Execution-knob override; `None` reads the `XQJG_*` environment on
    /// every execution (the seed behaviour).
    exec_config: Option<ExecConfig>,
    /// Cancellation token observed by join-graph executions; handed out via
    /// [`Processor::cancel_handle`] and re-armed before every execution.
    cancel: CancelToken,
}

impl Default for Processor {
    fn default() -> Self {
        Self::new()
    }
}

impl Processor {
    /// Create an empty processor with a private cache set.
    pub fn new() -> Self {
        Self::with_caches(QueryCaches::new())
    }

    /// Create an empty processor that reuses an existing cache set (warm
    /// plans, build sides and postings carry over from other processors
    /// sharing the same handles).
    pub fn with_caches(caches: QueryCaches) -> Self {
        Processor {
            doc: DocTable::new(),
            default_doc: None,
            db: None,
            caches,
            exec_config: None,
            cancel: CancelToken::new(),
        }
    }

    /// The processor's cache set (clone it to share with other processors).
    pub fn caches(&self) -> &QueryCaches {
        &self.caches
    }

    /// The session's hash-join build cache (hit counters are surfaced for
    /// benchmarks and tests).
    pub fn build_cache(&self) -> &BuildCache {
        self.caches.builds()
    }

    /// Pin the execution configuration instead of re-reading the `XQJG_*`
    /// environment on every execution (`None` restores the env-driven
    /// default).  This is how benchmarks flip cache knobs per-processor
    /// without racing on process environment.
    pub fn set_exec_config(&mut self, cfg: Option<ExecConfig>) {
        self.exec_config = cfg;
    }

    /// The configuration the next execution will run under.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_config
            .clone()
            .unwrap_or_else(ExecConfig::from_env)
    }

    /// A clonable handle that cancels the processor's in-flight join-graph
    /// execution from another thread.  The token is re-armed (cleared) at
    /// the start of every execution, so a handle can be kept and reused
    /// across queries; cancelling between queries does not poison the next
    /// one.
    pub fn cancel_handle(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Parse and load an XML document under the given URI.  The first loaded
    /// document becomes the target of absolute paths (`/site/…`).
    pub fn load_document(&mut self, uri: &str, xml: &str) -> Result<(), QueryError> {
        let table = encode_document(uri, xml).map_err(|e| QueryError::new("parse", e))?;
        self.load_encoded(uri, table);
        Ok(())
    }

    /// Load an already-encoded document (used by the data generators).
    pub fn load_encoded(&mut self, uri: &str, table: DocTable) {
        if self.default_doc.is_none() {
            self.default_doc = Some(uri.to_string());
        }
        if self.doc.is_empty() {
            self.doc = table;
        } else {
            // Append the incoming rows with shifted pre ranks.
            let base = self.doc.len() as u32;
            let mut rows: Vec<xqjg_xml::NodeRow> = self.doc.rows().cloned().collect();
            rows.extend(table.rows().cloned().map(|mut r| {
                r.pre += base;
                r
            }));
            self.doc = DocTable::from_rows(rows);
        }
        self.db = None;
    }

    /// The XML-side encoding.
    pub fn doc(&self) -> &DocTable {
        &self.doc
    }

    /// The URI absolute paths refer to.
    pub fn default_document(&self) -> Option<&str> {
        self.default_doc.as_deref()
    }

    /// The relational database (built lazily from the encoding).
    pub fn database(&mut self) -> &Database {
        if self.db.is_none() {
            let mut db = Database::new();
            db.create_table("doc", doc_relation(&self.doc));
            self.db = Some(db);
        }
        self.db.as_ref().expect("database built")
    }

    /// Create the standing B-tree index set used throughout the evaluation
    /// (the deployed equivalent of Table VI): name/kind-prefixed structural
    /// indexes, a value-prefixed index for general comparisons, a
    /// data-prefixed index for numeric comparisons, and the clustered
    /// document-order index.
    pub fn create_default_indexes(&mut self) {
        self.database();
        let db = self.db.as_mut().expect("database built");
        let defs = vec![
            ("nkp", vec!["name", "kind", "pre"], false),
            ("nkdp", vec!["name", "kind", "data", "pre"], false),
            ("vnkp", vec!["value", "name", "kind", "pre"], false),
            ("p_nvkls", vec!["pre"], true),
        ];
        for (name, key, clustered) in defs {
            db.create_index(IndexDef {
                name: name.to_string(),
                table: "doc".to_string(),
                key_columns: key.into_iter().map(String::from).collect(),
                include_columns: if clustered {
                    vec!["name", "value", "kind", "level", "size"]
                        .into_iter()
                        .map(String::from)
                        .collect()
                } else {
                    vec![]
                },
                clustered,
            });
        }
    }

    /// Run the index advisor over a query workload and deploy its proposals
    /// (the `db2advis` experiment of Table VI).
    pub fn advise_and_deploy(
        &mut self,
        queries: &[&str],
    ) -> Result<Vec<IndexProposal>, QueryError> {
        let mut workload: Vec<SfwQuery> = Vec::new();
        for q in queries {
            let prepared = self.prepare(q)?;
            for b in &prepared.branches {
                workload.push(b.isolated.query.clone());
            }
        }
        self.database();
        let db = self.db.as_mut().expect("database built");
        let proposals = advise(&workload, db);
        deploy(&proposals, db);
        Ok(proposals)
    }

    /// Parse, normalize, compile and isolate a query without executing it.
    pub fn prepare(&self, query: &str) -> Result<Prepared, QueryError> {
        let ast = parse(query).map_err(|e| QueryError::new("parse", e))?;
        let core = normalize(&ast, self.default_doc.as_deref())
            .map_err(|e| QueryError::new("normalize", e))?;
        let branch_cores = decompose_sequences(&core);
        let mut branches = Vec::with_capacity(branch_cores.len());
        for bc in branch_cores {
            let stacked = compile(&bc)
                .map_err(|e| QueryError::new("compile", e))?
                .plan;
            let mut simplified = stacked.clone();
            let rewrite_report = simplify(&mut simplified);
            let isolated = isolate_sfw(&simplified).map_err(|e| QueryError::new("isolate", e))?;
            let iso_plan = isolated_plan(&isolated);
            branches.push(PreparedBranch {
                core: bc,
                stacked,
                simplified,
                rewrite_report,
                isolated,
                isolated_plan: iso_plan,
            });
        }
        Ok(Prepared { core, branches })
    }

    /// Execute a query in the given mode.
    pub fn execute(&mut self, query: &str, mode: Mode) -> Result<Outcome, QueryError> {
        let prepared = self.prepare(query)?;
        self.execute_prepared(&prepared, mode)
    }

    /// Execute an already prepared query.
    pub fn execute_prepared(
        &mut self,
        prepared: &Prepared,
        mode: Mode,
    ) -> Result<Outcome, QueryError> {
        // Re-arm the cancellation token: a cancel aimed at a previous
        // (possibly already finished) execution must not abort this one.
        self.cancel.clear();
        if mode == Mode::JoinGraph {
            self.database();
        }
        let cfg = self.exec_config();
        let cancel = self.cancel.clone();
        self.execute_prepared_shared(prepared, mode, &cfg, &cancel)
    }

    /// The shared-session execution path: run an already prepared query
    /// *without mutating the processor*, so many server sessions can
    /// execute concurrently over one `Arc<Processor>` (and genuinely warm
    /// each other through the shared [`QueryCaches`]).  Each caller
    /// supplies its own pinned knobs and cancellation token — the serving
    /// layer's per-session state.
    ///
    /// Join-graph mode requires the relational catalog to exist already:
    /// call [`Processor::database`] (and deploy any indexes) *before*
    /// sharing the processor.  The mutating twin [`Processor::execute_prepared`]
    /// does exactly that and then delegates here.
    pub fn execute_prepared_shared(
        &self,
        prepared: &Prepared,
        mode: Mode,
        cfg: &ExecConfig,
        cancel: &CancelToken,
    ) -> Result<Outcome, QueryError> {
        match mode {
            Mode::Interpreter => {
                let start = Instant::now();
                let items = interpret(&prepared.core, &self.doc)
                    .map_err(|e| QueryError::new("interpret", e))?;
                let elapsed = start.elapsed();
                Ok(self.outcome(items, elapsed, None, vec![]))
            }
            Mode::Stacked => {
                let rel = doc_relation(&self.doc);
                let ctx = EvalContext { doc: &rel };
                let start = Instant::now();
                let mut items = Vec::new();
                for b in &prepared.branches {
                    let table = eval_plan(&b.stacked, &ctx);
                    items.extend(result_items(&table));
                }
                let elapsed = start.elapsed();
                Ok(self.outcome(items, elapsed, None, vec![]))
            }
            Mode::JoinGraph => {
                let db = self.db.as_ref().ok_or_else(|| {
                    QueryError::new(
                        "catalog",
                        "relational catalog not built; call database() before \
                         sharing the processor across sessions",
                    )
                })?;
                // Plan each branch, through the plan cache when enabled.
                // The cache key carries the knob fingerprint so plans tuned
                // under one configuration never serve another.
                let fingerprint = cfg.cache_fingerprint();
                let mut plans: Vec<(Arc<PhysPlan>, Option<bool>)> =
                    Vec::with_capacity(prepared.branches.len());
                for b in &prepared.branches {
                    if cfg.plan_cache {
                        let (plan, hit) = optimize_cached(
                            &b.isolated.query,
                            db,
                            self.caches.plans(),
                            &fingerprint,
                        )
                        .map_err(|e| QueryError::new("optimize", e))?;
                        plans.push((plan, Some(hit)));
                    } else {
                        let plan = optimize(&b.isolated.query, db)
                            .map_err(|e| QueryError::new("optimize", e))?;
                        plans.push((Arc::new(plan), None));
                    }
                }
                let start = Instant::now();
                let mut items = Vec::new();
                let mut stats = ExecStats::default();
                let mut branch_actuals = Vec::with_capacity(plans.len());
                let exec_caches = ExecCaches {
                    builds: Some(self.caches.builds()),
                    postings: Some(self.caches.postings()),
                };
                for (b, (plan, plan_hit)) in prepared.branches.iter().zip(&plans) {
                    let out = QueryRequest::new(plan, db)
                        .config(cfg)
                        .caches(exec_caches)
                        .cancel(cancel)
                        .run()
                        .map_err(QueryError::Exec)?;
                    let mut actuals = out.cache_actuals;
                    actuals.plan_cache = *plan_hit;
                    stats.merge(&out.stats);
                    items.extend(result_items_from_sql(&out.rows, &b.isolated));
                    branch_actuals.push((out.stats, actuals));
                }
                let elapsed = start.elapsed();
                let explains = plans
                    .iter()
                    .zip(&branch_actuals)
                    .map(|((plan, _), (s, actuals))| explain_with_caches(plan, s, actuals))
                    .collect();
                Ok(self.outcome(items, elapsed, Some(stats), explains))
            }
        }
    }

    fn outcome(
        &self,
        items: Vec<Pre>,
        elapsed: Duration,
        exec_stats: Option<ExecStats>,
        explain: Vec<String>,
    ) -> Outcome {
        let serialized_nodes = serialized_node_count(&self.doc, &items);
        Outcome {
            items,
            serialized_nodes,
            elapsed,
            exec_stats,
            explain,
        }
    }

    /// Serialize a node sequence back to XML text.
    pub fn serialize(&self, items: &[Pre]) -> String {
        serialize_nodes(&self.doc, items)
    }
}

/// Split a Core expression with a comma sequence under its `return` into one
/// expression per sequence item (the paper performs the analogous
/// `return-tuple` → XMLTABLE substitution for Q6).
pub fn decompose_sequences(core: &CoreExpr) -> Vec<CoreExpr> {
    match core {
        CoreExpr::Seq(items) => items.iter().flat_map(decompose_sequences).collect(),
        CoreExpr::For { var, seq, body } => decompose_sequences(body)
            .into_iter()
            .map(|b| CoreExpr::For {
                var: var.clone(),
                seq: seq.clone(),
                body: Box::new(b),
            })
            .collect(),
        CoreExpr::Let { var, value, body } => decompose_sequences(body)
            .into_iter()
            .map(|b| CoreExpr::Let {
                var: var.clone(),
                value: value.clone(),
                body: Box::new(b),
            })
            .collect(),
        CoreExpr::If { cond, then } => decompose_sequences(then)
            .into_iter()
            .map(|t| CoreExpr::If {
                cond: cond.clone(),
                then: Box::new(t),
            })
            .collect(),
        other => vec![other.clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AUCTION: &str = r#"<site>
        <open_auctions>
          <open_auction id="a1"><initial>10</initial><bidder><increase>5</increase></bidder></open_auction>
          <open_auction id="a2"><initial>20</initial></open_auction>
          <open_auction id="a3"><initial>7</initial><bidder><increase>1</increase></bidder><bidder><increase>2</increase></bidder></open_auction>
        </open_auctions>
        <closed_auctions>
          <closed_auction><price>600</price><itemref item="i1"/></closed_auction>
          <closed_auction><price>100</price><itemref item="i2"/></closed_auction>
        </closed_auctions>
        <items>
          <item id="i1"><name>bike</name></item>
          <item id="i2"><name>car</name></item>
        </items>
        <categories>
          <category id="c1"><name>vehicles</name></category>
        </categories>
      </site>"#;

    fn processor() -> Processor {
        let mut p = Processor::new();
        p.load_document("auction.xml", AUCTION).unwrap();
        p.create_default_indexes();
        p
    }

    fn assert_all_modes_agree(p: &mut Processor, query: &str) -> usize {
        let oracle = p.execute(query, Mode::Interpreter).unwrap();
        let stacked = p.execute(query, Mode::Stacked).unwrap();
        let joined = p.execute(query, Mode::JoinGraph).unwrap();
        assert_eq!(stacked.items, oracle.items, "stacked vs oracle for {query}");
        assert_eq!(
            joined.items, oracle.items,
            "join graph vs oracle for {query}"
        );
        oracle.items.len()
    }

    #[test]
    fn q1_all_modes_agree() {
        let mut p = processor();
        let n = assert_all_modes_agree(
            &mut p,
            r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
        );
        assert_eq!(n, 2);
    }

    #[test]
    fn path_queries_all_modes_agree() {
        let mut p = processor();
        assert_all_modes_agree(&mut p, "//closed_auction/price/text()");
        assert_all_modes_agree(&mut p, "/site/items/item[@id = \"i1\"]/name/text()");
        assert_all_modes_agree(&mut p, "//open_auction[initial > 8]");
    }

    #[test]
    fn q2_style_join_all_modes_agree() {
        let mut p = processor();
        let n = assert_all_modes_agree(
            &mut p,
            r#"let $a := doc("auction.xml")
               for $ca in $a//closed_auction[price > 500],
                   $i in $a//item
               where $ca/itemref/@item = $i/@id
               return $i/name"#,
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn sequence_return_decomposes_and_matches_as_multiset() {
        let mut p = processor();
        let q = r#"for $i in //item return ($i/name, $i/@id)"#;
        let oracle = p.execute(q, Mode::Interpreter).unwrap();
        let joined = p.execute(q, Mode::JoinGraph).unwrap();
        let mut a = oracle.items.clone();
        let mut b = joined.items.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "sequence results agree as multisets");
        assert_eq!(oracle.items.len(), 4);
    }

    #[test]
    fn prepare_exposes_all_artifacts() {
        let p = processor();
        let prepared = p
            .prepare(r#"doc("auction.xml")/descendant::open_auction[bidder]"#)
            .unwrap();
        assert_eq!(prepared.branches.len(), 1);
        let b = &prepared.branches[0];
        assert!(b.stacked.size() > b.simplified.size());
        assert!(b.isolated.sql().contains("SELECT DISTINCT"));
        assert_eq!(b.isolated.query.from.len(), 3);
        assert!(b.rewrite_report.applications > 0);
    }

    #[test]
    fn serialization_and_node_counts() {
        let mut p = processor();
        let out = p
            .execute("//item[@id = \"i1\"]/name", Mode::JoinGraph)
            .unwrap();
        assert_eq!(out.items.len(), 1);
        assert_eq!(out.serialized_nodes, 2);
        let xml = p.serialize(&out.items);
        assert_eq!(xml, "<name>bike</name>");
        let stats = out.exec_stats.as_ref().unwrap();
        assert!(
            !stats.operators.is_empty(),
            "per-operator counters recorded"
        );
        assert_eq!(out.explain.len(), 1);
        assert!(
            out.explain[0].contains("operator stats"),
            "explain carries actuals: {}",
            out.explain[0]
        );
    }

    #[test]
    fn session_build_cache_survives_repeats_and_catalog_changes() {
        // The tiny fixture mostly plans nested-loop joins (the engine crate
        // covers cache hits directly); at the session level the invariant
        // is that repeated executions — with the build cache in the loop —
        // keep returning identical results across catalog changes.
        let mut p = processor();
        let q = r#"let $a := doc("auction.xml")
                   for $ca in $a//closed_auction, $i in $a//item
                   where $ca/itemref/@item = $i/@id
                   return $i/name"#;
        let first = p.execute(q, Mode::JoinGraph).unwrap();
        let second = p.execute(q, Mode::JoinGraph).unwrap();
        assert_eq!(first.items, second.items);
        assert!(p.build_cache().hits() <= p.build_cache().lookups());
        // New document DDL moves the catalog version; results stay right.
        p.load_document("other.xml", "<x><y/></x>").unwrap();
        p.create_default_indexes();
        let third = p.execute(q, Mode::JoinGraph).unwrap();
        assert_eq!(first.items, third.items);
    }

    #[test]
    fn plan_cache_serves_repeated_queries_and_shows_in_explain() {
        let mut p = processor();
        let q = r#"doc("auction.xml")/descendant::open_auction[bidder]"#;
        let cold = p.execute(q, Mode::JoinGraph).unwrap();
        assert!(
            cold.explain[0].contains("plan_cache=miss"),
            "first run misses: {}",
            cold.explain[0]
        );
        let warm = p.execute(q, Mode::JoinGraph).unwrap();
        assert_eq!(warm.items, cold.items);
        assert!(
            warm.explain[0].contains("plan_cache=hit"),
            "repeat run hits: {}",
            warm.explain[0]
        );
        assert!(p.caches().plans().hits() > 0);
        // DDL moves the catalog version: the cached plan is stale.
        p.create_default_indexes();
        let after_ddl = p.execute(q, Mode::JoinGraph).unwrap();
        assert_eq!(after_ddl.items, cold.items);
        assert!(
            after_ddl.explain[0].contains("plan_cache=miss"),
            "catalog bump invalidates: {}",
            after_ddl.explain[0]
        );
    }

    #[test]
    fn shared_caches_warm_across_processors() {
        let caches = QueryCaches::new();
        let q = r#"doc("auction.xml")/descendant::open_auction[bidder]"#;
        let mut a = Processor::with_caches(caches.clone());
        a.load_document("auction.xml", AUCTION).unwrap();
        a.create_default_indexes();
        let first = a.execute(q, Mode::JoinGraph).unwrap();
        // A second processor over the *same* document sees the same catalog
        // only after building its own database — which gets a fresh catalog
        // version, so correctness never depends on sharing.  What must hold:
        // identical results, and the shared handles observing all traffic.
        let mut b = Processor::with_caches(caches.clone());
        b.load_document("auction.xml", AUCTION).unwrap();
        b.create_default_indexes();
        let second = b.execute(q, Mode::JoinGraph).unwrap();
        assert_eq!(first.items, second.items);
        // Both processors consulted the same shared handles.
        assert!(caches.plans().lookups() >= 2, "shared plan cache saw both");
        assert!(caches.postings().lookups() > 0 || caches.builds().lookups() > 0);
    }

    #[test]
    fn caches_off_config_restores_seed_explain_format() {
        let mut p = processor();
        let q = r#"doc("auction.xml")/descendant::open_auction[bidder]"#;
        let cfg = ExecConfig::from_env()
            .with_build_cache(false)
            .with_plan_cache(false)
            .with_postings_cache(false);
        p.set_exec_config(Some(cfg));
        let off = p.execute(q, Mode::JoinGraph).unwrap();
        assert!(
            !off.explain[0].contains("-- caches:"),
            "caches off leaves the explain untouched: {}",
            off.explain[0]
        );
        assert_eq!(p.caches().plans().lookups(), 0);
        assert_eq!(p.caches().postings().lookups(), 0);
        // Flip the knobs back on: the same processor starts caching.
        p.set_exec_config(None);
        let on = p.execute(q, Mode::JoinGraph).unwrap();
        assert_eq!(on.items, off.items);
        assert!(on.explain[0].contains("plan_cache="), "{}", on.explain[0]);
    }

    #[test]
    fn advisor_proposes_and_deploys_indexes() {
        let mut p = Processor::new();
        p.load_document("auction.xml", AUCTION).unwrap();
        let proposals = p
            .advise_and_deploy(&[r#"doc("auction.xml")/descendant::open_auction[bidder]"#])
            .unwrap();
        assert!(!proposals.is_empty());
        // The deployed indexes are immediately usable.
        let out = p
            .execute(
                r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
                Mode::JoinGraph,
            )
            .unwrap();
        assert_eq!(out.items.len(), 2);
    }

    #[test]
    fn errors_are_reported_per_stage() {
        let mut p = processor();
        assert_eq!(
            p.execute("for $x in", Mode::JoinGraph).unwrap_err().stage(),
            "parse"
        );
        assert_eq!(
            p.execute("$undefined/a", Mode::JoinGraph)
                .unwrap_err()
                .stage(),
            "compile"
        );
    }

    #[test]
    fn stale_cancel_is_cleared_before_execution() {
        let mut p = processor();
        let handle = p.cancel_handle();
        handle.cancel();
        // The token is re-armed at the start of every execution, so a
        // cancel aimed at a previous (finished) query does not abort the
        // next one.
        let ok = p.execute("//item", Mode::JoinGraph);
        assert!(ok.is_ok(), "pre-armed cancel is cleared: {ok:?}");
    }

    #[test]
    fn exec_error_maps_to_exec_stage() {
        let e = QueryError::Exec(ExecError::Cancelled);
        assert_eq!(e.stage(), "exec");
        assert_eq!(e.to_string(), "exec error: query cancelled");
    }

    #[test]
    fn decompose_handles_nested_structures() {
        let core =
            xqjg_xquery::parse_and_normalize("for $a in doc(\"d\")//x return ($a/b, $a/c)", None)
                .unwrap();
        let branches = decompose_sequences(&core);
        assert_eq!(branches.len(), 2);
        for b in &branches {
            assert!(matches!(b, CoreExpr::For { .. }));
        }
    }
}
