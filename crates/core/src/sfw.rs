//! Join graph extraction: from the (simplified) algebra DAG to a single
//! `SELECT DISTINCT … FROM doc d1,…,dn WHERE … ORDER BY …` block.
//!
//! This realizes the δ⃝ and ⋈⃝ goals of Fig. 5 on the DAG itself:
//!
//! * the DAG is flattened **with memoization**, so a sub-plan shared by
//!   several consumers (a `let`-bound variable, the `#inner`-numbered
//!   binding sequence of a `for` loop) contributes its `doc` references and
//!   predicates exactly once — the equi-joins the FOR/IF rules introduced on
//!   `#`-generated columns therefore compare a row id with itself and are
//!   dropped (the effect of rules (8)–(11)),
//! * every reference to the `doc` encoding becomes one FROM alias carrying
//!   its kind/name/value selections, and the structural axis predicates
//!   become conjunctive range predicates between aliases,
//! * redundant self-joins on the `pre` key (introduced by the STEP and
//!   atomization rules to re-fetch node properties) are merged away,
//! * the single remaining duplicate elimination and row ranking form the
//!   plan tail: `SELECT DISTINCT` over the result item and the iteration
//!   keys, `ORDER BY` over the spliced ranking criteria (rules (2), (17)).

use std::collections::HashMap;
use xqjg_algebra::{OpId, OpKind, Plan, Scalar};
use xqjg_engine::{
    ColRef, FromItem, OrderItem, SelectItem, SfwQuery, SqlCmp, SqlExpr, SqlPredicate,
};

/// Error raised when a plan cannot be cast into a single SFW block.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolateError {
    /// Description of the obstacle.
    pub message: String,
}

impl IsolateError {
    fn new(m: impl Into<String>) -> Self {
        IsolateError { message: m.into() }
    }
}

impl std::fmt::Display for IsolateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "join graph isolation failed: {}", self.message)
    }
}

impl std::error::Error for IsolateError {}

/// Symbolic value of a plan column during flattening.
#[derive(Debug, Clone, PartialEq)]
enum ColExpr {
    /// An ordinary SQL scalar over the FROM aliases.
    Sql(SqlExpr),
    /// The surrogate row id attached by `#` — only meaningful in equality
    /// with itself.
    RowId(OpId),
    /// An ordering surrogate produced by `ϱ`: the spliced list of ranking
    /// criteria.
    Order(Vec<SqlExpr>),
}

type ColMap = HashMap<String, ColExpr>;

/// The isolated query: join graph + plan tail, plus bookkeeping for mapping
/// results back to node sequences.
#[derive(Debug, Clone)]
pub struct Isolated {
    /// The emitted SFW block.
    pub query: SfwQuery,
    /// Name of the output column holding the result nodes' `pre` ranks.
    pub item_column: String,
}

impl Isolated {
    /// SQL text of the isolated query (Fig. 8 / Fig. 9 artifacts).
    pub fn sql(&self) -> String {
        self.query.to_sql()
    }
}

/// Flatten a (simplified) plan into a single SFW block.
pub fn isolate_sfw(plan: &Plan) -> Result<Isolated, IsolateError> {
    let mut fl = Flattener {
        plan,
        from: Vec::new(),
        predicates: Vec::new(),
        memo: HashMap::new(),
        alias_counter: 0,
        saw_distinct: false,
    };
    let input = match plan.op(plan.root()) {
        OpKind::Serialize { input } => *input,
        _ => plan.root(),
    };
    let map = fl.flatten(input)?;

    // The result item.
    let item = match map.get("item") {
        Some(ColExpr::Sql(e)) => e.clone(),
        Some(other) => {
            return Err(IsolateError::new(format!(
                "result item column is not a scalar expression: {other:?}"
            )))
        }
        None => return Err(IsolateError::new("plan produces no item column")),
    };

    // The ordering: the spliced ranking criteria behind `pos` (and, for
    // nested loops, the iteration order encoded in `iter`).
    let mut order_exprs: Vec<SqlExpr> = Vec::new();
    for col in ["iter", "pos"] {
        match map.get(col) {
            Some(ColExpr::Order(list)) => order_exprs.extend(list.iter().cloned()),
            Some(ColExpr::Sql(e)) => order_exprs.push(e.clone()),
            _ => {}
        }
    }
    order_exprs.push(item.clone());
    // Drop constants and duplicates, keep only plain column references
    // (computed ordering keys do not occur in this fragment).
    let mut seen: Vec<SqlExpr> = Vec::new();
    let mut order_by: Vec<ColRef> = Vec::new();
    for e in order_exprs {
        match &e {
            SqlExpr::Col(c) => {
                if !seen.contains(&e) {
                    seen.push(e.clone());
                    order_by.push(c.clone());
                }
            }
            SqlExpr::Lit(_) => {}
            SqlExpr::Add(_, _) => {
                return Err(IsolateError::new("computed ordering key"));
            }
        }
    }

    // SELECT list: the item plus the ordering keys (Fig. 9 keeps the
    // iteration keys in the DISTINCT clause for exactly this reason).
    let mut select = vec![SelectItem::Expr {
        expr: item.clone(),
        alias: "item".to_string(),
    }];
    for (i, col) in order_by.iter().enumerate() {
        let expr = SqlExpr::Col(col.clone());
        if expr == item {
            continue;
        }
        select.push(SelectItem::Expr {
            expr,
            alias: format!("o{}", i + 1),
        });
    }

    let mut query = SfwQuery {
        distinct: true,
        select,
        from: fl.from,
        where_clause: fl.predicates,
        order_by: order_by.into_iter().map(|col| OrderItem { col }).collect(),
    };
    merge_redundant_aliases(&mut query);
    dedup(&mut query);
    Ok(Isolated {
        query,
        item_column: "item".to_string(),
    })
}

struct Flattener<'a> {
    plan: &'a Plan,
    from: Vec<FromItem>,
    predicates: Vec<SqlPredicate>,
    memo: HashMap<OpId, ColMap>,
    alias_counter: usize,
    saw_distinct: bool,
}

impl<'a> Flattener<'a> {
    fn flatten(&mut self, id: OpId) -> Result<ColMap, IsolateError> {
        // `doc` deliberately bypasses the memo: every *reference* to the
        // encoding table becomes its own alias (self-join bundle).
        if let Some(m) = self.memo.get(&id) {
            if !matches!(self.plan.op(id), OpKind::DocTable) {
                return Ok(m.clone());
            }
        }
        let map = self.flatten_uncached(id)?;
        if !matches!(self.plan.op(id), OpKind::DocTable) {
            self.memo.insert(id, map.clone());
        }
        Ok(map)
    }

    fn flatten_uncached(&mut self, id: OpId) -> Result<ColMap, IsolateError> {
        match self.plan.op(id).clone() {
            OpKind::DocTable => {
                self.alias_counter += 1;
                let alias = format!("d{}", self.alias_counter);
                self.from.push(FromItem {
                    table: "doc".to_string(),
                    alias: alias.clone(),
                });
                let mut m = ColMap::new();
                for col in xqjg_algebra::DOC_COLUMNS {
                    m.insert(col.to_string(), ColExpr::Sql(SqlExpr::col(&alias, col)));
                }
                Ok(m)
            }
            OpKind::Literal { columns, rows } => {
                if rows.len() != 1 {
                    return Err(IsolateError::new(format!(
                        "literal table with {} rows cannot be inlined",
                        rows.len()
                    )));
                }
                let mut m = ColMap::new();
                for (i, col) in columns.iter().enumerate() {
                    m.insert(col.clone(), ColExpr::Sql(SqlExpr::Lit(rows[0][i].clone())));
                }
                Ok(m)
            }
            OpKind::Serialize { input } => self.flatten(input),
            OpKind::Project { input, cols } => {
                let m = self.flatten(input)?;
                let mut out = ColMap::new();
                for (new, old) in cols {
                    let v = m.get(&old).ok_or_else(|| {
                        IsolateError::new(format!("projection references unknown column {old:?}"))
                    })?;
                    out.insert(new, v.clone());
                }
                Ok(out)
            }
            OpKind::Select { input, pred } => {
                let m = self.flatten(input)?;
                for c in &pred.conjuncts {
                    self.add_predicate(&m, &m, c)?;
                }
                Ok(m)
            }
            OpKind::Attach { input, col, value } => {
                let mut m = self.flatten(input)?;
                m.insert(col, ColExpr::Sql(SqlExpr::Lit(value)));
                Ok(m)
            }
            OpKind::RowNum { input, col } => {
                let mut m = self.flatten(input)?;
                m.insert(col, ColExpr::RowId(id));
                Ok(m)
            }
            OpKind::Distinct { input } => {
                self.saw_distinct = true;
                self.flatten(input)
            }
            OpKind::Rank {
                input,
                col,
                order_by,
            } => {
                let m = self.flatten(input)?;
                let mut list = Vec::new();
                for c in &order_by {
                    match m.get(c) {
                        Some(ColExpr::Sql(SqlExpr::Lit(_))) => {}
                        Some(ColExpr::Sql(e)) => list.push(e.clone()),
                        Some(ColExpr::Order(nested)) => list.extend(nested.iter().cloned()),
                        Some(ColExpr::RowId(_)) | None => {
                            return Err(IsolateError::new(format!(
                                "ranking criterion {c:?} is not expressible in the join graph"
                            )))
                        }
                    }
                }
                let mut out = m;
                out.insert(col, ColExpr::Order(list));
                Ok(out)
            }
            OpKind::Cross { left, right } => {
                let lm = self.flatten(left)?;
                let rm = self.flatten(right)?;
                Ok(merge_maps(lm, rm))
            }
            OpKind::Join { left, right, pred } => {
                let lm = self.flatten(left)?;
                let rm = self.flatten(right)?;
                let merged = merge_maps(lm, rm);
                for c in &pred.conjuncts {
                    self.add_predicate(&merged, &merged, c)?;
                }
                Ok(merged)
            }
        }
    }

    fn add_predicate(
        &mut self,
        lmap: &ColMap,
        rmap: &ColMap,
        cmp: &xqjg_algebra::Comparison,
    ) -> Result<(), IsolateError> {
        let lhs = resolve_scalar(&cmp.lhs, lmap)?;
        let rhs = resolve_scalar(&cmp.rhs, rmap)?;
        match (lhs, rhs) {
            (ColExpr::RowId(a), ColExpr::RowId(b)) => {
                if a == b && cmp.op == xqjg_algebra::CmpOp::Eq {
                    // iter = inner over the same #-numbered sub-plan: the
                    // join re-associates rows with themselves — drop it.
                    Ok(())
                } else {
                    Err(IsolateError::new(
                        "comparison between unrelated surrogate row ids",
                    ))
                }
            }
            (ColExpr::Sql(l), ColExpr::Sql(r)) => {
                // Constant-fold trivially true comparisons (loop literals).
                if let (SqlExpr::Lit(a), SqlExpr::Lit(b)) = (&l, &r) {
                    let holds = match a.sql_cmp(b) {
                        Some(ord) => sql_op(cmp.op).eval(ord),
                        None => false,
                    };
                    if holds {
                        return Ok(());
                    }
                    return Err(IsolateError::new(
                        "query contains an unsatisfiable constant comparison",
                    ));
                }
                self.predicates
                    .push(SqlPredicate::new(l, sql_op(cmp.op), r));
                Ok(())
            }
            (l, r) => Err(IsolateError::new(format!(
                "predicate mixes incompatible column kinds: {l:?} vs {r:?}"
            ))),
        }
    }
}

fn merge_maps(mut l: ColMap, r: ColMap) -> ColMap {
    for (k, v) in r {
        l.insert(k, v);
    }
    l
}

fn resolve_scalar(s: &Scalar, map: &ColMap) -> Result<ColExpr, IsolateError> {
    match s {
        Scalar::Const(v) => Ok(ColExpr::Sql(SqlExpr::Lit(v.clone()))),
        Scalar::Col(c) => map
            .get(c)
            .cloned()
            .ok_or_else(|| IsolateError::new(format!("unknown column {c:?} in predicate"))),
        Scalar::Add(a, b) => {
            let l = resolve_scalar(a, map)?;
            let r = resolve_scalar(b, map)?;
            match (l, r) {
                (ColExpr::Sql(l), ColExpr::Sql(r)) => Ok(ColExpr::Sql(l + r)),
                _ => Err(IsolateError::new("arithmetic over surrogate columns")),
            }
        }
    }
}

fn sql_op(op: xqjg_algebra::CmpOp) -> SqlCmp {
    use xqjg_algebra::CmpOp::*;
    match op {
        Eq => SqlCmp::Eq,
        Ne => SqlCmp::Ne,
        Lt => SqlCmp::Lt,
        Le => SqlCmp::Le,
        Gt => SqlCmp::Gt,
        Ge => SqlCmp::Ge,
    }
}

/// Merge aliases joined on `a.pre = b.pre`: both range over the `doc`
/// encoding whose key is `pre`, so the self-join re-fetches the same row
/// (the STEP / atomization pattern) and one alias suffices — the effect of
/// rules (9)/(11).
fn merge_redundant_aliases(query: &mut SfwQuery) {
    loop {
        let mut replace: Option<(String, String)> = None;
        for p in &query.where_clause {
            if p.op != SqlCmp::Eq {
                continue;
            }
            if let (SqlExpr::Col(a), SqlExpr::Col(b)) = (&p.lhs, &p.rhs) {
                if a.column == "pre" && b.column == "pre" && a.table != b.table {
                    replace = Some((b.table.clone(), a.table.clone()));
                    break;
                }
            }
        }
        let Some((from_alias, to_alias)) = replace else {
            break;
        };
        // Substitute the alias everywhere.
        for p in &mut query.where_clause {
            substitute_alias(&mut p.lhs, &from_alias, &to_alias);
            substitute_alias(&mut p.rhs, &from_alias, &to_alias);
        }
        for s in &mut query.select {
            if let SelectItem::Expr { expr, .. } = s {
                substitute_alias(expr, &from_alias, &to_alias);
            }
        }
        for o in &mut query.order_by {
            if o.col.table == from_alias {
                o.col.table = to_alias.clone();
            }
        }
        query.from.retain(|f| f.alias != from_alias);
        // Drop predicates that became trivially true (x = x).
        query
            .where_clause
            .retain(|p| p.lhs != p.rhs || p.op != SqlCmp::Eq);
    }
}

fn substitute_alias(expr: &mut SqlExpr, from: &str, to: &str) {
    match expr {
        SqlExpr::Col(c) => {
            if c.table == from {
                c.table = to.to_string();
            }
        }
        SqlExpr::Lit(_) => {}
        SqlExpr::Add(a, b) => {
            substitute_alias(a, from, to);
            substitute_alias(b, from, to);
        }
    }
}

/// Remove duplicate predicates, select items and order keys, and renumber
/// aliases densely (d1, d2, …) for readable SQL.
fn dedup(query: &mut SfwQuery) {
    let mut seen = Vec::new();
    query.where_clause.retain(|p| {
        if seen.contains(p) {
            false
        } else {
            seen.push(p.clone());
            true
        }
    });
    let mut seen_order = Vec::new();
    query.order_by.retain(|o| {
        if seen_order.contains(&o.col) {
            false
        } else {
            seen_order.push(o.col.clone());
            true
        }
    });
    // Renumber aliases in FROM order.
    let mapping: HashMap<String, String> = query
        .from
        .iter()
        .enumerate()
        .map(|(i, f)| (f.alias.clone(), format!("d{}", i + 1)))
        .collect();
    for f in &mut query.from {
        f.alias = mapping[&f.alias].clone();
    }
    for p in &mut query.where_clause {
        rename_expr(&mut p.lhs, &mapping);
        rename_expr(&mut p.rhs, &mapping);
    }
    for s in &mut query.select {
        if let SelectItem::Expr { expr, .. } = s {
            rename_expr(expr, &mapping);
        }
    }
    for o in &mut query.order_by {
        if let Some(new) = mapping.get(&o.col.table) {
            o.col.table = new.clone();
        }
    }
}

fn rename_expr(expr: &mut SqlExpr, mapping: &HashMap<String, String>) {
    match expr {
        SqlExpr::Col(c) => {
            if let Some(new) = mapping.get(&c.table) {
                c.table = new.clone();
            }
        }
        SqlExpr::Lit(_) => {}
        SqlExpr::Add(a, b) => {
            rename_expr(a, mapping);
            rename_expr(b, mapping);
        }
    }
}

/// Rebuild an algebra plan from the isolated SFW block (join bundle over
/// `doc` + plan tail).  This is the Fig. 7 artifact: it makes the isolated
/// plan renderable and directly evaluable by the algebra evaluator, which
/// the tests use to cross-check the rewrite against the stacked plan.
pub fn isolated_plan(isolated: &Isolated) -> Plan {
    use xqjg_algebra::{Comparison, Predicate};
    let q = &isolated.query;
    let mut plan = Plan::new();
    let doc = plan.add(OpKind::DocTable);

    // One selection + renaming projection per alias.
    let mut alias_nodes: Vec<(String, OpId)> = Vec::new();
    for f in &q.from {
        let local: Vec<&SqlPredicate> = q
            .where_clause
            .iter()
            .filter(|p| {
                let ts = p.tables();
                ts.len() == 1 && ts.contains(&f.alias)
            })
            .collect();
        let mut node = doc;
        let conjuncts: Vec<Comparison> = local
            .iter()
            .map(|p| {
                Comparison::new(
                    scalar_local(&p.lhs, &f.alias),
                    alg_op(p.op),
                    scalar_local(&p.rhs, &f.alias),
                )
            })
            .collect();
        if !conjuncts.is_empty() {
            node = plan.add(OpKind::Select {
                input: node,
                pred: Predicate::all(conjuncts),
            });
        }
        // Rename columns to alias-qualified names so the join bundle stays
        // collision-free.
        let cols: Vec<(String, String)> = xqjg_algebra::DOC_COLUMNS
            .iter()
            .map(|c| (format!("{}_{}", f.alias, c), c.to_string()))
            .collect();
        node = plan.add(OpKind::Project { input: node, cols });
        alias_nodes.push((f.alias.clone(), node));
    }

    // Chain the aliases into a join bundle, attaching each cross-alias
    // predicate at the first join where both sides are available.
    let mut bound: Vec<String> = vec![alias_nodes[0].0.clone()];
    let mut current = alias_nodes[0].1;
    for (alias, node) in alias_nodes.iter().skip(1) {
        let mut conjuncts = Vec::new();
        for p in q.join_predicates() {
            let ts = p.tables();
            if ts.contains(alias)
                && ts.iter().all(|t| t == alias || bound.contains(t))
                && !ts.iter().all(|t| bound.contains(t))
            {
                conjuncts.push(Comparison::new(
                    scalar_qualified(&p.lhs),
                    alg_op(p.op),
                    scalar_qualified(&p.rhs),
                ));
            }
        }
        current = if conjuncts.is_empty() {
            plan.add(OpKind::Cross {
                left: current,
                right: *node,
            })
        } else {
            plan.add(OpKind::Join {
                left: current,
                right: *node,
                pred: Predicate::all(conjuncts),
            })
        };
        bound.push(alias.clone());
    }

    // Plan tail: projection to the select list, duplicate elimination, rank.
    let cols: Vec<(String, String)> = q
        .select
        .iter()
        .filter_map(|s| match s {
            SelectItem::Expr { expr, alias } => match expr {
                SqlExpr::Col(c) => Some((alias.clone(), format!("{}_{}", c.table, c.column))),
                _ => None,
            },
            SelectItem::Star(_) => None,
        })
        .collect();
    let order_cols: Vec<(String, String)> = q
        .order_by
        .iter()
        .enumerate()
        .map(|(i, o)| {
            (
                format!("ord{}", i + 1),
                format!("{}_{}", o.col.table, o.col.column),
            )
        })
        .collect();
    let mut all_cols = cols;
    for (n, src) in &order_cols {
        if !all_cols.iter().any(|(_, s)| s == src) {
            all_cols.push((n.clone(), src.clone()));
        }
    }
    let projected = plan.add(OpKind::Project {
        input: current,
        cols: all_cols.clone(),
    });
    let distinct = plan.add(OpKind::Distinct { input: projected });
    let ranked = if order_cols.is_empty() {
        distinct
    } else {
        let order_names: Vec<String> = order_cols
            .iter()
            .map(|(n, src)| {
                all_cols
                    .iter()
                    .find(|(_, s)| s == src)
                    .map(|(name, _)| name.clone())
                    .unwrap_or_else(|| n.clone())
            })
            .collect();
        plan.add(OpKind::Rank {
            input: distinct,
            col: "pos".to_string(),
            order_by: order_names,
        })
    };
    let root = plan.add(OpKind::Serialize { input: ranked });
    plan.set_root(root);
    plan
}

fn alg_op(op: SqlCmp) -> xqjg_algebra::CmpOp {
    use xqjg_algebra::CmpOp;
    match op {
        SqlCmp::Eq => CmpOp::Eq,
        SqlCmp::Ne => CmpOp::Ne,
        SqlCmp::Lt => CmpOp::Lt,
        SqlCmp::Le => CmpOp::Le,
        SqlCmp::Gt => CmpOp::Gt,
        SqlCmp::Ge => CmpOp::Ge,
    }
}

fn scalar_local(expr: &SqlExpr, _alias: &str) -> Scalar {
    match expr {
        SqlExpr::Col(c) => Scalar::col(&c.column),
        SqlExpr::Lit(v) => Scalar::Const(v.clone()),
        SqlExpr::Add(a, b) => scalar_local(a, _alias) + scalar_local(b, _alias),
    }
}

fn scalar_qualified(expr: &SqlExpr) -> Scalar {
    match expr {
        SqlExpr::Col(c) => Scalar::col(format!("{}_{}", c.table, c.column)),
        SqlExpr::Lit(v) => Scalar::Const(v.clone()),
        SqlExpr::Add(a, b) => scalar_qualified(a) + scalar_qualified(b),
    }
}

/// Extract the result node sequence from an engine result table produced by
/// the isolated query.
pub fn result_items_from_sql(table: &xqjg_store::Table, isolated: &Isolated) -> Vec<xqjg_xml::Pre> {
    let idx = table
        .schema()
        .index_of(&isolated.item_column)
        .expect("item column present");
    table
        .rows()
        .iter()
        .filter_map(|r| r[idx].as_i64())
        .map(|i| xqjg_xml::Pre(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::simplify;
    use xqjg_compiler::compile;
    use xqjg_xquery::parse_and_normalize;

    fn isolate(query: &str) -> Isolated {
        let core = parse_and_normalize(query, Some("auction.xml")).unwrap();
        let mut plan = compile(&core).unwrap().plan;
        simplify(&mut plan);
        isolate_sfw(&plan).unwrap()
    }

    #[test]
    fn q1_isolates_to_three_alias_self_join() {
        let iso = isolate(r#"doc("auction.xml")/descendant::open_auction[bidder]"#);
        let sql = iso.sql();
        // Fig. 8: three doc aliases, DISTINCT, ORDER BY the open_auction pre.
        assert_eq!(iso.query.from.len(), 3, "{sql}");
        assert!(iso.query.distinct);
        assert_eq!(iso.query.order_by.len(), 1, "{sql}");
        assert!(sql.contains("'open_auction'"));
        assert!(sql.contains("'bidder'"));
        assert!(sql.contains("'DOC'"));
        assert!(sql.contains("ORDER BY"));
        // No surrogate iter/inner columns survive into the SQL.
        assert!(!sql.contains("iter"), "{sql}");
    }

    #[test]
    fn q1_sql_round_trips_through_the_engine_parser() {
        let iso = isolate(r#"doc("auction.xml")/descendant::open_auction[bidder]"#);
        let reparsed = xqjg_engine::parse_sql(&iso.sql()).unwrap();
        assert_eq!(reparsed, iso.query);
    }

    #[test]
    fn value_predicate_lands_in_where_clause() {
        let iso = isolate(r#"doc("auction.xml")/descendant::closed_auction[price > 500]"#);
        let sql = iso.sql();
        assert!(
            sql.contains("data > 500")
                || sql.contains("data' > 500")
                || sql.contains(".data > 500"),
            "{sql}"
        );
        assert!(iso.query.from.len() >= 3, "{sql}");
    }

    #[test]
    fn flwor_with_value_join_isolates() {
        let iso = isolate(
            r#"for $ca in doc("auction.xml")//closed_auction[price > 500],
                   $i in doc("auction.xml")//item
               where $ca/itemref/@item = $i/@id
               return $i/name"#,
        );
        let sql = iso.sql();
        // Aliases: doc root (shared let-style), closed_auction, price,
        // itemref, @item, item, @id, name (the two doc() calls map to the
        // same encoded document but remain separate references).
        assert!(iso.query.from.len() >= 8, "{sql}");
        // The attribute value join appears as a value = value predicate.
        assert!(
            sql.contains(".value = d") || sql.contains("value ="),
            "{sql}"
        );
        // Ordering: closed_auction pre, item pre, then the result name pre.
        assert!(iso.query.order_by.len() >= 3, "{sql}");
    }

    #[test]
    fn isolated_plan_reconstruction_is_well_formed() {
        let iso = isolate(r#"doc("auction.xml")/descendant::open_auction[bidder]"#);
        let plan = isolated_plan(&iso);
        let h = xqjg_algebra::histogram(&plan);
        assert_eq!(h.distinct, 1, "single δ in the plan tail");
        assert!(h.rank <= 1, "at most one ϱ in the plan tail");
        assert_eq!(h.doc, 1, "doc is the only shared leaf");
        assert!(h.join + h.cross == 2, "three aliases joined pairwise");
        let rendered = xqjg_algebra::render_text(&plan);
        assert!(rendered.contains("serialize"));
    }
}
