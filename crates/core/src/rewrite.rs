//! Plan simplification rewrites (the house-cleaning and ϱ-goal rules of
//! Fig. 5).
//!
//! The rules implemented here operate directly on the algebra DAG and are
//! applied to a fixpoint, guided by the inferred plan properties:
//!
//! * Rule (1)–(3): drop `#`, `ϱ`, `@` operators whose column is not needed
//!   upstream (`icols`),
//! * Rule (4): prune projection columns to `icols`,
//! * Rule (6): drop a `δ` whose output is duplicate-eliminated upstream
//!   anyway (`set`),
//! * Rule (12): turn a single-criterion `ϱ` into a column-copying projection
//!   (document order *is* the sequence order),
//! * Rule (13): drop constant columns from ranking criteria.
//!
//! The remaining goals of Fig. 5 — moving the one surviving `δ` into the
//! plan tail and pushing/removing the equi-joins introduced by the FOR/IF
//! rules (rules 8–11, 14–17) — are realized during join-graph extraction in
//! [`crate::sfw`], which flattens the (shared) DAG into a single
//! `SELECT DISTINCT … FROM … WHERE … ORDER BY …` block; see DESIGN.md for
//! the correspondence.

use crate::properties::Properties;
use std::collections::HashSet;
use xqjg_algebra::{OpId, OpKind, Plan};

/// Outcome of the simplification pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Number of rule applications performed.
    pub applications: usize,
    /// Operators before simplification.
    pub ops_before: usize,
    /// Operators after simplification.
    pub ops_after: usize,
}

/// Apply the simplification rules to a fixpoint.
pub fn simplify(plan: &mut Plan) -> RewriteReport {
    let mut report = RewriteReport {
        ops_before: plan.size(),
        ..Default::default()
    };
    loop {
        plan.garbage_collect();
        let props = Properties::infer(plan);
        if !apply_one(plan, &props) {
            break;
        }
        report.applications += 1;
        // Safety valve: plans are finite and every rule strictly shrinks or
        // simplifies, but guard against pathological loops anyway.
        if report.applications > 10_000 {
            break;
        }
    }
    plan.garbage_collect();
    report.ops_after = plan.size();
    report
}

/// Apply the first applicable rule; returns whether anything changed.
fn apply_one(plan: &mut Plan, props: &Properties) -> bool {
    let nodes = plan.topo_order();
    for &id in nodes.iter().rev() {
        let icols = props.icols_of(id).clone();
        match plan.op(id).clone() {
            // Rules (1)–(3): unused attached columns.
            OpKind::RowNum { input, col }
            | OpKind::Attach { input, col, .. }
            | OpKind::Rank { input, col, .. }
                if !icols.contains(&col) =>
            {
                replace_uses(plan, id, input);
                return true;
            }
            // Rule (13): constant ranking criteria contribute nothing.
            OpKind::Rank {
                input,
                col,
                order_by,
            } => {
                let consts = props.consts_of(input);
                let pruned: Vec<String> = order_by
                    .iter()
                    .filter(|c| !consts.contains_key(*c))
                    .cloned()
                    .collect();
                if pruned.len() < order_by.len() && !pruned.is_empty() {
                    *plan.op_mut(id) = OpKind::Rank {
                        input,
                        col,
                        order_by: pruned,
                    };
                    return true;
                }
                // Rule (12): a single-criterion rank is a column copy.
                if order_by.len() == 1 {
                    let src = order_by[0].clone();
                    let mut cols: Vec<(String, String)> = plan
                        .output_cols(input)
                        .into_iter()
                        .map(|c| (c.clone(), c))
                        .collect();
                    cols.push((col, src));
                    let proj = plan.add(OpKind::Project { input, cols });
                    replace_uses(plan, id, proj);
                    return true;
                }
            }
            // Rule (4): prune projections to the needed columns.
            OpKind::Project { input, cols } => {
                let needed: Vec<(String, String)> = cols
                    .iter()
                    .filter(|(new, _)| icols.contains(new))
                    .cloned()
                    .collect();
                if !needed.is_empty() && needed.len() < cols.len() {
                    *plan.op_mut(id) = OpKind::Project {
                        input,
                        cols: needed,
                    };
                    return true;
                }
            }
            // Rule (6): duplicates are eliminated upstream anyway.
            OpKind::Distinct { input } if props.set_of(id) => {
                replace_uses(plan, id, input);
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Redirect every use of `old` (including the root) to `new`.
fn replace_uses(plan: &mut Plan, old: OpId, new: OpId) {
    let parents = plan.parents();
    if let Some(ps) = parents.get(&old) {
        let ps: HashSet<OpId> = ps.iter().copied().collect();
        for p in ps {
            plan.op_mut(p).replace_child(old, new);
        }
    }
    if plan.root() == old {
        plan.set_root(new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqjg_algebra::{histogram, Comparison, Predicate};
    use xqjg_store::Value;

    #[test]
    fn unused_rank_and_attach_are_removed() {
        let mut p = Plan::new();
        let doc = p.add(OpKind::DocTable);
        let proj = p.add(OpKind::Project {
            input: doc,
            cols: vec![("item".to_string(), "pre".to_string())],
        });
        let rank = p.add(OpKind::Rank {
            input: proj,
            col: "unused".to_string(),
            order_by: vec!["item".to_string()],
        });
        let att = p.add(OpKind::Attach {
            input: rank,
            col: "alsounused".to_string(),
            value: Value::Int(1),
        });
        // The output projection only needs item (plus the implicit pos).
        let out = p.add(OpKind::Project {
            input: att,
            cols: vec![
                ("pos".to_string(), "item".to_string()),
                ("item".to_string(), "item".to_string()),
            ],
        });
        let root = p.add(OpKind::Serialize { input: out });
        p.set_root(root);
        let report = simplify(&mut p);
        assert!(report.applications >= 2);
        let h = histogram(&p);
        assert_eq!(h.rank, 0);
        assert_eq!(h.attach, 0);
    }

    #[test]
    fn single_criterion_rank_becomes_projection() {
        let mut p = Plan::new();
        let doc = p.add(OpKind::DocTable);
        let proj = p.add(OpKind::Project {
            input: doc,
            cols: vec![("item".to_string(), "pre".to_string())],
        });
        let rank = p.add(OpKind::Rank {
            input: proj,
            col: "pos".to_string(),
            order_by: vec!["item".to_string()],
        });
        let root = p.add(OpKind::Serialize { input: rank });
        p.set_root(root);
        simplify(&mut p);
        let h = histogram(&p);
        assert_eq!(h.rank, 0, "rank must be rewritten into a projection");
        assert!(h.project >= 1);
    }

    #[test]
    fn constant_rank_criteria_are_pruned() {
        let mut p = Plan::new();
        let doc = p.add(OpKind::DocTable);
        let att = p.add(OpKind::Attach {
            input: doc,
            col: "posc".to_string(),
            value: Value::Int(1),
        });
        let rank = p.add(OpKind::Rank {
            input: att,
            col: "pos".to_string(),
            order_by: vec!["posc".to_string(), "pre".to_string()],
        });
        let proj = p.add(OpKind::Project {
            input: rank,
            cols: vec![
                ("pos".to_string(), "pos".to_string()),
                ("item".to_string(), "pre".to_string()),
            ],
        });
        let root = p.add(OpKind::Serialize { input: proj });
        p.set_root(root);
        simplify(&mut p);
        // After pruning the constant criterion, the rank collapses into a
        // projection and the attach becomes unused.
        let h = histogram(&p);
        assert_eq!(h.rank, 0);
        assert_eq!(h.attach, 0);
    }

    #[test]
    fn redundant_distinct_below_distinct_is_dropped() {
        let mut p = Plan::new();
        let doc = p.add(OpKind::DocTable);
        let sel = p.add(OpKind::Select {
            input: doc,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let proj = p.add(OpKind::Project {
            input: sel,
            cols: vec![
                ("pos".to_string(), "pre".to_string()),
                ("item".to_string(), "pre".to_string()),
            ],
        });
        let d1 = p.add(OpKind::Distinct { input: proj });
        let d2 = p.add(OpKind::Distinct { input: d1 });
        let root = p.add(OpKind::Serialize { input: d2 });
        p.set_root(root);
        simplify(&mut p);
        let h = histogram(&p);
        assert_eq!(h.distinct, 1, "only the upstream δ survives");
    }

    #[test]
    fn simplification_shrinks_compiled_q1() {
        use xqjg_compiler::compile;
        use xqjg_xquery::parse_and_normalize;
        let core = parse_and_normalize(
            r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
            None,
        )
        .unwrap();
        let mut plan = compile(&core).unwrap().plan;
        let before = histogram(&plan);
        let report = simplify(&mut plan);
        let after = histogram(&plan);
        assert!(report.ops_after < report.ops_before);
        assert!(
            after.rank < before.rank,
            "ranks: {} -> {}",
            before.rank,
            after.rank
        );
        assert!(after.total < before.total);
    }
}
