//! Regenerate the tables of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p xqjg-bench --bin tables -- table6
//! cargo run --release -p xqjg-bench --bin tables -- table8
//! cargo run --release -p xqjg-bench --bin tables -- table9 [--scale 0.2] [--budget-secs 120]
//! cargo run --release -p xqjg-bench --bin tables -- all
//! ```

use std::time::Duration;
use xqjg_bench::{queries, render_table9, table9, DataSet, Workload};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = flag_value(&args, "--scale").unwrap_or(0.1);
    let budget = Duration::from_secs(flag_value(&args, "--budget-secs").unwrap_or(300.0) as u64);

    match which {
        "table6" => table6(scale),
        "table8" => table8(),
        "table9" => print!("{}", render_table9(&table9(scale, budget), scale)),
        "all" => {
            table6(scale);
            println!();
            table8();
            println!();
            print!("{}", render_table9(&table9(scale, budget), scale));
        }
        other => {
            eprintln!("unknown table {other:?}; expected table6 | table8 | table9 | all");
            std::process::exit(1);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Table VI — B-tree indexes proposed by the index advisor for the Q2
/// workload (with the serialization step made explicit).
fn table6(scale: f64) {
    println!("Table VI — B-tree indexes proposed by the index advisor (db2advis stand-in)");
    let mut workload = Workload::new(scale);
    let q2 = queries().into_iter().find(|q| q.id == "Q2").unwrap();
    let proposals = workload
        .xmark
        .advise_and_deploy(&[q2.text])
        .expect("advisor runs on Q2");
    println!(
        "{:<12} {:<28} {:<24} Rationale",
        "Index", "Key columns", "INCLUDE columns"
    );
    for p in proposals {
        println!(
            "{:<12} {:<28} {:<24} {}{}",
            p.name,
            p.key_columns.join(","),
            p.include_columns.join(","),
            if p.clustered { "[clustered] " } else { "" },
            p.rationale
        );
    }
}

/// Table VIII — the sample query set taken from the TurboXPath paper.
fn table8() {
    println!("Table VIII — sample query set");
    println!("{:<6} {:<8} {:<10} Query", "Id", "Data", "[13] id");
    for q in queries() {
        let data = match q.dataset {
            DataSet::Xmark => "XMark",
            DataSet::Dblp => "DBLP",
        };
        let turbo = q.turboxpath_id.unwrap_or("-");
        let text: String = q.text.split_whitespace().collect::<Vec<_>>().join(" ");
        println!("{:<6} {:<8} {:<10} {}", q.id, data, turbo, text);
    }
}
