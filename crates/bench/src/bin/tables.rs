//! Regenerate the tables of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p xqjg-bench --bin tables -- table6
//! cargo run --release -p xqjg-bench --bin tables -- table8
//! cargo run --release -p xqjg-bench --bin tables -- table9 [--scale 0.2] [--budget-secs 120]
//! cargo run --release -p xqjg-bench --bin tables -- bench-exec [--scale 0.2] [--batch-capacity 1024] [--morsel-size 2048]
//! cargo run --release -p xqjg-bench --bin tables -- bench-serve [--scale 0.2] [--iters 25]
//! cargo run --release -p xqjg-bench --bin tables -- all
//! ```
//!
//! `bench-exec` times the pipelined executor against the materializing
//! baseline on the XMark join-graph queries — sweeping the degree of
//! parallelism over 1, 2 and 4 worker threads — and writes the comparison
//! to `BENCH_exec.json` (rows/sec per thread count plus batch counts).
//! `--batch-capacity` and `--morsel-size` expose the executor knobs so the
//! harness can sweep them too.
//!
//! `bench-serve` runs the closed-loop service benchmark: real TCP clients
//! against a live `xqjg-serve` pair (one server per data set), each client
//! cycling the Table IX mix, at several concurrency levels.  It writes
//! client-observed p50/p99 latencies, aggregate throughput and admission
//! counters to `BENCH_serve.json`, and asserts every response is
//! byte-identical to a single-session execution.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xqjg_bench::{queries, render_table9, table9, BenchQuery, DataSet, Workload};
use xqjg_core::{Mode, Processor, QueryCaches};
use xqjg_engine::{execute_materialized, optimize, ExecStats, PhysPlan, QueryRequest};
use xqjg_serve::{Engine, Server};
use xqjg_store::{
    default_threads, AdmissionConfig, CancelToken, Database, ExecConfig, BATCH_CAPACITY,
    DEFAULT_MORSEL_SIZE,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = flag_value(&args, "--scale").unwrap_or(0.1);
    let budget = Duration::from_secs(flag_value(&args, "--budget-secs").unwrap_or(300.0) as u64);

    let batch_capacity = flag_value(&args, "--batch-capacity")
        .map(|v| (v as usize).max(1))
        .unwrap_or(BATCH_CAPACITY);
    let morsel_size = flag_value(&args, "--morsel-size")
        .map(|v| (v as usize).max(1))
        .unwrap_or(DEFAULT_MORSEL_SIZE);

    match which {
        "table6" => table6(scale),
        "table8" => table8(),
        "table9" => print!("{}", render_table9(&table9(scale, budget), scale)),
        "bench-exec" => bench_exec(scale, batch_capacity, morsel_size),
        "bench-serve" => {
            let iters = flag_value(&args, "--iters")
                .map(|v| (v as usize).max(1))
                .unwrap_or(SERVE_ITERS);
            bench_serve(scale, iters);
        }
        "all" => {
            table6(scale);
            println!();
            table8();
            println!();
            print!("{}", render_table9(&table9(scale, budget), scale));
        }
        other => {
            eprintln!(
                "unknown table {other:?}; expected table6 | table8 | table9 | bench-exec | bench-serve | all"
            );
            std::process::exit(1);
        }
    }
}

/// Best-of-N wall-clock time of one strategy over a plan list.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one rep"))
}

/// Degrees of parallelism the sweep covers.
const SWEEP_THREADS: [usize; 3] = [1, 2, 4];

/// Pipelined vs. materializing executor comparison with a
/// thread-count sweep (DOP 1 / 2 / 4), emitted as `BENCH_exec.json`.
fn bench_exec(scale: f64, batch_capacity: usize, morsel_size: usize) {
    let mut workload = Workload::new(scale);
    let mut cells = Vec::new();
    for q in queries()
        .into_iter()
        .filter(|q| q.id == "Q1" || q.id == "Q2")
    {
        let prepared = workload
            .processor(&q)
            .prepare(q.text)
            .expect("query prepares");
        let db: &Database = workload.processor(&q).database();
        let plans: Vec<PhysPlan> = prepared
            .branches
            .iter()
            .map(|b| optimize(&b.isolated.query, db).expect("plan optimizes"))
            .collect();
        let reps = 9;
        // Interleave the repetitions of every configuration (materializing
        // + each DOP) round-robin so drifting background load hits all
        // configurations alike instead of biasing whichever block it
        // overlaps; best-of-N per configuration is taken across rounds.
        // Every configuration must agree on rows *and* on the aggregated
        // per-operator actuals.
        let mut mat_secs = f64::INFINITY;
        let mut mat_rows = 0usize;
        let mut sweep: Vec<(usize, f64, usize, ExecStats, ExecConfig)> = SWEEP_THREADS
            .iter()
            .map(|&t| {
                let cfg = ExecConfig::from_env()
                    .with_threads(t)
                    .with_batch_capacity(batch_capacity)
                    .with_morsel_size(morsel_size);
                (t, f64::INFINITY, 0, ExecStats::default(), cfg)
            })
            .collect();
        for _ in 0..reps {
            let (secs, rows) = time_best(1, || {
                plans
                    .iter()
                    .map(|p| execute_materialized(p, db).len())
                    .sum::<usize>()
            });
            mat_secs = mat_secs.min(secs);
            mat_rows = rows;
            for slot in sweep.iter_mut() {
                let cfg = slot.4.clone();
                let (secs, (rows, stats)) = time_best(1, || {
                    let mut rows = 0usize;
                    let mut stats = ExecStats::default();
                    for p in &plans {
                        let out = QueryRequest::new(p, db).config(&cfg).expect_run();
                        rows += out.rows.len();
                        stats.merge(&out.stats);
                    }
                    (rows, stats)
                });
                assert_eq!(
                    mat_rows, rows,
                    "{}: executors disagree at DOP {}",
                    q.id, slot.0
                );
                slot.1 = slot.1.min(secs);
                slot.2 = rows;
                slot.3 = stats;
            }
        }
        let (_, dop1_secs, pipe_rows, stats) = {
            let s = &sweep[0];
            (s.0, s.1, s.2, s.3.clone())
        };
        for (threads, _, _, s, _) in &sweep[1..] {
            assert_eq!(
                s.operators, stats.operators,
                "{}: EXPLAIN actuals drift at DOP {threads}",
                q.id
            );
        }
        // One instrumented DOP-1 run to capture the adaptive batch-size
        // trace alongside the per-operator actuals.
        let trace = {
            let cfg = ExecConfig::from_env()
                .with_threads(1)
                .with_batch_capacity(batch_capacity)
                .with_morsel_size(morsel_size);
            let mut leaves: Vec<(String, Vec<usize>)> = Vec::new();
            for p in &plans {
                let out = QueryRequest::new(p, db).config(&cfg).expect_run();
                leaves.extend(out.trace.leaves);
            }
            leaves
        };
        let total_batches: usize = stats.operators.iter().map(|o| o.batches).sum();
        let peak_batches = stats.operators.iter().map(|o| o.batches).max().unwrap_or(0);
        let sweep_cells: Vec<String> = sweep
            .iter()
            .map(|(threads, secs, rows, _, _)| {
                format!(
                    "        {{ \"threads\": {threads}, \"secs\": {secs:.6}, \"rows_per_sec\": {:.1}, \"speedup_vs_dop1\": {:.3} }}",
                    *rows as f64 / secs.max(1e-12),
                    dop1_secs / secs.max(1e-12),
                )
            })
            .collect();
        // Per-operator actuals with the measured selectivity (rows out per
        // row in — the quantity the adaptive sizer steers on) and the
        // spill counters (so the perf trajectory can tell in-memory from
        // spilled configurations apart).
        let operator_cells: Vec<String> = stats
            .operators
            .iter()
            .map(|o| {
                let sel = if o.rows_in > 0 {
                    format!("{:.4}", o.rows_out as f64 / o.rows_in as f64)
                } else {
                    "null".to_string()
                };
                format!(
                    "        {{ \"name\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \"batches\": {}, \"probes\": {}, \"selectivity\": {}, \"spill_runs\": {}, \"spill_bytes\": {}, \"partitions\": {}, \"kernel_rows\": {} }}",
                    o.name, o.rows_in, o.rows_out, o.batches, o.probes, sel,
                    o.spill_runs, o.spill_bytes, o.partitions, o.kernel_rows
                )
            })
            .collect();
        let (q_spill_runs, q_spill_bytes, q_partitions, q_kernel_rows) = stats
            .operators
            .iter()
            .fold((0usize, 0usize, 0usize, 0usize), |(r, b, p, k), o| {
                (
                    r + o.spill_runs,
                    b + o.spill_bytes,
                    p + o.partitions,
                    k + o.kernel_rows,
                )
            });
        let trace_cells: Vec<String> = trace
            .iter()
            .map(|(name, chunks)| {
                let cs: Vec<String> = chunks.iter().map(usize::to_string).collect();
                format!(
                    "        {{ \"leaf\": \"{}\", \"chunks\": [{}] }}",
                    name,
                    cs.join(", ")
                )
            })
            .collect();
        cells.push(format!(
            "    {{\n      \"id\": \"{}\",\n      \"rows\": {},\n      \"materializing_secs\": {:.6},\n      \"pipelined_secs\": {:.6},\n      \"materializing_rows_per_sec\": {:.1},\n      \"pipelined_rows_per_sec\": {:.1},\n      \"speedup\": {:.3},\n      \"total_batches\": {},\n      \"peak_operator_batches\": {},\n      \"spill\": {{ \"runs\": {}, \"bytes\": {}, \"partitions\": {} }},\n      \"kernel_rows\": {},\n      \"operators\": [\n{}\n      ],\n      \"adaptive_trace\": [\n{}\n      ],\n      \"pipelined\": [\n{}\n      ]\n    }}",
            q.id,
            pipe_rows,
            mat_secs,
            dop1_secs,
            mat_rows as f64 / mat_secs.max(1e-12),
            pipe_rows as f64 / dop1_secs.max(1e-12),
            mat_secs / dop1_secs.max(1e-12),
            total_batches,
            peak_batches,
            q_spill_runs,
            q_spill_bytes,
            q_partitions,
            q_kernel_rows,
            operator_cells.join(",\n"),
            trace_cells.join(",\n"),
            sweep_cells.join(",\n"),
        ));
        println!(
            "{}: materializing {:.4} ms, pipelined DOP=1 {:.4} ms ({:.2}x), {} rows, {} batches (peak {})",
            q.id,
            mat_secs * 1e3,
            dop1_secs * 1e3,
            mat_secs / dop1_secs.max(1e-12),
            pipe_rows,
            total_batches,
            peak_batches
        );
        for (threads, secs, _, _, _) in &sweep {
            println!(
                "    DOP={threads}: {:.4} ms ({:.2}x vs DOP=1)",
                secs * 1e3,
                dop1_secs / secs.max(1e-12)
            );
        }
    }
    let repeated = bench_repeated(&workload);
    let cfg = ExecConfig::from_env();
    let mem_budget = cfg
        .mem_budget
        .map(|b| b.to_string())
        .unwrap_or_else(|| "null".to_string());
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"git_rev\": \"{}\",\n  \"batch_capacity\": {batch_capacity},\n  \"morsel_size\": {morsel_size},\n  \"vectorize\": {},\n  \"typed_kernels\": {},\n  \"adaptive_batch\": {},\n  \"mem_budget\": {mem_budget},\n  \"build_cache\": {},\n  \"plan_cache\": {},\n  \"postings_cache\": {},\n  \"available_cores\": {},\n  \"queries\": [\n{}\n  ],\n  \"repeated\": [\n{}\n  ]\n}}\n",
        git_rev(),
        cfg.vectorize,
        cfg.typed_kernels,
        cfg.adaptive,
        cfg.build_cache,
        cfg.plan_cache,
        cfg.postings_cache,
        default_threads(),
        cells.join(",\n"),
        repeated.join(",\n")
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("wrote BENCH_exec.json");
}

/// Iterations of the warm/cold repeated-query phase (iteration 1 is the
/// cold run; warm is the best of the remaining ones).
const REPEAT_ITERS: usize = 7;

/// Warm/cold repeated-query phase over the full Table IX query set.
///
/// Every query runs `REPEAT_ITERS` times, cold-first, against processors
/// that share one cross-query [`QueryCaches`] set — so the cold run pays
/// for plan optimization, hash-join builds and B-tree postings walks, and
/// the warm runs are served from the caches.  A caches-off reference
/// execution pins correctness: *every* iteration (the cold one included)
/// must reproduce the reference result exactly, so caching can never
/// change answers.  Queries are prepared once and timed through
/// `execute_prepared` (the prepared-statement server model): the timed
/// path covers optimization + execution, the parts the caches accelerate.
fn bench_repeated(workload: &Workload) -> Vec<String> {
    let base = ExecConfig::from_env();
    let cfg_off = base
        .clone()
        .with_build_cache(false)
        .with_plan_cache(false)
        .with_postings_cache(false);
    let caches = QueryCaches::new();
    let mut on = [
        (DataSet::Xmark, Processor::with_caches(caches.clone())),
        (DataSet::Dblp, Processor::with_caches(caches.clone())),
    ];
    let mut off = [
        (DataSet::Xmark, Processor::new()),
        (DataSet::Dblp, Processor::new()),
    ];
    for (ds, p) in on.iter_mut() {
        let (uri, doc) = match ds {
            DataSet::Xmark => ("auction.xml", workload.xmark_doc.clone()),
            DataSet::Dblp => ("dblp.xml", workload.dblp_doc.clone()),
        };
        p.load_encoded(uri, doc);
        p.create_default_indexes();
        p.set_exec_config(Some(base.clone()));
    }
    for (ds, p) in off.iter_mut() {
        let (uri, doc) = match ds {
            DataSet::Xmark => ("auction.xml", workload.xmark_doc.clone()),
            DataSet::Dblp => ("dblp.xml", workload.dblp_doc.clone()),
        };
        p.load_encoded(uri, doc);
        p.create_default_indexes();
        p.set_exec_config(Some(cfg_off.clone()));
    }
    let mut cells = Vec::new();
    for q in queries() {
        let off_proc = &mut off.iter_mut().find(|(ds, _)| *ds == q.dataset).unwrap().1;
        let on_proc = &mut on.iter_mut().find(|(ds, _)| *ds == q.dataset).unwrap().1;
        cells.push(repeat_one(q.id, q.text, off_proc, on_proc, &caches));
    }
    // Build-cache leg: Q2 over an *index-less* XMark processor.  With no
    // supporting index, the per-probe alternative to each value equijoin
    // is a full scan, so the optimizer plans hash joins — the warm runs
    // then serve the build sides from the cross-query build cache, which
    // the indexed runs (all NLJOIN–IXSCAN) never need.
    let q2 = queries().into_iter().find(|q| q.id == "Q2").unwrap();
    let mut off_noidx = Processor::new();
    off_noidx.load_encoded("auction.xml", workload.xmark_doc.clone());
    off_noidx.set_exec_config(Some(cfg_off));
    let mut on_noidx = Processor::with_caches(caches.clone());
    on_noidx.load_encoded("auction.xml", workload.xmark_doc.clone());
    on_noidx.set_exec_config(Some(base));
    cells.push(repeat_one(
        "Q2-noindex",
        q2.text,
        &mut off_noidx,
        &mut on_noidx,
        &caches,
    ));
    cells
}

/// Measure one query of the repeated phase: a caches-off reference run on
/// `off`, then `REPEAT_ITERS` executions on `on` (cold first), every one
/// of them checked against the reference.  Returns the JSON cell.
fn repeat_one(
    id: &str,
    text: &str,
    off: &mut Processor,
    on: &mut Processor,
    caches: &QueryCaches,
) -> String {
    let reference = off
        .execute(text, Mode::JoinGraph)
        .expect("caches-off reference run");
    let prepared = on.prepare(text).expect("query prepares");
    let plan_hits0 = caches.plans().hits();
    let build_hits0 = caches.builds().hits();
    let postings_hits0 = caches.postings().hits();
    let postings_lookups0 = caches.postings().lookups();
    let mut cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    let mut rows = 0usize;
    for i in 0..REPEAT_ITERS {
        let start = Instant::now();
        let out = on
            .execute_prepared(&prepared, Mode::JoinGraph)
            .expect("cached run succeeds");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(
            out.items, reference.items,
            "{id}: cached iteration {i} diverges from the caches-off reference"
        );
        assert_eq!(out.serialized_nodes, reference.serialized_nodes, "{id}");
        rows = out.items.len();
        if i == 0 {
            cold_secs = secs;
        } else {
            warm_secs = warm_secs.min(secs);
        }
    }
    let plan_hits = caches.plans().hits() - plan_hits0;
    let build_hits = caches.builds().hits() - build_hits0;
    let postings_hits = caches.postings().hits() - postings_hits0;
    let postings_lookups = caches.postings().lookups() - postings_lookups0;
    let speedup = cold_secs / warm_secs.max(1e-12);
    println!(
        "{id}: repeated cold {:.4} ms, warm {:.4} ms ({:.2}x), hits plan {plan_hits} build {build_hits} postings {postings_hits}/{postings_lookups}",
        cold_secs * 1e3,
        warm_secs * 1e3,
        speedup,
    );
    format!(
        "    {{ \"id\": \"{id}\", \"rows\": {rows}, \"iterations\": {REPEAT_ITERS}, \"cold_secs\": {cold_secs:.6}, \"warm_secs\": {warm_secs:.6}, \"cold_rows_per_sec\": {:.1}, \"warm_rows_per_sec\": {:.1}, \"warm_speedup\": {speedup:.3}, \"plan_cache_hits\": {plan_hits}, \"build_cache_hits\": {build_hits}, \"postings_hits\": {postings_hits}, \"postings_lookups\": {postings_lookups}, \"cold_matches_caches_off\": true }}",
        rows as f64 / cold_secs.max(1e-12),
        rows as f64 / warm_secs.max(1e-12),
    )
}

/// Default per-client iterations of the Table IX mix in `bench-serve`.
const SERVE_ITERS: usize = 25;

/// Concurrency levels of the closed-loop serve benchmark.
const SERVE_LEVELS: [usize; 2] = [1, 4];

/// A line-protocol benchmark client (client-speaks-first handshake).
struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    fn connect(addr: std::net::SocketAddr) -> ServeClient {
        let stream = TcpStream::connect(addr).expect("connect to xqjg-serve");
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut c = ServeClient {
            reader,
            writer: stream,
        };
        c.send("PING");
        let hello = c.line();
        assert!(hello.starts_with("HELLO xqjg-serve/1"), "banner: {hello}");
        assert_eq!(c.line(), "OK pong");
        c
    }

    fn send(&mut self, cmd: &str) {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write command");
    }

    fn line(&mut self) -> String {
        let mut s = String::new();
        self.reader.read_line(&mut s).expect("read response");
        s.trim_end().to_string()
    }

    /// Run one query, returning the raw ITEMS payload line.
    fn query(&mut self, q: &str) -> String {
        self.send(&format!("QUERY {q}"));
        let header = self.line();
        assert!(header.starts_with("RESULT"), "serve error: {header}");
        let items = self.line();
        assert_eq!(self.line(), "END", "frame terminator");
        items
    }
}

/// Nearest-rank percentile over an ascending sample.
fn percentile(sorted: &[u128], p: f64) -> u128 {
    let n = sorted.len();
    sorted[((n as f64 * p).ceil() as usize).clamp(1, n) - 1]
}

/// The closed-loop service benchmark: N concurrent TCP clients cycle the
/// Table IX mix against a live server pair (one per data set), asserting
/// byte-identical responses throughout, and the client-observed latency
/// distribution lands in `BENCH_serve.json`.
fn bench_serve(scale: f64, iters: usize) {
    let Workload { xmark, dblp, .. } = Workload::new(scale);
    let defaults = ExecConfig::sequential();
    let admission = AdmissionConfig::default();
    let xmark_srv = Server::start(
        Engine::new(xmark, defaults.clone(), admission.clone()),
        "127.0.0.1:0",
        16,
    )
    .expect("start xmark server");
    let dblp_srv = Server::start(
        Engine::new(dblp, defaults.clone(), admission),
        "127.0.0.1:0",
        16,
    )
    .expect("start dblp server");

    // Single-session reference payloads: what every concurrent response
    // must match byte for byte.  The wire carries queries on one line, so
    // the mix text is whitespace-collapsed up front (none of the paper's
    // queries has a literal that cares).
    let mix: Vec<(BenchQuery, String, String)> = queries()
        .into_iter()
        .map(|q| {
            let engine = match q.dataset {
                DataSet::Xmark => xmark_srv.engine(),
                DataSet::Dblp => dblp_srv.engine(),
            };
            let prepared = engine.processor().prepare(q.text).expect("prepare");
            let out = engine
                .processor()
                .execute_prepared_shared(&prepared, Mode::JoinGraph, &defaults, &CancelToken::new())
                .expect("reference execution");
            let mut line = "ITEMS".to_string();
            for p in out.items {
                line.push(' ');
                line.push_str(&p.0.to_string());
            }
            let text = q.text.split_whitespace().collect::<Vec<_>>().join(" ");
            (q, text, line)
        })
        .collect();
    let mix = Arc::new(mix);

    let mut levels_json = Vec::new();
    for &clients in &SERVE_LEVELS {
        let before = (xmark_srv.engine().stats(), dblp_srv.engine().stats());
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|client_no| {
                let mix = Arc::clone(&mix);
                let xmark_addr = xmark_srv.local_addr();
                let dblp_addr = dblp_srv.local_addr();
                std::thread::spawn(move || {
                    let mut xm = ServeClient::connect(xmark_addr);
                    let mut db = ServeClient::connect(dblp_addr);
                    let mut latencies = Vec::with_capacity(iters * mix.len());
                    for iteration in 0..iters {
                        for (q, text, expected) in mix.iter() {
                            let client = match q.dataset {
                                DataSet::Xmark => &mut xm,
                                DataSet::Dblp => &mut db,
                            };
                            let t0 = Instant::now();
                            let items = client.query(text);
                            latencies.push(t0.elapsed().as_micros());
                            assert_eq!(
                                &items, expected,
                                "{}: serve response diverged from single-session \
                                 execution (client {client_no}, iteration {iteration})",
                                q.id
                            );
                        }
                    }
                    xm.send("QUIT");
                    let _ = xm.line();
                    db.send("QUIT");
                    let _ = db.line();
                    latencies
                })
            })
            .collect();
        let mut latencies: Vec<u128> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        let elapsed = start.elapsed().as_secs_f64();
        latencies.sort_unstable();
        let after = (xmark_srv.engine().stats(), dblp_srv.engine().stats());
        let total = latencies.len();
        let delta = |f: fn(&xqjg_serve::ServerStats) -> u64| {
            (f(&after.0) - f(&before.0)) + (f(&after.1) - f(&before.1))
        };
        let admitted = delta(|s| s.admission.admitted);
        let queued = delta(|s| s.admission.queued);
        let rejected = delta(|s| s.admission.rejected);
        let timeouts = delta(|s| s.admission.timeouts);
        let qps = total as f64 / elapsed.max(1e-12);
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        println!(
            "bench-serve: {clients} client(s): {total} queries in {elapsed:.2}s \
             ({qps:.1} q/s, p50 {p50} us, p99 {p99} us, queued {queued})"
        );
        levels_json.push(format!(
            "    {{ \"clients\": {clients}, \"queries\": {total}, \"elapsed_secs\": {elapsed:.6}, \"throughput_qps\": {qps:.1}, \"p50_us\": {p50}, \"p99_us\": {p99}, \"admitted\": {admitted}, \"queued\": {queued}, \"rejected\": {rejected}, \"timeouts\": {timeouts}, \"byte_identical\": true }}"
        ));
    }
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"git_rev\": \"{}\",\n  \"iterations_per_client\": {iters},\n  \"mix\": [{}],\n  \"levels\": [\n{}\n  ]\n}}\n",
        git_rev(),
        mix.iter()
            .map(|(q, _, _)| format!("\"{}\"", q.id))
            .collect::<Vec<_>>()
            .join(", "),
        levels_json.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    // Clean shutdown asserts the admission controllers fully drained.
    xmark_srv.shutdown();
    dblp_srv.shutdown();
}

/// Short git revision of the working tree, for provenance in the emitted
/// benchmark file ("unknown" outside a git checkout).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn flag_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Table VI — B-tree indexes proposed by the index advisor for the Q2
/// workload (with the serialization step made explicit).
fn table6(scale: f64) {
    println!("Table VI — B-tree indexes proposed by the index advisor (db2advis stand-in)");
    let mut workload = Workload::new(scale);
    let q2 = queries().into_iter().find(|q| q.id == "Q2").unwrap();
    let proposals = workload
        .xmark
        .advise_and_deploy(&[q2.text])
        .expect("advisor runs on Q2");
    println!(
        "{:<12} {:<28} {:<24} Rationale",
        "Index", "Key columns", "INCLUDE columns"
    );
    for p in proposals {
        println!(
            "{:<12} {:<28} {:<24} {}{}",
            p.name,
            p.key_columns.join(","),
            p.include_columns.join(","),
            if p.clustered { "[clustered] " } else { "" },
            p.rationale
        );
    }
}

/// Table VIII — the sample query set taken from the TurboXPath paper.
fn table8() {
    println!("Table VIII — sample query set");
    println!("{:<6} {:<8} {:<10} Query", "Id", "Data", "[13] id");
    for q in queries() {
        let data = match q.dataset {
            DataSet::Xmark => "XMark",
            DataSet::Dblp => "DBLP",
        };
        let turbo = q.turboxpath_id.unwrap_or("-");
        let text: String = q.text.split_whitespace().collect::<Vec<_>>().join(" ");
        println!("{:<6} {:<8} {:<10} {}", q.id, data, turbo, text);
    }
}
