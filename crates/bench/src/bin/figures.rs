//! Regenerate the figures of the paper: initial and isolated plans for Q1
//! (Figures 4 and 7), the emitted SQL for Q1 and Q2 (Figures 8 and 9), and
//! the optimizer's execution plans for Q1 and Q2 (Figures 10 and 11).
//!
//! ```text
//! cargo run --release -p xqjg-bench --bin figures -- fig4|fig7|fig8|fig9|fig10|fig11|all [--scale 0.1]
//! ```

use xqjg_algebra::{histogram, render_text};
use xqjg_bench::{queries, Workload};
use xqjg_engine::{explain, optimize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);

    let mut workload = Workload::new(scale);
    match which {
        "fig4" => fig_plan(&mut workload, "Q1", false),
        "fig7" => fig_plan(&mut workload, "Q1", true),
        "fig8" => fig_sql(&mut workload, "Q1"),
        "fig9" => fig_sql(&mut workload, "Q2"),
        "fig10" => fig_explain(&mut workload, "Q1"),
        "fig11" => fig_explain(&mut workload, "Q2"),
        "all" => {
            fig_plan(&mut workload, "Q1", false);
            fig_plan(&mut workload, "Q1", true);
            fig_sql(&mut workload, "Q1");
            fig_sql(&mut workload, "Q2");
            fig_explain(&mut workload, "Q1");
            fig_explain(&mut workload, "Q2");
        }
        other => {
            eprintln!("unknown figure {other:?}");
            std::process::exit(1);
        }
    }
}

fn prepared(workload: &mut Workload, id: &str) -> xqjg_core::Prepared {
    let q = queries().into_iter().find(|q| q.id == id).unwrap();
    let proc = workload.processor(&q);
    proc.prepare(q.text).expect("query prepares")
}

/// Figures 4 and 7: the initial stacked plan vs. the isolated plan for Q1.
fn fig_plan(workload: &mut Workload, id: &str, isolated: bool) {
    let p = prepared(workload, id);
    let b = &p.branches[0];
    if isolated {
        println!("Figure 7 — isolated plan (join graph + plan tail) for {id}");
        let h = histogram(&b.isolated_plan);
        println!("{}", render_text(&b.isolated_plan));
        println!(
            "operators: {} total, {} joins, {} δ, {} ϱ (blocking operators confined to the plan tail)",
            h.total, h.join + h.cross, h.distinct, h.rank
        );
    } else {
        println!("Figure 4 — initial stacked plan for {id}");
        let h = histogram(&b.stacked);
        println!("{}", render_text(&b.stacked));
        println!(
            "operators: {} total, {} joins, {} δ, {} ϱ scattered over the plan",
            h.total,
            h.join + h.cross,
            h.distinct,
            h.rank
        );
    }
}

/// Figures 8 and 9: the SQL encoding of the isolated join graph.
fn fig_sql(workload: &mut Workload, id: &str) {
    let p = prepared(workload, id);
    println!(
        "Figure {} — SQL encoding of {id}'s join graph",
        if id == "Q1" { 8 } else { 9 }
    );
    for (i, sql) in p.sql().iter().enumerate() {
        if p.branches.len() > 1 {
            println!("-- branch {}", i + 1);
        }
        println!("{sql}\n");
    }
}

/// Figures 10 and 11: the execution plans the cost-based optimizer selects.
fn fig_explain(workload: &mut Workload, id: &str) {
    let q = queries().into_iter().find(|q| q.id == id).unwrap();
    let proc = workload.processor(&q);
    let prepared = proc.prepare(q.text).expect("query prepares");
    println!(
        "Figure {} — execution plan selected by the cost-based optimizer for {id}",
        if id == "Q1" { 10 } else { 11 }
    );
    let db = proc.database();
    for b in &prepared.branches {
        let plan = optimize(&b.isolated.query, db).expect("plan found");
        println!("{}", explain(&plan));
    }
}
