//! Benchmark harness shared by the `tables` / `figures` binaries and the
//! Criterion benches: the paper's query set, workload construction, and the
//! Table IX measurement loop.

use std::time::{Duration, Instant};
use xqjg_core::{Mode, Outcome, Processor};
use xqjg_data::{generate_dblp_encoded, generate_xmark_encoded, DblpConfig, XmarkConfig};
use xqjg_purexml::{PureXmlStore, Storage};
use xqjg_xml::DocTable;
use xqjg_xquery::parse_and_normalize;

/// Which data set a query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSet {
    /// The XMark-like auction instance (`auction.xml`).
    Xmark,
    /// The DBLP-like bibliography instance (`dblp.xml`).
    Dblp,
}

/// One query of the evaluation (Section II-D, Table VIII).
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Identifier used in the paper (Q1–Q6).
    pub id: &'static str,
    /// The query text.
    pub text: &'static str,
    /// The data set it runs against.
    pub dataset: DataSet,
    /// The identifier used in the TurboXPath paper, when applicable.
    pub turboxpath_id: Option<&'static str>,
}

/// The paper's query set.
pub fn queries() -> Vec<BenchQuery> {
    vec![
        BenchQuery {
            id: "Q1",
            text: r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
            dataset: DataSet::Xmark,
            turboxpath_id: None,
        },
        BenchQuery {
            id: "Q2",
            text: r#"let $a := doc("auction.xml")
                     for $ca in $a//closed_auction[price > 500],
                         $i in $a//item,
                         $c in $a//category
                     where $ca/itemref/@item = $i/@id
                       and $i/incategory/@category = $c/@id
                     return $c/name"#,
            dataset: DataSet::Xmark,
            turboxpath_id: None,
        },
        BenchQuery {
            id: "Q3",
            text: r#"/site/people/person[@id = "person0"]/name/text()"#,
            dataset: DataSet::Xmark,
            turboxpath_id: Some("9a"),
        },
        BenchQuery {
            id: "Q4",
            text: "//closed_auction/price/text()",
            dataset: DataSet::Xmark,
            turboxpath_id: Some("9c"),
        },
        BenchQuery {
            id: "Q5",
            text: r#"/dblp/*[@key = "conf/vldb2001" and editor and title]/title"#,
            dataset: DataSet::Dblp,
            turboxpath_id: Some("8c"),
        },
        BenchQuery {
            id: "Q6",
            text: r#"for $thesis in /dblp/phdthesis[year < "1994" and author and title]
                     return ($thesis/title, $thesis/author, $thesis/year)"#,
            dataset: DataSet::Dblp,
            turboxpath_id: Some("8g"),
        },
    ]
}

/// A workload instance: the two encoded data sets plus ready-to-query
/// processors with the standing index set deployed.
pub struct Workload {
    /// Scale factor used for generation.
    pub scale: f64,
    /// Relational processor over the XMark instance.
    pub xmark: Processor,
    /// Relational processor over the DBLP instance.
    pub dblp: Processor,
    /// Raw XMark encoding (for the navigational baseline).
    pub xmark_doc: DocTable,
    /// Raw DBLP encoding (for the navigational baseline).
    pub dblp_doc: DocTable,
}

impl Workload {
    /// Generate both data sets at the given scale and set up the relational
    /// processors with the default (Table VI-style) index set.
    pub fn new(scale: f64) -> Workload {
        let xmark_doc = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(scale));
        let dblp_doc = generate_dblp_encoded("dblp.xml", &DblpConfig::with_scale(scale));
        let mut xmark = Processor::new();
        xmark.load_encoded("auction.xml", xmark_doc.clone());
        xmark.create_default_indexes();
        let mut dblp = Processor::new();
        dblp.load_encoded("dblp.xml", dblp_doc.clone());
        dblp.create_default_indexes();
        Workload {
            scale,
            xmark,
            dblp,
            xmark_doc,
            dblp_doc,
        }
    }

    /// The processor responsible for a query.
    pub fn processor(&mut self, q: &BenchQuery) -> &mut Processor {
        match q.dataset {
            DataSet::Xmark => &mut self.xmark,
            DataSet::Dblp => &mut self.dblp,
        }
    }

    /// The raw encoding a query's navigational baseline runs over.
    pub fn encoding(&self, q: &BenchQuery) -> (&DocTable, &str, u32) {
        match q.dataset {
            DataSet::Xmark => (&self.xmark_doc, "auction.xml", 3),
            DataSet::Dblp => (&self.dblp_doc, "dblp.xml", 2),
        }
    }
}

/// One measurement (a cell of Table IX).
#[derive(Debug, Clone)]
pub enum Measurement {
    /// Completed within the budget.
    Done {
        /// Result sequence length.
        results: usize,
        /// Serialized node count (the "# nodes" column).
        nodes: usize,
        /// Wall-clock time.
        elapsed: Duration,
    },
    /// Did not finish (skipped because the estimated work exceeds the
    /// budget, mirroring the paper's 20-hour cutoff).
    Dnf,
}

impl Measurement {
    /// Seconds, or `None` for DNF.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Measurement::Done { elapsed, .. } => Some(elapsed.as_secs_f64()),
            Measurement::Dnf => None,
        }
    }

    /// Format for table output.
    pub fn cell(&self) -> String {
        match self {
            Measurement::Done { elapsed, .. } => format!("{:>10.4}", elapsed.as_secs_f64()),
            Measurement::Dnf => format!("{:>10}", "DNF"),
        }
    }
}

/// One row of Table IX.
#[derive(Debug, Clone)]
pub struct Table9Row {
    /// Query identifier.
    pub query: &'static str,
    /// Result node count (serialized nodes).
    pub nodes: usize,
    /// Stacked-plan evaluation.
    pub stacked: Measurement,
    /// Join-graph evaluation.
    pub join_graph: Measurement,
    /// pureXML-style baseline over the whole document.
    pub purexml_whole: Measurement,
    /// pureXML-style baseline over segmented storage.
    pub purexml_segmented: Measurement,
}

/// Run a single relational mode with a wall-clock budget (queries whose
/// *previous* stage already exceeded the budget are reported as DNF).
pub fn run_relational(
    workload: &mut Workload,
    q: &BenchQuery,
    mode: Mode,
    budget: Duration,
) -> Measurement {
    // The stacked evaluation of Q2-style queries materializes enormous
    // intermediates at larger scales; pre-estimate and skip, as the paper's
    // 20 h cutoff did.
    if mode == Mode::Stacked && q.id == "Q2" && workload.scale > 0.6 {
        return Measurement::Dnf;
    }
    let proc = workload.processor(q);
    let start = Instant::now();
    let outcome: Outcome = match proc.execute(q.text, mode) {
        Ok(o) => o,
        Err(e) => panic!("query {} failed in {mode:?}: {e}", q.id),
    };
    let total = start.elapsed();
    if total > budget {
        // Completed, but report honestly that it blew the budget.
        return Measurement::Done {
            results: outcome.items.len(),
            nodes: outcome.serialized_nodes,
            elapsed: total,
        };
    }
    Measurement::Done {
        results: outcome.items.len(),
        nodes: outcome.serialized_nodes,
        elapsed: outcome.elapsed,
    }
}

/// Run the pureXML-style baseline for one query.
pub fn run_purexml(
    workload: &Workload,
    q: &BenchQuery,
    storage: Storage,
    budget: Duration,
) -> Measurement {
    let (doc, uri, _) = workload.encoding(q);
    // Q2's triple value join degenerates in the navigational model: the
    // per-segment traversal cannot join nodes living in different segments,
    // and over the whole document it becomes a Cartesian-product style
    // evaluation.  The paper reports DNF for both setups; we do the same
    // (and additionally skip the whole-document variant beyond small scales
    // so the harness terminates).
    if q.id == "Q2" && (matches!(storage, Storage::Segmented { .. }) || workload.scale > 0.15) {
        return Measurement::Dnf;
    }
    let core = match parse_and_normalize(q.text, Some(uri)) {
        Ok(c) => c,
        Err(e) => panic!("query {} failed to normalize: {e}", q.id),
    };
    let mut store = PureXmlStore::new(doc, storage);
    // The XMLPATTERN index family of Section IV-B.
    store.create_pattern_index(&["person", "@id"]);
    store.create_pattern_index(&["closed_auction", "price"]);
    store.create_pattern_index(&["item", "@id"]);
    store.create_pattern_index(&["category", "@id"]);
    store.create_pattern_index(&["proceedings", "@key"]);
    store.create_pattern_index(&["phdthesis", "year"]);
    let start = Instant::now();
    let (items, _scanned) = store.evaluate(&core);
    let elapsed = start.elapsed();
    let nodes: usize = items.iter().map(|&p| doc.row(p).size as usize + 1).sum();
    if elapsed > budget * 4 {
        return Measurement::Dnf;
    }
    Measurement::Done {
        results: items.len(),
        nodes,
        elapsed,
    }
}

/// Produce all rows of Table IX at the given scale.
pub fn table9(scale: f64, budget: Duration) -> Vec<Table9Row> {
    let mut workload = Workload::new(scale);
    let mut rows = Vec::new();
    for q in queries() {
        let stacked = run_relational(&mut workload, &q, Mode::Stacked, budget);
        let join_graph = run_relational(&mut workload, &q, Mode::JoinGraph, budget);
        let (_, _, depth) = workload.encoding(&q);
        let whole = run_purexml(&workload, &q, Storage::Whole, budget);
        let segmented = run_purexml(&workload, &q, Storage::Segmented { depth }, budget);
        let nodes = match &join_graph {
            Measurement::Done { nodes, .. } => *nodes,
            Measurement::Dnf => 0,
        };
        rows.push(Table9Row {
            query: q.id,
            nodes,
            stacked,
            join_graph,
            purexml_whole: whole,
            purexml_segmented: segmented,
        });
    }
    rows
}

/// Render Table IX rows in the paper's layout.  The header records the
/// effective execution configuration (the relational timings go through
/// the morsel-parallel executor, whose degree of parallelism defaults to
/// the machine's cores / `XQJG_THREADS`) so published numbers stay
/// reproducible.
pub fn render_table9(rows: &[Table9Row], scale: f64) -> String {
    let cfg = xqjg_store::ExecConfig::from_env();
    let mut out = String::new();
    out.push_str(&format!(
        "Table IX — observed result sizes and wall clock execution times (scale factor {scale}, DOP {}, batch {}, morsel {})\n",
        cfg.threads, cfg.batch_capacity, cfg.morsel_size
    ));
    out.push_str(&format!(
        "{:<6} {:>10}  {:>10} {:>10}  {:>10} {:>10}\n",
        "Query", "# nodes", "stacked", "join graph", "pX whole", "pX segm."
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:>10}  {} {}  {} {}\n",
            r.query,
            r.nodes,
            r.stacked.cell(),
            r.join_graph.cell(),
            r.purexml_whole.cell(),
            r.purexml_segmented.cell()
        ));
    }
    out.push_str(
        "\nSpeed-ups of join graph isolation over the stacked plans (Section IV headline):\n",
    );
    for r in rows {
        if let (Some(s), Some(j)) = (r.stacked.secs(), r.join_graph.secs()) {
            if j > 0.0 {
                out.push_str(&format!("  {}: {:.1}x\n", r.query, s / j));
            }
        } else if r.stacked.secs().is_none() {
            out.push_str(&format!(
                "  {}: stacked DNF, join graph finishes\n",
                r.query
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_set_is_complete() {
        let qs = queries();
        assert_eq!(qs.len(), 6);
        assert_eq!(qs[0].id, "Q1");
        assert_eq!(qs[4].dataset, DataSet::Dblp);
    }

    #[test]
    fn tiny_workload_runs_all_queries_in_both_relational_modes() {
        let mut w = Workload::new(0.02);
        let budget = Duration::from_secs(60);
        for q in queries() {
            let s = run_relational(&mut w, &q, Mode::Stacked, budget);
            let j = run_relational(&mut w, &q, Mode::JoinGraph, budget);
            match (&s, &j) {
                (Measurement::Done { results: rs, .. }, Measurement::Done { results: rj, .. }) => {
                    assert_eq!(rs, rj, "{} result sizes differ", q.id)
                }
                _ => panic!("{} did not finish at tiny scale", q.id),
            }
        }
    }

    #[test]
    fn purexml_modes_agree_with_relational_results() {
        let mut w = Workload::new(0.02);
        let budget = Duration::from_secs(60);
        for q in queries() {
            let j = run_relational(&mut w, &q, Mode::JoinGraph, budget);
            let (_, _, depth) = w.encoding(&q);
            let whole = run_purexml(&w, &q, Storage::Whole, budget);
            let seg = run_purexml(&w, &q, Storage::Segmented { depth }, budget);
            if let (
                Measurement::Done { results: rj, .. },
                Measurement::Done { results: rw, .. },
                Measurement::Done { results: rs, .. },
            ) = (&j, &whole, &seg)
            {
                assert_eq!(rj, rw, "{}: whole-document baseline differs", q.id);
                assert_eq!(rj, rs, "{}: segmented baseline differs", q.id);
            }
        }
    }
}
