//! Admission-control suite over the serving engine: oversubscription must
//! queue (never reject) within the queue depth, queue waits must surface
//! as typed timeouts, cancelling a queued query must release its claim,
//! and a concurrent Table IX mix under a *tiny global budget* — where the
//! controller hands out reduced, spill-forcing grants — must stay
//! byte-identical to sequential single-session execution.

use std::sync::Arc;
use std::time::{Duration, Instant};

use xqjg_bench::{queries, DataSet, Workload};
use xqjg_core::Mode;
use xqjg_serve::{Engine, Response};
use xqjg_store::{AdmissionConfig, CancelToken, ExecConfig};
use xqjg_xml::Pre;

fn engines(scale: f64, admission: AdmissionConfig) -> (Arc<Engine>, Arc<Engine>) {
    let Workload { xmark, dblp, .. } = Workload::new(scale);
    (
        Engine::new(xmark, ExecConfig::sequential(), admission.clone()),
        Engine::new(dblp, ExecConfig::sequential(), admission),
    )
}

/// Single-session reference items for a query (no admission in the way).
fn reference(engine: &Engine, query: &str) -> Vec<Pre> {
    let prepared = engine.processor().prepare(query).expect("prepare");
    engine
        .processor()
        .execute_prepared_shared(
            &prepared,
            Mode::JoinGraph,
            &ExecConfig::sequential(),
            &CancelToken::new(),
        )
        .expect("reference execution")
        .items
}

/// Wait (bounded) until the controller reports `n` queued waiters.
fn await_waiting(engine: &Engine, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while engine.admission().stats().waiting < n {
        assert!(
            Instant::now() < deadline,
            "waiters never queued: {:?}",
            engine.admission().stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn concurrent_mix_at_tiny_global_budget_byte_identical_to_sequential() {
    // A global budget so small that every concurrent grant forces the
    // executor down the spill path (the spill-parity suite proves 1 KiB
    // per query works); four sessions churn the whole Table IX mix and
    // every result must equal the unconstrained sequential reference.
    let admission = AdmissionConfig::default()
        .with_max_sessions(4)
        .with_queue_timeout(Duration::from_secs(120));
    let (xmark, dblp) = engines(0.02, admission.with_global_budget(Some(4 * 1024)));
    let mix: Vec<_> = queries()
        .into_iter()
        .map(|q| {
            let engine = match q.dataset {
                DataSet::Xmark => &xmark,
                DataSet::Dblp => &dblp,
            };
            let expected = reference(engine, q.text);
            (q, expected)
        })
        .collect();
    let mix = Arc::new(mix);

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let mix = Arc::clone(&mix);
            let xmark = Arc::clone(&xmark);
            let dblp = Arc::clone(&dblp);
            std::thread::spawn(move || {
                for _ in 0..3 {
                    for (q, expected) in mix.iter() {
                        let engine = match q.dataset {
                            DataSet::Xmark => &xmark,
                            DataSet::Dblp => &dblp,
                        };
                        let session = engine.open_session();
                        match engine.execute(&session, q.text) {
                            Response::Result(r) => {
                                // Under a 4 KiB global budget every grant
                                // is a thin slice, never the unlimited
                                // default.
                                assert!(r.granted.is_some(), "{}: granted a slice", q.id);
                                assert!(
                                    r.granted.unwrap() <= 4 * 1024,
                                    "{}: grant within global budget",
                                    q.id
                                );
                                assert_eq!(r.items, *expected, "{}: rows diverged", q.id);
                            }
                            other => panic!("{}: unexpected response {other:?}", q.id),
                        }
                        engine.close_session(session.id());
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    for engine in [&xmark, &dblp] {
        let stats = engine.stats();
        assert_eq!(stats.queries_err, 0, "{stats:?}");
        assert_eq!(
            stats.admission.rejected, 0,
            "queueing, not rejection: {stats:?}"
        );
        assert!(
            stats.admission.peak_in_use <= 4 * 1024,
            "grants never oversubscribed the budget: {stats:?}"
        );
        assert!(engine.admission().drained(), "{stats:?}");
    }
}

#[test]
fn oversubscription_queues_within_depth_and_rejects_past_it() {
    let (xmark, _) = engines(
        0.01,
        AdmissionConfig::default()
            .with_max_sessions(1)
            .with_queue_depth(2)
            .with_queue_timeout(Duration::from_secs(60)),
    );
    // Occupy the only slot, then fill the queue.
    let gate = xmark.admission().admit(None, None).expect("gate");
    let waiters: Vec<_> = (0..2)
        .map(|_| {
            let xmark = Arc::clone(&xmark);
            std::thread::spawn(move || {
                let session = xmark.open_session();
                let r = xmark.execute(&session, r#"doc("auction.xml")//item"#);
                xmark.close_session(session.id());
                r
            })
        })
        .collect();
    await_waiting(&xmark, 2);

    // Third arrival: queue full -> typed Overloaded, immediately.
    let session = xmark.open_session();
    match xmark.execute(&session, r#"doc("auction.xml")//item"#) {
        Response::Error(e) => {
            assert_eq!(e.kind, "overloaded", "{e:?}");
            assert!(e.message.contains("admission queue full"), "{e:?}");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    xmark.close_session(session.id());

    // Opening the gate drains the queue; both waiters complete.
    drop(gate);
    for w in waiters {
        match w.join().expect("waiter") {
            Response::Result(_) => {}
            other => panic!("queued query failed: {other:?}"),
        }
    }
    let stats = xmark.stats();
    assert_eq!(stats.admission.queued, 2, "{stats:?}");
    assert_eq!(stats.admission.rejected, 1, "{stats:?}");
    assert!(xmark.admission().drained());
}

#[test]
fn queue_wait_beyond_timeout_is_a_typed_timeout() {
    let (xmark, _) = engines(
        0.01,
        AdmissionConfig::default()
            .with_max_sessions(1)
            .with_queue_timeout(Duration::from_millis(50)),
    );
    let gate = xmark.admission().admit(None, None).expect("gate");
    let session = xmark.open_session();
    let t0 = Instant::now();
    match xmark.execute(&session, r#"doc("auction.xml")//item"#) {
        Response::Error(e) => assert_eq!(e.kind, "timeout", "{e:?}"),
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(
        t0.elapsed() >= Duration::from_millis(50),
        "waited out the queue"
    );
    xmark.close_session(session.id());
    drop(gate);
    let stats = xmark.stats();
    assert_eq!(stats.admission.timeouts, 1, "{stats:?}");
    // The timed-out waiter left no residue: a fresh query admits at once.
    let session = xmark.open_session();
    assert!(matches!(
        xmark.execute(&session, r#"doc("auction.xml")//item"#),
        Response::Result(_)
    ));
    xmark.close_session(session.id());
    assert!(xmark.admission().drained());
}

#[test]
fn cancel_while_queued_releases_the_claim() {
    let (xmark, _) = engines(
        0.01,
        AdmissionConfig::default()
            .with_max_sessions(1)
            .with_queue_timeout(Duration::from_secs(60)),
    );
    let gate = xmark.admission().admit(None, None).expect("gate");

    let session = xmark.open_session();
    let id = session.id();
    let waiter = {
        let xmark = Arc::clone(&xmark);
        std::thread::spawn(move || {
            let r = xmark.execute(&session, r#"doc("auction.xml")//item"#);
            xmark.close_session(session.id());
            r
        })
    };
    await_waiting(&xmark, 1);
    assert!(xmark.cancel(id), "registry resolves the session");
    match waiter.join().expect("waiter") {
        Response::Error(e) => assert_eq!(e.kind, "cancelled", "{e:?}"),
        other => panic!("expected cancelled, got {other:?}"),
    }

    // The cancelled waiter released its queue claim: with the gate still
    // held the queue is empty, and once dropped a new query admits.
    let stats = xmark.stats();
    assert_eq!(stats.admission.cancelled, 1, "{stats:?}");
    assert_eq!(stats.admission.waiting, 0, "{stats:?}");
    drop(gate);
    let session = xmark.open_session();
    assert!(matches!(
        xmark.execute(&session, r#"doc("auction.xml")//item"#),
        Response::Result(_)
    ));
    xmark.close_session(session.id());
    assert!(xmark.admission().drained());
}
