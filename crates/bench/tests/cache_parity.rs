//! Cross-query cache parity suite: with the build, plan and postings
//! caches in the loop, every Table IX query must return *exactly* the
//! caches-off result — cold and warm, at every degree of parallelism,
//! vectorization setting and memory budget — and every cache must drop
//! its entries the moment the catalog version moves (document loads,
//! index DDL).  A property test hammers the shared LRU from many threads
//! to pin the concurrency invariants.

use proptest::prelude::*;
use std::sync::Arc;
use xqjg_bench::{queries, DataSet, Workload};
use xqjg_core::{Mode, Processor, QueryCaches};
use xqjg_store::{ExecConfig, ShardedLru};
use xqjg_xml::DocTable;

/// A fresh processor over the given encoding, wired to `caches` and pinned
/// to `cfg` (no environment reads — the suite must not race on env).
fn processor_with(uri: &str, doc: &DocTable, caches: &QueryCaches, cfg: &ExecConfig) -> Processor {
    let mut p = Processor::with_caches(caches.clone());
    p.load_encoded(uri, doc.clone());
    p.create_default_indexes();
    p.set_exec_config(Some(cfg.clone()));
    p
}

fn encoding(w: &Workload, ds: DataSet) -> (&'static str, &DocTable) {
    match ds {
        DataSet::Xmark => ("auction.xml", &w.xmark_doc),
        DataSet::Dblp => ("dblp.xml", &w.dblp_doc),
    }
}

#[test]
fn cold_and_warm_runs_match_caches_off_across_configs() {
    let workload = Workload::new(0.02);
    // DOP × vectorize × memory budget sweep.  The budget leg forces the
    // spill-decision path: cached builds re-book their reservations, so
    // hit and miss runs must make identical spill decisions.
    let configs: Vec<ExecConfig> = [1usize, 4]
        .iter()
        .flat_map(|&threads| {
            [true, false].iter().flat_map(move |&vectorize| {
                [None, Some(32usize << 20)].iter().map(move |&budget| {
                    ExecConfig::sequential()
                        .with_threads(threads)
                        .with_vectorize(vectorize)
                        .with_mem_budget(budget)
                })
            })
        })
        .collect();
    for q in queries() {
        let (uri, doc) = encoding(&workload, q.dataset);
        for cfg in &configs {
            let cfg_off = cfg
                .clone()
                .with_build_cache(false)
                .with_plan_cache(false)
                .with_postings_cache(false);
            let mut off = processor_with(uri, doc, &QueryCaches::new(), &cfg_off);
            let reference = off.execute(q.text, Mode::JoinGraph).expect("caches off");
            let caches = QueryCaches::new();
            let mut on = processor_with(uri, doc, &caches, cfg);
            let cold = on.execute(q.text, Mode::JoinGraph).expect("cold run");
            let warm = on.execute(q.text, Mode::JoinGraph).expect("warm run");
            assert_eq!(
                cold.items, reference.items,
                "{}: cold run diverges from caches-off (cfg {cfg:?})",
                q.id
            );
            assert_eq!(
                warm.items, reference.items,
                "{}: warm run diverges from caches-off (cfg {cfg:?})",
                q.id
            );
            assert_eq!(
                cold.serialized_nodes, reference.serialized_nodes,
                "{}",
                q.id
            );
            assert_eq!(
                warm.serialized_nodes, reference.serialized_nodes,
                "{}",
                q.id
            );
            // The caches actually engaged: the repeat run served its plans
            // from the plan cache.
            assert!(
                caches.plans().hits() > 0,
                "{}: warm run never hit the plan cache (cfg {cfg:?})",
                q.id
            );
        }
    }
}

#[test]
fn catalog_bump_invalidates_plans_builds_and_postings() {
    let workload = Workload::new(0.02);
    let q = queries().into_iter().find(|q| q.id == "Q2").unwrap();
    let (uri, doc) = encoding(&workload, q.dataset);
    let caches = QueryCaches::new();
    let cfg = ExecConfig::sequential();
    let mut p = processor_with(uri, doc, &caches, &cfg);
    let first = p.execute(q.text, Mode::JoinGraph).expect("first run");
    let second = p.execute(q.text, Mode::JoinGraph).expect("second run");
    assert_eq!(first.items, second.items);
    assert!(caches.plans().hits() > 0, "repeat run warms the plan cache");
    let plan_hits = caches.plans().hits();
    let build_hits = caches.builds().hits();
    let postings_hits = caches.postings().hits();
    let postings_lookups = caches.postings().lookups();
    // DDL: loading another document (and re-indexing) moves the catalog
    // version, so *no* cache may serve a pre-DDL entry.
    p.load_document("other.xml", "<x><y/></x>").unwrap();
    p.create_default_indexes();
    let third = p.execute(q.text, Mode::JoinGraph).expect("post-DDL run");
    assert_eq!(first.items, third.items, "results stay right after DDL");
    assert_eq!(
        caches.plans().hits(),
        plan_hits,
        "stale plan served after catalog bump"
    );
    assert_eq!(
        caches.builds().hits(),
        build_hits,
        "stale build side served after catalog bump"
    );
    // The postings cache hits legitimately *within* one execution (probes
    // repeating identical bounds), so its hit counter is not frozen across
    // the post-DDL run.  The staleness invariant: every distinct key's
    // first lookup at the new catalog version must miss — so the run
    // cannot be all-hits, as a fully (stale-)warm run would be.
    let run_hits = caches.postings().hits() - postings_hits;
    let run_lookups = caches.postings().lookups() - postings_lookups;
    assert!(
        run_lookups == 0 || run_hits < run_lookups,
        "stale postings served after catalog bump ({run_hits}/{run_lookups})"
    );
    // And the post-DDL entries warm up again on the next repeat.
    let fourth = p.execute(q.text, Mode::JoinGraph).expect("post-DDL repeat");
    assert_eq!(first.items, fourth.items);
    assert!(
        caches.plans().hits() > plan_hits,
        "cache re-warms after DDL"
    );
}

#[test]
fn shared_caches_serve_multiple_processors() {
    let workload = Workload::new(0.02);
    let q = queries().into_iter().find(|q| q.id == "Q1").unwrap();
    let (uri, doc) = encoding(&workload, q.dataset);
    let caches = QueryCaches::new();
    let cfg = ExecConfig::sequential();
    let mut a = processor_with(uri, doc, &caches, &cfg);
    let mut b = processor_with(uri, doc, &caches, &cfg);
    let ra = a.execute(q.text, Mode::JoinGraph).expect("processor a");
    let rb = b.execute(q.text, Mode::JoinGraph).expect("processor b");
    assert_eq!(ra.items, rb.items);
    // Each processor's database got its own (process-unique) catalog
    // version, so entries never alias across processors — but both consult
    // the same shared handles.
    assert!(caches.plans().lookups() >= 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hammer one `ShardedLru` from several threads with overlapping key
    /// ranges and occasional version bumps.  Invariants: cached bytes never
    /// exceed capacity, hit counters never exceed lookups, and every value
    /// read is the deterministic function of its key (caching never
    /// corrupts data, whatever the interleaving).
    #[test]
    fn concurrent_sharded_lru_is_bounded_and_correct(
        keys in prop::collection::vec(0u32..64, 32..128),
        threads in 2usize..5,
        bump_every in 8usize..32,
    ) {
        let cache: Arc<ShardedLru<u32, Vec<u32>>> = Arc::new(ShardedLru::new(16 << 10));
        let keys = Arc::new(keys);
        let mut handles = Vec::new();
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let keys = Arc::clone(&keys);
            handles.push(std::thread::spawn(move || {
                let mut version = 1u64;
                for (i, &k) in keys.iter().enumerate() {
                    // Staggered version bumps: threads disagree about the
                    // current catalog version some of the time, exactly as
                    // racing DDL would make them.
                    if i % bump_every == t {
                        version += 1;
                    }
                    let value = vec![k; (k as usize % 7) + 1];
                    if let Some(got) = cache.get(version, &k) {
                        assert_eq!(got.as_slice(), value.as_slice(), "corrupt cache read");
                    } else {
                        cache.insert(version, k, Arc::new(value.clone()), value.len() * 4);
                    }
                    let (got, _hit) = cache
                        .get_or_try_insert::<()>(
                            version,
                            &k,
                            |v| v.len() * 4,
                            || Ok(Arc::new(value.clone())),
                        )
                        .expect("infallible build");
                    assert_eq!(got.as_slice(), value.as_slice(), "corrupt cache value");
                }
            }));
        }
        for h in handles {
            h.join().expect("no thread panicked");
        }
        prop_assert!(cache.bytes() <= cache.capacity(), "byte bound violated");
        prop_assert!(cache.hits() <= cache.lookups(), "hits exceed lookups");
    }
}
