//! Typed-kernel parity suite: execution with the typed-column kernels
//! (`XQJG_TYPED_KERNELS=1`, the default) must be *observationally
//! identical* to the scalar [`Value`] path — identical result rows,
//! identical row order, and identical EXPLAIN actuals modulo the
//! governor-dependent counters (`spill_runs` / `spill_bytes` /
//! `partitions` / `kernel_rows`) — across the Table IX workload and a
//! synthetic hash-join workload, swept over typed {on, off} × DOP {1, 4}
//! × vectorize {on, off} × budget {unlimited, 256 KiB}.  A
//! deterministic-random property test additionally sweeps random
//! predicates and budgets.
//!
//! [`Value`]: xqjg_store::Value

use proptest::prelude::*;
use xqjg_bench::{queries, Workload};
use xqjg_engine::{optimize, parse_sql, ExecStats, PhysPlan, QueryRequest};
use xqjg_store::{Database, ExecConfig, OpStats, Schema, Table, Value};

/// The old tuple-shaped entry point, expressed over the unified
/// [`QueryRequest`] API (the only execution path this suite drives).
fn execute_with_stats_config(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
) -> (Table, ExecStats) {
    let out = QueryRequest::new(plan, db).config(cfg).expect_run();
    (out.rows, out.stats)
}

const UNLIMITED: Option<usize> = None;
const BOUNDED: Option<usize> = Some(256 * 1024);

/// Actuals must agree except for the governor-dependent counters; the
/// aggregate work counters must agree exactly (the kernels change the
/// representation comparisons run on, never how many rows were scanned,
/// probed or bound).
fn assert_stats_match_modulo_spill(got: &ExecStats, reference: &ExecStats, what: &str) {
    assert_eq!(got.index_rows, reference.index_rows, "{what}: index_rows");
    assert_eq!(got.scan_rows, reference.scan_rows, "{what}: scan_rows");
    assert_eq!(got.probes, reference.probes, "{what}: probes");
    assert_eq!(got.bindings, reference.bindings, "{what}: bindings");
    let sans: Vec<OpStats> = got.operators.iter().map(OpStats::sans_spill).collect();
    let sans_ref: Vec<OpStats> = reference
        .operators
        .iter()
        .map(OpStats::sans_spill)
        .collect();
    assert_eq!(sans, sans_ref, "{what}: operator actuals modulo spill");
}

/// Per-query optimized plans (one per decomposed SQL branch).
fn plans_for(workload: &mut Workload, q: &xqjg_bench::BenchQuery) -> Vec<PhysPlan> {
    let prepared = workload
        .processor(q)
        .prepare(q.text)
        .unwrap_or_else(|e| panic!("{} fails to prepare: {e}", q.id));
    let db: &Database = workload.processor(q).database();
    prepared
        .branches
        .iter()
        .map(|b| optimize(&b.isolated.query, db).expect("plan optimizes"))
        .collect()
}

#[test]
fn table9_queries_identical_across_typed_toggle_dop_vectorize_and_budget() {
    let mut workload = Workload::new(0.02);
    for q in queries() {
        let plans = plans_for(&mut workload, &q);
        let db: &Database = workload.processor(&q).database();
        for plan in &plans {
            let reference = execute_with_stats_config(
                plan,
                db,
                &ExecConfig::sequential()
                    .with_vectorize(true)
                    .with_typed_kernels(true)
                    .with_mem_budget(UNLIMITED),
            );
            for typed in [true, false] {
                for budget in [UNLIMITED, BOUNDED] {
                    for threads in [1, 4] {
                        for vectorize in [true, false] {
                            let cfg = ExecConfig::sequential()
                                .with_typed_kernels(typed)
                                .with_mem_budget(budget)
                                .with_threads(threads)
                                .with_morsel_size(16)
                                .with_vectorize(vectorize);
                            let (t, s) = execute_with_stats_config(plan, db, &cfg);
                            let what = format!(
                                "{} typed {typed} budget {budget:?} DOP {threads} \
                                 vectorize {vectorize}",
                                q.id
                            );
                            assert_eq!(t, reference.0, "{what}: rows/order differ");
                            assert_stats_match_modulo_spill(&s, &reference.1, &what);
                        }
                    }
                }
            }
        }
    }
}

/// Synthetic value-equijoin workload over all-typed columns (`pre`/`grp`
/// are pure `i64`, `payload` is a pure string column): no supporting
/// index, so the optimizer picks a hash join, the leaf predicate runs on
/// the `i64` kernel, and `ORDER BY` keeps the SORT tail honest.
fn equijoin_fixture(rows: i64, distinct: bool) -> (Database, PhysPlan) {
    let mut t = Table::new(Schema::new(["pre", "grp", "payload"]));
    for i in 0..rows {
        t.push(vec![
            Value::Int(i),
            Value::Int(i % 53),
            Value::str(format!("payload-{i:05}")),
        ]);
    }
    let mut db = Database::new();
    db.create_table("doc", t);
    let sql = if distinct {
        "SELECT DISTINCT d1.grp AS g, d2.grp AS h FROM doc AS d1, doc AS d2 \
         WHERE d1.grp = d2.grp AND d1.pre <= 150 ORDER BY d1.grp"
    } else {
        "SELECT d1.pre AS a, d2.pre AS b FROM doc AS d1, doc AS d2 \
         WHERE d1.grp = d2.grp AND d1.pre <= 150 ORDER BY d1.pre, d2.pre"
    };
    let plan = optimize(&parse_sql(sql).unwrap(), &db).unwrap();
    (db, plan)
}

#[test]
fn hash_workload_identical_across_typed_toggle_and_engages_kernels() {
    for distinct in [false, true] {
        let (db, plan) = equijoin_fixture(900, distinct);
        let reference = execute_with_stats_config(
            &plan,
            &db,
            &ExecConfig::sequential()
                .with_vectorize(true)
                .with_typed_kernels(true)
                .with_mem_budget(UNLIMITED),
        );
        let mut engaged = false;
        for typed in [true, false] {
            for budget in [UNLIMITED, BOUNDED, Some(8 * 1024)] {
                for threads in [1, 4] {
                    for vectorize in [true, false] {
                        let cfg = ExecConfig::sequential()
                            .with_typed_kernels(typed)
                            .with_mem_budget(budget)
                            .with_threads(threads)
                            .with_morsel_size(64)
                            .with_vectorize(vectorize);
                        let (t, s) = execute_with_stats_config(&plan, &db, &cfg);
                        let what = format!(
                            "distinct {distinct} typed {typed} budget {budget:?} \
                             DOP {threads} vectorize {vectorize}"
                        );
                        assert_eq!(t, reference.0, "{what}: rows/order differ");
                        assert_stats_match_modulo_spill(&s, &reference.1, &what);
                        let kernels = s.operators.iter().map(|o| o.kernel_rows).sum::<usize>();
                        if typed && vectorize {
                            engaged |= kernels > 0;
                        } else if !typed {
                            assert_eq!(kernels, 0, "{what}: kernels off must not engage");
                        }
                    }
                }
            }
        }
        assert!(
            engaged,
            "distinct {distinct}: the typed legs never engaged a kernel — the suite is vacuous"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random predicate constants, budgets, DOP and executor flavor: the
    /// typed and scalar paths must return identical rows in identical
    /// order, with identical actuals modulo the governor counters.
    #[test]
    fn typed_and_scalar_paths_agree_over_random_predicates(
        bound in 0i64..900,
        needle in 0usize..1000,
        budget_bytes in 4096usize..64 * 1024,
        unlimited in proptest::bool::ANY,
        threads in 1usize..5,
        vectorize in proptest::bool::ANY,
    ) {
        let budget = (!unlimited).then_some(budget_bytes);
        let mut t = Table::new(Schema::new(["pre", "grp", "payload"]));
        for i in 0..900i64 {
            t.push(vec![
                Value::Int(i),
                Value::Int(i % 37),
                Value::str(format!("payload-{:05}", i % 250)),
            ]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        let sql = format!(
            "SELECT d1.pre AS a, d2.pre AS b FROM doc AS d1, doc AS d2 \
             WHERE d1.grp = d2.grp AND d1.pre <= {bound} \
             AND d2.payload >= 'payload-{needle:05}' \
             ORDER BY d1.pre, d2.pre"
        );
        let plan = optimize(&parse_sql(&sql).unwrap(), &db).unwrap();
        let cfg = ExecConfig::sequential()
            .with_mem_budget(budget)
            .with_threads(threads)
            .with_morsel_size(64)
            .with_vectorize(vectorize);
        let (t_on, s_on) =
            execute_with_stats_config(&plan, &db, &cfg.clone().with_typed_kernels(true));
        let (t_off, s_off) =
            execute_with_stats_config(&plan, &db, &cfg.with_typed_kernels(false));
        prop_assert_eq!(&t_on, &t_off, "typed toggle changed rows");
        let sans_on: Vec<OpStats> = s_on.operators.iter().map(OpStats::sans_spill).collect();
        let sans_off: Vec<OpStats> = s_off.operators.iter().map(OpStats::sans_spill).collect();
        prop_assert_eq!(sans_on, sans_off, "typed toggle changed actuals");
        prop_assert_eq!(s_on.scan_rows, s_off.scan_rows);
        prop_assert_eq!(s_on.probes, s_off.probes);
        prop_assert_eq!(s_on.bindings, s_off.bindings);
    }

    /// NULL-aware sweep: random NULL densities over an `i64` and a
    /// dictionary column, a composite (two-column, NULL-bearing) equijoin
    /// key, and a multi-term conjunctive residual — every configuration
    /// must be bit-identical to the scalar row-path oracle, spilled legs
    /// included.
    #[test]
    fn null_density_composite_keys_and_multi_term_predicates_match_the_row_path(
        rows in 150i64..500,
        grp_nulls in 2i64..12,
        tag_nulls in 2i64..12,
        bound in 0i64..500,
        lo in 0i64..25,
        tiny in proptest::bool::ANY,
        four_way in proptest::bool::ANY,
        vectorize in proptest::bool::ANY,
    ) {
        let mut t = Table::new(Schema::new(["pre", "grp", "tag", "val"]));
        for i in 0..rows {
            let grp = if i % grp_nulls == 1 {
                Value::Null
            } else {
                Value::Int(i % 29)
            };
            let tag = if i % tag_nulls == 0 {
                Value::Null
            } else {
                Value::str(format!("t{}", i % 7))
            };
            t.push(vec![Value::Int(i), grp, tag, Value::Int(i % 41)]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        // Composite hash key over both NULL-bearing columns plus a
        // conjunction of imaged residual terms on each side.
        let sql = format!(
            "SELECT d1.pre AS a, d2.pre AS b FROM doc AS d1, doc AS d2 \
             WHERE d1.grp = d2.grp AND d1.tag = d2.tag \
             AND d1.pre <= {bound} AND d1.val >= {lo} AND d2.val <> {lo} \
             ORDER BY d1.pre, d2.pre"
        );
        let plan = optimize(&parse_sql(&sql).unwrap(), &db).unwrap();
        let threads = if four_way { 4 } else { 1 };
        let budget = tiny.then_some(4 * 1024);
        // Oracle: sequential scalar row path, kernels off.
        let (t_ref, s_ref) = execute_with_stats_config(
            &plan,
            &db,
            &ExecConfig::sequential()
                .with_vectorize(false)
                .with_typed_kernels(false)
                .with_mem_budget(budget),
        );
        for typed in [true, false] {
            let cfg = ExecConfig::sequential()
                .with_typed_kernels(typed)
                .with_mem_budget(budget)
                .with_threads(threads)
                .with_morsel_size(32)
                .with_vectorize(vectorize);
            let (t, s) = execute_with_stats_config(&plan, &db, &cfg);
            prop_assert_eq!(&t, &t_ref, "typed {} diverged from the row path", typed);
            prop_assert_eq!(s.scan_rows, s_ref.scan_rows);
            prop_assert_eq!(s.probes, s_ref.probes);
            prop_assert_eq!(s.bindings, s_ref.bindings);
            let sans: Vec<OpStats> = s.operators.iter().map(OpStats::sans_spill).collect();
            let sans_ref: Vec<OpStats> =
                s_ref.operators.iter().map(OpStats::sans_spill).collect();
            prop_assert_eq!(sans, sans_ref, "typed {} changed actuals", typed);
        }
    }
}
