//! DOP parity suite: for every Table IX query, the morsel-parallel
//! executor must be *observationally identical* to sequential execution —
//! identical result rows (after SORT) and identical aggregated per-operator
//! actuals — at every degree of parallelism, morsel size and evaluation
//! path (relational join graph and the pureXML-style baseline).

use xqjg_bench::{queries, DataSet, Workload};
use xqjg_engine::{optimize, ExecStats, PhysPlan, QueryRequest};
use xqjg_purexml::{PureXmlStore, Storage};
use xqjg_store::{Database, ExecConfig, Table};
use xqjg_xquery::parse_and_normalize;

/// The old tuple-shaped entry point, expressed over the unified
/// [`QueryRequest`] API (the only execution path this suite drives).
fn execute_with_stats_config(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
) -> (Table, ExecStats) {
    let out = QueryRequest::new(plan, db).config(cfg).expect_run();
    (out.rows, out.stats)
}

const DOPS: [usize; 3] = [1, 2, 4];

/// A copy of `s` with every operator's `kernel_rows` zeroed — the one
/// counter allowed to differ between the vectorized executor (which runs
/// the typed kernels) and the scalar fallback (which does not).
fn sans_kernels(s: &ExecStats) -> ExecStats {
    let mut s = s.clone();
    for op in &mut s.operators {
        op.kernel_rows = 0;
    }
    s
}

/// Per-query optimized plans (one per decomposed SQL branch).
fn plans_for(workload: &mut Workload, q: &xqjg_bench::BenchQuery) -> Vec<PhysPlan> {
    let prepared = workload
        .processor(q)
        .prepare(q.text)
        .unwrap_or_else(|e| panic!("{} fails to prepare: {e}", q.id));
    let db: &Database = workload.processor(q).database();
    prepared
        .branches
        .iter()
        .map(|b| optimize(&b.isolated.query, db).expect("plan optimizes"))
        .collect()
}

#[test]
fn join_graph_results_and_actuals_identical_across_dop() {
    let mut workload = Workload::new(0.02);
    for q in queries() {
        let plans = plans_for(&mut workload, &q);
        let db: &Database = workload.processor(&q).database();
        for plan in &plans {
            // One reference per evaluation path: the vectorized executor
            // runs the typed kernels (its `kernel_rows` count the fused
            // passes), the scalar row-at-a-time fallback runs none — so
            // each configuration must exactly match the reference of *its*
            // path, and the two references must agree on everything except
            // kernel engagement.
            let (t_ref, s_ref) =
                execute_with_stats_config(plan, db, &ExecConfig::sequential().with_vectorize(true));
            let (t_row, s_row) = execute_with_stats_config(
                plan,
                db,
                &ExecConfig::sequential().with_vectorize(false),
            );
            assert_eq!(t_row, t_ref, "{}: rows differ across executors", q.id);
            assert_eq!(
                sans_kernels(&s_row),
                sans_kernels(&s_ref),
                "{}: executors differ beyond kernel engagement",
                q.id
            );
            for threads in DOPS {
                // A tiny morsel size forces genuine multi-morsel merging
                // even at this scale; the default exercises the
                // effective-morsel-size shrink path.  Both executors — the
                // vectorized columnar one and the scalar row-at-a-time
                // fallback — must match their sequential reference.
                for morsel_size in [3, xqjg_store::DEFAULT_MORSEL_SIZE] {
                    for vectorize in [true, false] {
                        let (exp_t, exp_s) = if vectorize {
                            (&t_ref, &s_ref)
                        } else {
                            (&t_row, &s_row)
                        };
                        let cfg = ExecConfig::sequential()
                            .with_threads(threads)
                            .with_morsel_size(morsel_size)
                            .with_vectorize(vectorize);
                        let (t, s) = execute_with_stats_config(plan, db, &cfg);
                        assert_eq!(
                            &t, exp_t,
                            "{}: rows differ at DOP {threads} (vectorize {vectorize})",
                            q.id
                        );
                        assert_eq!(
                            &s, exp_s,
                            "{}: aggregated OpStats differ at DOP {threads} \
                             (morsel {morsel_size}, vectorize {vectorize})",
                            q.id
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn join_graph_aggregate_counters_identical_across_dop() {
    let mut workload = Workload::new(0.02);
    for q in queries() {
        let plans = plans_for(&mut workload, &q);
        let db: &Database = workload.processor(&q).database();
        let run = |threads: usize| {
            let mut stats = ExecStats::default();
            let cfg = ExecConfig::sequential()
                .with_threads(threads)
                .with_morsel_size(5);
            for plan in &plans {
                stats.merge(&execute_with_stats_config(plan, db, &cfg).1);
            }
            stats
        };
        let reference = run(1);
        assert!(
            !reference.operators.is_empty(),
            "{}: operators recorded",
            q.id
        );
        for threads in DOPS {
            assert_eq!(run(threads), reference, "{}: DOP {threads}", q.id);
        }
    }
}

#[test]
fn purexml_results_and_actuals_identical_across_dop() {
    let workload = Workload::new(0.02);
    for q in queries() {
        // Q2's navigational evaluation is the harness's DNF case — skip it
        // here exactly as Table IX does.
        if q.id == "Q2" {
            continue;
        }
        let (doc, uri, depth) = workload.encoding(&q);
        let core = parse_and_normalize(q.text, Some(uri)).expect("query normalizes");
        for storage in [Storage::Whole, Storage::Segmented { depth }] {
            let mut store = PureXmlStore::new(doc, storage);
            store.create_pattern_index(&["person", "@id"]);
            store.create_pattern_index(&["closed_auction", "price"]);
            store.create_pattern_index(&["proceedings", "@key"]);
            store.create_pattern_index(&["phdthesis", "year"]);
            let reference = store.query(&core).config(&ExecConfig::sequential()).run();
            for threads in DOPS {
                let cfg = ExecConfig::sequential()
                    .with_threads(threads)
                    .with_morsel_size(2);
                let got = store.query(&core).config(&cfg).run();
                assert_eq!(
                    got.0, reference.0,
                    "{}: items differ at DOP {threads} ({storage:?})",
                    q.id
                );
                assert_eq!(
                    got.1, reference.1,
                    "{}: stats differ at DOP {threads} ({storage:?})",
                    q.id
                );
            }
        }
    }
}

#[test]
fn stacked_materialized_rows_metric_unaffected_by_parallel_knobs() {
    // The stacked evaluator runs DOP-independent (its DAG memoization is
    // inherently order-sensitive); its materialized-rows metric must not
    // move when the parallel executor is in play for the other modes.
    let mut workload = Workload::new(0.02);
    let q = queries()
        .into_iter()
        .find(|q| q.dataset == DataSet::Xmark)
        .unwrap();
    let prepared = workload.processor(&q).prepare(q.text).unwrap();
    let doc = workload.xmark_doc.clone();
    let rel = xqjg_algebra::doc_relation(&doc);
    let ctx = xqjg_algebra::EvalContext { doc: &rel };
    let branch = &prepared.branches[0];
    let a = xqjg_algebra::materialized_rows(&branch.stacked, &ctx);
    let b = xqjg_algebra::materialized_rows(&branch.stacked, &ctx);
    assert_eq!(a, b);
    assert!(a > 0);
}
