//! Spill parity suite: execution under any memory budget must be
//! *observationally identical* to in-memory execution — identical result
//! rows, identical row order, and identical EXPLAIN actuals *modulo* the
//! spill counters (`spill_runs` / `spill_bytes` / `partitions`), across
//! budgets {tiny, medium, unlimited}, DOP {1, 4} and the
//! vectorized/scalar executor switch.  A deterministic-random property
//! test additionally sweeps arbitrary budgets.

use proptest::prelude::*;
use xqjg_bench::{queries, Workload};
use xqjg_engine::{optimize, parse_sql, ExecStats, PhysPlan, QueryRequest};
use xqjg_store::{Database, ExecConfig, OpStats, Schema, Table, Value};

/// The old tuple-shaped entry point, expressed over the unified
/// [`QueryRequest`] API (the only execution path this suite drives).
fn execute_with_stats_config(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
) -> (Table, ExecStats) {
    let out = QueryRequest::new(plan, db).config(cfg).expect_run();
    (out.rows, out.stats)
}

const TINY: Option<usize> = Some(1024);
const MEDIUM: Option<usize> = Some(1 << 20);
const UNLIMITED: Option<usize> = None;

/// Actuals must agree except for how much was spilled; the aggregate work
/// counters must agree exactly (spilling changes *where* rows live, never
/// how many were scanned, probed or bound).
fn assert_stats_match_modulo_spill(got: &ExecStats, reference: &ExecStats, what: &str) {
    assert_eq!(got.index_rows, reference.index_rows, "{what}: index_rows");
    assert_eq!(got.scan_rows, reference.scan_rows, "{what}: scan_rows");
    assert_eq!(got.probes, reference.probes, "{what}: probes");
    assert_eq!(got.bindings, reference.bindings, "{what}: bindings");
    let sans: Vec<OpStats> = got.operators.iter().map(OpStats::sans_spill).collect();
    let sans_ref: Vec<OpStats> = reference
        .operators
        .iter()
        .map(OpStats::sans_spill)
        .collect();
    assert_eq!(sans, sans_ref, "{what}: operator actuals modulo spill");
}

/// Per-query optimized plans (one per decomposed SQL branch).
fn plans_for(workload: &mut Workload, q: &xqjg_bench::BenchQuery) -> Vec<PhysPlan> {
    let prepared = workload
        .processor(q)
        .prepare(q.text)
        .unwrap_or_else(|e| panic!("{} fails to prepare: {e}", q.id));
    let db: &Database = workload.processor(q).database();
    prepared
        .branches
        .iter()
        .map(|b| optimize(&b.isolated.query, db).expect("plan optimizes"))
        .collect()
}

#[test]
fn table9_queries_identical_across_budgets_dop_and_vectorize() {
    let mut workload = Workload::new(0.02);
    let mut spilled_somewhere = false;
    for q in queries() {
        let plans = plans_for(&mut workload, &q);
        let db: &Database = workload.processor(&q).database();
        for plan in &plans {
            let reference = execute_with_stats_config(
                plan,
                db,
                &ExecConfig::sequential().with_mem_budget(UNLIMITED),
            );
            assert!(
                reference.1.operators.iter().all(|o| o.spill_runs == 0),
                "{}: unlimited budget must never spill",
                q.id
            );
            for budget in [TINY, MEDIUM, UNLIMITED] {
                for threads in [1, 4] {
                    for vectorize in [true, false] {
                        let cfg = ExecConfig::sequential()
                            .with_mem_budget(budget)
                            .with_threads(threads)
                            .with_morsel_size(16)
                            .with_vectorize(vectorize);
                        let (t, s) = execute_with_stats_config(plan, db, &cfg);
                        let what = format!(
                            "{} budget {budget:?} DOP {threads} vectorize {vectorize}",
                            q.id
                        );
                        assert_eq!(t, reference.0, "{what}: rows/order differ");
                        assert_stats_match_modulo_spill(&s, &reference.1, &what);
                        spilled_somewhere |= s.operators.iter().any(|o| o.spill_runs > 0);
                    }
                }
            }
        }
    }
    assert!(
        spilled_somewhere,
        "the tiny budget never engaged the spill path — the suite is vacuous"
    );
}

#[test]
fn spill_counters_are_dop_and_path_invariant_at_fixed_budget() {
    // At a fixed budget the *full* actuals — spill counters included —
    // must not move with DOP or morsel size: spill decisions happen on
    // the coordinator against the morsel-ordered row stream.  Each
    // executor flavor matches its own sequential reference (only the
    // vectorized one runs the typed kernels, so `kernel_rows` is the one
    // counter allowed to differ between the two references).
    let mut workload = Workload::new(0.02);
    for q in queries() {
        let plans = plans_for(&mut workload, &q);
        let db: &Database = workload.processor(&q).database();
        for plan in &plans {
            let ref_of = |vectorize: bool| {
                execute_with_stats_config(
                    plan,
                    db,
                    &ExecConfig::sequential()
                        .with_mem_budget(TINY)
                        .with_vectorize(vectorize),
                )
            };
            let reference = [ref_of(false), ref_of(true)];
            assert_eq!(
                reference[0].0, reference[1].0,
                "{}: rows differ across executors",
                q.id
            );
            for threads in [2, 4] {
                for morsel in [8, 64] {
                    for vectorize in [true, false] {
                        let reference = &reference[vectorize as usize];
                        let cfg = ExecConfig::sequential()
                            .with_mem_budget(TINY)
                            .with_threads(threads)
                            .with_morsel_size(morsel)
                            .with_vectorize(vectorize);
                        let got = execute_with_stats_config(plan, db, &cfg);
                        assert_eq!(got.0, reference.0, "{}: rows", q.id);
                        assert_eq!(
                            got.1, reference.1,
                            "{}: full actuals at DOP {threads} morsel {morsel} \
                             vectorize {vectorize}",
                            q.id
                        );
                    }
                }
            }
        }
    }
}

/// Synthetic value-equijoin workload: no supporting index, so the
/// optimizer picks a hash join; `ORDER BY` keeps the SORT tail honest.
fn equijoin_fixture(rows: i64) -> (Database, PhysPlan) {
    let mut t = Table::new(Schema::new(["pre", "grp", "payload"]));
    for i in 0..rows {
        t.push(vec![
            Value::Int(i),
            Value::Int(i % 53),
            Value::str(format!("payload-{i:05}")),
        ]);
    }
    let mut db = Database::new();
    db.create_table("doc", t);
    let q = parse_sql(
        "SELECT d1.pre AS a, d2.pre AS b FROM doc AS d1, doc AS d2 \
         WHERE d1.grp = d2.grp AND d1.pre <= 150 ORDER BY d1.pre, d2.pre",
    )
    .unwrap();
    let plan = optimize(&q, &db).unwrap();
    (db, plan)
}

#[test]
fn tight_budget_spills_both_pipeline_breakers_on_the_hash_workload() {
    let (db, plan) = equijoin_fixture(1500);
    let (t_ref, s_ref) = execute_with_stats_config(
        &plan,
        &db,
        &ExecConfig::sequential().with_mem_budget(UNLIMITED),
    );
    let (t, s) = execute_with_stats_config(
        &plan,
        &db,
        &ExecConfig::sequential().with_mem_budget(Some(8 * 1024)),
    );
    assert_eq!(t, t_ref);
    assert_stats_match_modulo_spill(&s, &s_ref, "hash workload");
    let hsjoin = s
        .operators
        .iter()
        .find(|o| o.name.starts_with("HSJOIN"))
        .expect("hash join planned");
    assert!(hsjoin.spill_runs > 0 && hsjoin.spill_bytes > 0 && hsjoin.partitions > 0);
    let sort = s
        .operators
        .iter()
        .find(|o| o.name.starts_with("SORT"))
        .expect("sort tail present");
    assert!(sort.spill_runs > 0 && sort.spill_bytes > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random budgets (from absurdly tight to comfortably large), DOP and
    /// executor flavor never change the result rows or their order.
    #[test]
    fn random_budgets_never_change_results(
        budget in 256usize..128 * 1024,
        threads in 1usize..5,
        vectorize in proptest::bool::ANY,
    ) {
        let (db, plan) = equijoin_fixture(600);
        let reference = execute_with_stats_config(
            &plan,
            &db,
            &ExecConfig::sequential().with_mem_budget(UNLIMITED),
        );
        let cfg = ExecConfig::sequential()
            .with_mem_budget(Some(budget))
            .with_threads(threads)
            .with_morsel_size(64)
            .with_vectorize(vectorize);
        let (t, s) = execute_with_stats_config(&plan, &db, &cfg);
        prop_assert_eq!(&t, &reference.0, "budget {} changed rows", budget);
        let sans: Vec<OpStats> = s.operators.iter().map(OpStats::sans_spill).collect();
        let sans_ref: Vec<OpStats> =
            reference.1.operators.iter().map(OpStats::sans_spill).collect();
        prop_assert_eq!(sans, sans_ref, "budget {} changed actuals", budget);
    }
}
