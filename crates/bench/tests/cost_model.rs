//! Cost-model regression suite.
//!
//! PR 3 made plan choice deterministic, which exposed that the optimizer
//! ranked a ~60×-slower Q2 join order cheapest: each structural containment
//! window contributed two independent `OUTER_RANGE_SEL` factors, so
//! "somewhere inside the document root" looked like a 0.6% filter and the
//! DP happily crossed `category` against the `item` subtree before the
//! selective value joins, blowing the intermediate binding count to ~25 000
//! for an 11-row result.  The recalibrated model (containment groups with
//! tiling selectivity, one-row cardinality floor) must keep Q2 on a
//! blowup-free order — these tests pin that via the measured `OpStats`, so
//! they hold regardless of how aliases are numbered.

use xqjg_bench::{queries, Workload};
use xqjg_engine::{optimize, ExecStats, QueryRequest};
use xqjg_store::{Database, ExecConfig};

fn q2_stats(scale: f64) -> (usize, ExecStats) {
    let mut workload = Workload::new(scale);
    let q = queries().into_iter().find(|q| q.id == "Q2").unwrap();
    let prepared = workload.processor(&q).prepare(q.text).expect("Q2 prepares");
    let db: &Database = workload.processor(&q).database();
    let mut rows = 0usize;
    let mut stats = ExecStats::default();
    for b in &prepared.branches {
        let plan = optimize(&b.isolated.query, db).expect("Q2 optimizes");
        let out = QueryRequest::new(&plan, db)
            .config(&ExecConfig::sequential())
            .expect_run();
        rows += out.rows.len();
        stats.merge(&out.stats);
    }
    (rows, stats)
}

#[test]
fn q2_join_order_avoids_cartesian_blowup() {
    let (rows, stats) = q2_stats(0.1);
    assert!(rows > 0, "Q2 returns rows at this scale");

    // The misranked order performed ~140 000 index probes and carried a
    // peak of ~25 000 bindings through five join levels; the good order
    // needs under a hundred probes.  A generous 20× headroom keeps the
    // test stable across data-generator tweaks while still catching any
    // return of the blowup order.
    assert!(
        stats.probes < 2_000,
        "Q2 probe count exploded: {} probes (cost model regression?)",
        stats.probes
    );
    let peak_bindings = stats
        .operators
        .iter()
        .filter(|o| o.name.starts_with("NLJOIN") || o.name.starts_with("HSJOIN"))
        .map(|o| o.rows_out)
        .max()
        .unwrap_or(0);
    assert!(
        peak_bindings <= rows * 100,
        "Q2 intermediate bindings exploded: peak {peak_bindings} for {rows} result rows"
    );
}

#[test]
fn q2_leaf_is_the_selective_price_predicate() {
    // The only sub-1%-selectivity entry point of Q2 is `price > 500`; a
    // healthy cost model anchors the pipeline there (or at the document
    // node), never at an unfiltered element scan.
    let mut workload = Workload::new(0.05);
    let q = queries().into_iter().find(|q| q.id == "Q2").unwrap();
    let prepared = workload.processor(&q).prepare(q.text).expect("Q2 prepares");
    let db: &Database = workload.processor(&q).database();
    for b in &prepared.branches {
        let plan = optimize(&b.isolated.query, db).expect("Q2 optimizes");
        let first = plan.join_order()[0].clone();
        // The leaf alias must carry a data-valued or document-level local
        // predicate — i.e. its local estimate is tiny compared to the
        // element population.
        fn leaf_est(node: &xqjg_engine::JoinNode) -> f64 {
            match node {
                xqjg_engine::JoinNode::Leaf { est_rows, .. } => *est_rows,
                xqjg_engine::JoinNode::Join { outer, .. } => leaf_est(outer),
            }
        }
        let leaf_rows = leaf_est(&plan.root);
        assert!(
            leaf_rows <= 64.0,
            "Q2 pipeline anchored at an unselective leaf {first:?} (est {leaf_rows} rows)"
        );
    }
}
