//! Chaos suite: deterministic fault injection over the spill machinery.
//!
//! Every named fault site is swept across trigger positions, degrees of
//! parallelism and memory budgets, asserting the failure contract of the
//! execution layer: faults surface as typed [`ExecError`]s (never panics),
//! no spill run or partition files leak, the memory budget drains to zero
//! on every exit path (enforced by a debug assertion inside the executor,
//! which this suite exercises by running in a debug build), and the same
//! plan re-executes successfully — byte-identical to an unfaulted run —
//! as soon as the fault is disarmed.
//!
//! Fault arming is process-global, so every test that performs spill I/O
//! (with or without a guard) serializes on one file-level lock; the pure
//! codec property tests touch no I/O and run unserialized.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use proptest::prelude::*;
use xqjg_bench::{queries, Workload};
use xqjg_core::{Mode, QueryError};
use xqjg_engine::{optimize, parse_sql, BuildCache, ExecStats, ExecTrace, PhysPlan, QueryRequest};
use xqjg_store::fault::{self, FaultKind, FaultPlan, Trigger};
use xqjg_store::spill::{decode_row, decode_value, encode_row};
use xqjg_store::{CancelToken, Database, ExecConfig, ExecError, Schema, Table, Value};

/// The old tuple-shaped entry point, expressed over the unified
/// [`QueryRequest`] API (the only execution path this suite drives).
fn try_execute_with_stats_config(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<(Table, ExecStats), ExecError> {
    let out = QueryRequest::new(plan, db).config(cfg).run()?;
    Ok((out.rows, out.stats))
}

/// Full-surface twin: session build cache plus cancellation token.
fn try_execute_full(
    plan: &PhysPlan,
    db: &Database,
    cfg: &ExecConfig,
    cache: Option<&BuildCache>,
    cancel: Option<&CancelToken>,
) -> Result<(Table, ExecStats, ExecTrace), ExecError> {
    let mut req = QueryRequest::new(plan, db).config(cfg);
    if let Some(c) = cache {
        req = req.build_cache(c);
    }
    if let Some(t) = cancel {
        req = req.cancel(t);
    }
    let out = req.run()?;
    Ok((out.rows, out.stats, out.trace))
}

/// A budget that forces both pipeline breakers of the equijoin fixture —
/// the Grace hash build and the external sort — to spill.
const TIGHT: Option<usize> = Some(8 * 1024);
const UNLIMITED: Option<usize> = None;

/// Serializes every I/O-performing test in this binary: a fault armed by
/// one test must never bleed into another test's "unfaulted" run.
fn io_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh per-test spill directory (the executor creates it on demand).
fn fresh_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xqjg-chaos-{tag}-{}-{n}", std::process::id()))
}

/// Spill files left behind in `dir` (a missing directory counts as clean —
/// unlimited-budget runs never create it).
fn leaked_files(dir: &PathBuf) -> Vec<String> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// A self-join whose hash build and sort tail both go external under
/// [`TIGHT`] — the same workload the spill parity suite leans on.
fn equijoin_fixture(rows: i64) -> (Database, PhysPlan) {
    let mut t = Table::new(Schema::new(["pre", "grp", "payload"]));
    for i in 0..rows {
        t.push(vec![
            Value::Int(i),
            Value::Int(i % 53),
            Value::str(format!("payload-{i:05}")),
        ]);
    }
    let mut db = Database::new();
    db.create_table("doc", t);
    let q = parse_sql(
        "SELECT d1.pre AS a, d2.pre AS b FROM doc AS d1, doc AS d2 \
         WHERE d1.grp = d2.grp AND d1.pre <= 150 ORDER BY d1.pre, d2.pre",
    )
    .expect("fixture SQL parses");
    let plan = optimize(&q, &db).expect("fixture plan optimizes");
    (db, plan)
}

/// Set env vars for the duration of `f`, restoring previous values after.
fn with_env<R>(vars: &[(&str, Option<&str>)], f: impl FnOnce() -> R) -> R {
    let prev: Vec<(String, Option<String>)> = vars
        .iter()
        .map(|(k, _)| (k.to_string(), std::env::var(k).ok()))
        .collect();
    for (k, v) in vars {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    let out = f();
    for (k, v) in prev {
        match v {
            Some(v) => std::env::set_var(&k, v),
            None => std::env::remove_var(&k),
        }
    }
    out
}

/// The core chaos sweep: every fault site × trigger {first, third, always}
/// × DOP {1, 4} × budget {tight, unlimited}, with an injected transient
/// I/O error.  Each combination must either fail with a typed error or
/// succeed (fault never reached, or absorbed by the bounded retry) with
/// results byte-identical to the unfaulted reference — and must always
/// leave the spill directory clean and recover fully once disarmed.
#[test]
fn chaos_sweep_every_site_trigger_dop_budget() {
    let _guard = io_lock();
    let (db, plan) = equijoin_fixture(1500);
    let mut saw_error = false;
    let mut saw_ok_under_fault = false;
    for site in fault::ALL_SITES {
        for trigger in [Trigger::Nth(1), Trigger::Nth(3), Trigger::Always] {
            for threads in [1usize, 4] {
                for budget in [TIGHT, UNLIMITED] {
                    let dir = fresh_dir("sweep");
                    let cfg = ExecConfig::sequential()
                        .with_mem_budget(budget)
                        .with_threads(threads)
                        .with_morsel_size(64)
                        .with_spill_dir(&dir);
                    let what = format!("site {site} {trigger:?} DOP {threads} budget {budget:?}");
                    let reference = try_execute_with_stats_config(&plan, &db, &cfg)
                        .unwrap_or_else(|e| panic!("{what}: unfaulted reference fails: {e}"));
                    let guard = FaultPlan::single(site, trigger, FaultKind::IoError).install();
                    match try_execute_with_stats_config(&plan, &db, &cfg) {
                        Ok((table, _)) => {
                            saw_ok_under_fault = true;
                            assert_eq!(
                                table, reference.0,
                                "{what}: survived the fault but rows differ"
                            );
                        }
                        Err(e) => {
                            saw_error = true;
                            assert!(
                                matches!(e, ExecError::Io { .. } | ExecError::Corrupt { .. }),
                                "{what}: unexpected error class: {e}"
                            );
                        }
                    }
                    assert_eq!(
                        leaked_files(&dir),
                        Vec::<String>::new(),
                        "{what}: run files leaked under fault"
                    );
                    drop(guard);
                    let (table, _) = try_execute_with_stats_config(&plan, &db, &cfg)
                        .unwrap_or_else(|e| panic!("{what}: retry after disarm fails: {e}"));
                    assert_eq!(table, reference.0, "{what}: retry rows differ");
                    assert_eq!(
                        leaked_files(&dir),
                        Vec::<String>::new(),
                        "{what}: run files leaked after retry"
                    );
                    let _ = std::fs::remove_dir(&dir);
                }
            }
        }
    }
    assert!(saw_error, "no combination errored — the sweep is vacuous");
    assert!(
        saw_ok_under_fault,
        "no combination was absorbed — retry/skip coverage is vacuous"
    );
}

/// Corrupting and short-write faults on the write sites must surface as
/// typed errors (checksum mismatches name the file and offset), never as
/// panics, and never leak run files.
#[test]
fn corrupt_and_short_write_faults_error_not_panic() {
    let _guard = io_lock();
    let (db, plan) = equijoin_fixture(1500);
    let mut saw_corrupt = false;
    for site in [
        fault::SITE_RUN_WRITE,
        fault::SITE_PART_WRITE,
        fault::SITE_MERGE_WRITE,
    ] {
        for kind in [FaultKind::Corrupt, FaultKind::ShortWrite] {
            let dir = fresh_dir("corrupt");
            let cfg = ExecConfig::sequential()
                .with_mem_budget(TIGHT)
                .with_spill_dir(&dir);
            let what = format!("site {site} kind {kind:?}");
            let reference = try_execute_with_stats_config(&plan, &db, &cfg)
                .unwrap_or_else(|e| panic!("{what}: unfaulted reference fails: {e}"));
            let guard = FaultPlan::single(site, Trigger::Always, kind).install();
            match try_execute_with_stats_config(&plan, &db, &cfg) {
                Ok((table, _)) => assert_eq!(table, reference.0, "{what}: rows differ"),
                Err(e) => {
                    if let ExecError::Corrupt { file, .. } = &e {
                        assert!(!file.is_empty(), "{what}: corrupt error names no file");
                        saw_corrupt = true;
                    }
                }
            }
            assert_eq!(
                leaked_files(&dir),
                Vec::<String>::new(),
                "{what}: run files leaked"
            );
            drop(guard);
            let (table, _) = try_execute_with_stats_config(&plan, &db, &cfg)
                .unwrap_or_else(|e| panic!("{what}: retry after disarm fails: {e}"));
            assert_eq!(table, reference.0, "{what}: retry rows differ");
            let _ = std::fs::remove_dir(&dir);
        }
    }
    assert!(
        saw_corrupt,
        "no corrupting fault produced a located Corrupt error — vacuous"
    );
}

/// The acceptance sweep at the processor level: with any single armed
/// spill-site fault, every Table IX query under a 1k budget returns
/// `Err(QueryError::Exec(..))` or succeeds via retry — and the same query
/// re-executed immediately on the *same* processor (same session build
/// cache) succeeds byte-identical to the unfaulted run.
#[test]
fn table9_queries_fault_then_same_processor_retry() {
    let _guard = io_lock();
    let dir = fresh_dir("table9");
    with_env(
        &[
            ("XQJG_MEM_BUDGET", Some("1024")),
            ("XQJG_SPILL_DIR", Some(dir.to_str().expect("utf-8 path"))),
            ("XQJG_FAULTS", None),
        ],
        || {
            let mut workload = Workload::new(0.02);
            let mut saw_error = false;
            for q in queries() {
                let p = workload.processor(&q);
                let reference = p
                    .execute(q.text, Mode::JoinGraph)
                    .unwrap_or_else(|e| panic!("{}: unfaulted run fails: {e}", q.id));
                for site in fault::ALL_SITES {
                    let what = format!("{} site {site}", q.id);
                    let guard =
                        FaultPlan::single(site, Trigger::Always, FaultKind::IoError).install();
                    match p.execute(q.text, Mode::JoinGraph) {
                        Ok(out) => assert_eq!(
                            out.items, reference.items,
                            "{what}: survived but items differ"
                        ),
                        Err(e) => {
                            saw_error = true;
                            assert!(
                                matches!(e, QueryError::Exec(_)),
                                "{what}: expected a typed exec error, got: {e}"
                            );
                            assert_eq!(e.stage(), "exec", "{what}: wrong stage");
                        }
                    }
                    drop(guard);
                    let retried = p
                        .execute(q.text, Mode::JoinGraph)
                        .unwrap_or_else(|e| panic!("{what}: same-processor retry fails: {e}"));
                    assert_eq!(
                        retried.items, reference.items,
                        "{what}: retry items differ from the unfaulted run"
                    );
                }
                assert_eq!(
                    leaked_files(&dir),
                    Vec::<String>::new(),
                    "{}: run files leaked",
                    q.id
                );
            }
            assert!(saw_error, "no query errored under any fault — vacuous");
        },
    );
    let _ = std::fs::remove_dir(&dir);
}

/// Satellite regression: a hash-join build that fails mid-construction
/// must leave *no* entry in the session build cache — the next execution
/// performs a fresh (miss) lookup, rebuilds from scratch and succeeds.
#[test]
fn failed_build_leaves_no_cache_entry() {
    let _guard = io_lock();
    // Enough build rows to cross the in-build interrupt check (every 4096
    // rows), with an unlimited budget so the finished build *would* be
    // memoized — exactly the case where a partial entry could leak.
    let (db, plan) = equijoin_fixture(6000);
    let cfg = ExecConfig::sequential().with_mem_budget(UNLIMITED);
    let reference = try_execute_with_stats_config(&plan, &db, &cfg).expect("unfaulted reference");
    let cache = BuildCache::new();
    let token = CancelToken::new();
    token.cancel();
    let failed = try_execute_full(&plan, &db, &cfg, Some(&cache), Some(&token));
    assert_eq!(
        failed.expect_err("cancelled build must fail"),
        ExecError::Cancelled
    );
    assert!(
        cache.lookups() > 0,
        "the failing run never consulted the cache — assertion is vacuous"
    );
    token.clear();
    let (table, _, _) =
        try_execute_full(&plan, &db, &cfg, Some(&cache), Some(&token)).expect("rebuild succeeds");
    assert_eq!(table, reference.0, "rebuild rows differ");
    assert_eq!(
        cache.hits(),
        0,
        "the failed build left a (partial) cached entry behind"
    );
    // The rebuilt entry is genuine: a third run hits it and still agrees.
    let (table, _, _) =
        try_execute_full(&plan, &db, &cfg, Some(&cache), Some(&token)).expect("cached run");
    assert_eq!(table, reference.0, "cached-run rows differ");
    assert!(cache.hits() > 0, "the successful rebuild was not memoized");

    // Same regression through the spill path: a fault inside the Grace
    // partition writer fails the build mid-construction; once disarmed the
    // same cache serves a correct execution again.  A *fresh* cache keeps
    // the memoized in-memory build from above out of the way, so the
    // tight budget genuinely pushes this build through the Grace writer.
    let cache = BuildCache::new();
    let dir = fresh_dir("cache");
    let tight = ExecConfig::sequential()
        .with_mem_budget(TIGHT)
        .with_spill_dir(&dir);
    let tight_ref = try_execute_with_stats_config(&plan, &db, &tight).expect("tight reference");
    let guard =
        FaultPlan::single(fault::SITE_PART_WRITE, Trigger::Always, FaultKind::IoError).install();
    let failed = try_execute_full(&plan, &db, &tight, Some(&cache), None);
    assert!(failed.is_err(), "partition-write fault must fail the build");
    drop(guard);
    assert_eq!(leaked_files(&dir), Vec::<String>::new(), "run files leaked");
    let (table, _, _) =
        try_execute_full(&plan, &db, &tight, Some(&cache), None).expect("retry succeeds");
    assert_eq!(table, tight_ref.0, "post-fault retry rows differ");
    let _ = std::fs::remove_dir(&dir);
}

/// A pre-cancelled token fails the execution at its first interrupt check
/// with `ExecError::Cancelled`, leaking nothing; an (effectively) expired
/// deadline fails with `ExecError::Timeout`.
#[test]
fn cancellation_and_timeout_surface_typed_errors() {
    let _guard = io_lock();
    let (db, plan) = equijoin_fixture(1500);
    let dir = fresh_dir("cancel");
    let cfg = ExecConfig::sequential()
        .with_mem_budget(TIGHT)
        .with_spill_dir(&dir);
    let token = CancelToken::new();
    token.cancel();
    let err = try_execute_full(&plan, &db, &cfg, None, Some(&token))
        .expect_err("pre-cancelled execution must fail");
    assert_eq!(err, ExecError::Cancelled);
    assert_eq!(leaked_files(&dir), Vec::<String>::new(), "cancel leaked");
    // Cleared token → the same plan executes fine.
    token.clear();
    try_execute_full(&plan, &db, &cfg, None, Some(&token)).expect("cleared token executes");
    // A 1 ns deadline is in the past by the first interrupt check.
    let cfg_timeout = cfg
        .clone()
        .with_query_timeout(Some(Duration::from_nanos(1)));
    let err = try_execute_full(&plan, &db, &cfg_timeout, None, None)
        .expect_err("expired deadline must fail");
    assert!(
        matches!(err, ExecError::Timeout { .. }),
        "expected a timeout, got: {err}"
    );
    assert_eq!(leaked_files(&dir), Vec::<String>::new(), "timeout leaked");
    let _ = std::fs::remove_dir(&dir);
}

/// Graceful degradation: a budgeted execution whose spill directory cannot
/// be created ignores the budget and runs in memory instead of failing.
#[test]
fn unusable_spill_dir_degrades_to_in_memory() {
    let _guard = io_lock();
    let (db, plan) = equijoin_fixture(1500);
    // A path *under a regular file* can never become a directory.
    let blocker = std::env::temp_dir().join(format!("xqjg-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"x").expect("blocker file");
    let cfg = ExecConfig::sequential()
        .with_mem_budget(TIGHT)
        .with_spill_dir(blocker.join("sub"));
    let (degraded, stats) =
        try_execute_with_stats_config(&plan, &db, &cfg).expect("degraded run succeeds");
    assert!(
        stats.operators.iter().all(|o| o.spill_runs == 0),
        "degraded run must not spill"
    );
    let reference = try_execute_with_stats_config(
        &plan,
        &db,
        &ExecConfig::sequential().with_mem_budget(UNLIMITED),
    )
    .expect("reference");
    assert_eq!(degraded, reference.0, "degraded rows differ");
    let _ = std::fs::remove_file(&blocker);
}

// ---------------------------------------------------------------------
// Codec robustness: no byte stream may panic the spill record decoders.
// ---------------------------------------------------------------------

fn arb_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        prop::bool::ANY.prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::Dec(n as f64 / 7.0)),
        prop::collection::vec(97u8..123, 0..16)
            .prop_map(|b| Value::Str(String::from_utf8_lossy(&b).into_owned())),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage never panics the decoders — they return `Err`
    /// (or, for byte streams that happen to parse, `Ok`).
    #[test]
    fn arbitrary_bytes_never_panic_decoders(bytes in prop::collection::vec(0u16..256, 1..256)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut pos = 0usize;
        let _ = decode_row(&bytes, &mut pos);
        let mut pos = 0usize;
        let _ = decode_value(&bytes, &mut pos);
    }

    /// Truncating or bit-flipping a valid encoding never panics: the
    /// decoder either detects the damage (`Err`) or yields some row.
    #[test]
    fn damaged_encodings_never_panic(
        row in prop::collection::vec(arb_value(), 1..6),
        cut in 0u64..u64::MAX,
        flip_byte in 0u64..u64::MAX,
        flip_bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        // Round-trip sanity on the pristine bytes.
        let mut pos = 0usize;
        let decoded = decode_row(&buf, &mut pos).expect("pristine encoding decodes");
        prop_assert_eq!(&decoded, &row);
        // Truncation.
        let cut_at = (cut as usize) % (buf.len() + 1);
        let mut pos = 0usize;
        let _ = decode_row(&buf[..cut_at], &mut pos);
        // Single-bit damage.
        if !buf.is_empty() {
            let i = (flip_byte as usize) % buf.len();
            let mut damaged = buf.clone();
            damaged[i] ^= 1 << flip_bit;
            let mut pos = 0usize;
            let _ = decode_row(&damaged, &mut pos);
        }
    }
}
