//! Benchmarks of the compiler front half: loop-lifting compilation,
//! simplification and join graph isolation (compile-time costs of the
//! technique itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqjg_bench::queries;
use xqjg_compiler::compile;
use xqjg_core::{isolate_sfw, simplify};
use xqjg_xquery::parse_and_normalize;

fn bench_isolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("isolation");
    for q in queries() {
        let uri = match q.dataset {
            xqjg_bench::DataSet::Xmark => "auction.xml",
            xqjg_bench::DataSet::Dblp => "dblp.xml",
        };
        let core = parse_and_normalize(q.text, Some(uri)).unwrap();
        let branches = xqjg_core::decompose_sequences(&core);
        group.bench_with_input(
            BenchmarkId::new("compile+isolate", q.id),
            &branches,
            |b, branches| {
                b.iter(|| {
                    let mut total_aliases = 0;
                    for branch in branches {
                        let mut plan = compile(branch).unwrap().plan;
                        simplify(&mut plan);
                        let iso = isolate_sfw(&plan).unwrap();
                        total_aliases += iso.query.from.len();
                    }
                    total_aliases
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_isolation);
criterion_main!(benches);
