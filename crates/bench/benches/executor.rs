//! Pipelined vs. materializing executor on the paper's XMark join-graph
//! queries (Q1's structural triple self-join and Q2's value-join over
//! closed auctions, items and categories — the Q8-class shape of XMark).
//!
//! Both sides run the *same* optimized `PhysPlan`; the only difference is
//! the execution strategy: batch-at-a-time operator pipeline
//! ([`xqjg_engine::QueryRequest`]) vs. the seed's
//! materialize-every-join-level baseline
//! ([`xqjg_engine::execute_materialized`]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqjg_bench::{queries, Workload};
use xqjg_engine::{execute_materialized, optimize, PhysPlan, QueryRequest};

fn bench_executor(c: &mut Criterion) {
    let mut workload = Workload::new(0.1);
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    for q in queries()
        .into_iter()
        .filter(|q| q.id == "Q1" || q.id == "Q2")
    {
        let prepared = workload
            .processor(&q)
            .prepare(q.text)
            .expect("query prepares");
        let db = workload.processor(&q).database();
        let plans: Vec<PhysPlan> = prepared
            .branches
            .iter()
            .map(|b| optimize(&b.isolated.query, db).expect("plan optimizes"))
            .collect();
        group.bench_with_input(BenchmarkId::new("pipelined", q.id), &plans, |b, plans| {
            b.iter(|| {
                plans
                    .iter()
                    .map(|p| QueryRequest::new(p, db).expect_run().rows.len())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("materializing", q.id),
            &plans,
            |b, plans| {
                b.iter(|| {
                    plans
                        .iter()
                        .map(|p| execute_materialized(p, db).len())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
