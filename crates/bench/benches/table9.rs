//! Criterion benches behind Table IX: stacked vs. join-graph evaluation of
//! the paper's query set at a small scale (Criterion needs many iterations;
//! the full-scale sweep lives in the `tables` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqjg_bench::{queries, Workload};
use xqjg_core::Mode;

fn bench_table9(c: &mut Criterion) {
    let mut workload = Workload::new(0.05);
    let mut group = c.benchmark_group("table9");
    group.sample_size(10);
    for q in queries() {
        // Q2's stacked evaluation is deliberately slow; keep samples small.
        for (mode, label) in [(Mode::Stacked, "stacked"), (Mode::JoinGraph, "join_graph")] {
            if q.id == "Q2" && mode == Mode::Stacked {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(label, q.id), &q, |b, q| {
                let prepared = workload.processor(q).prepare(q.text).unwrap();
                b.iter(|| {
                    let proc = workload.processor(q);
                    proc.execute_prepared(&prepared, mode).unwrap().items.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table9);
criterion_main!(benches);
