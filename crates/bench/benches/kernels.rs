//! Micro-benchmarks of the typed-column kernels against the scalar
//! [`Value`] paths they replace: masked compares, composite-key hashing,
//! fused multi-term residual masks and masked aggregate reductions.
//!
//! [`Value`]: xqjg_store::Value

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xqjg_store::{
    agg_i64_masked, hash_keys_typed, hash_values, mask_terms, BitMask, HashKey, KernelCmp,
    MaskTerm, Value,
};

const N: usize = 64 * 1024;

/// A NULL-bearing `i64` image (every 13th slot invalid) plus the `Value`
/// rows the scalar paths walk.
fn fixture() -> (Vec<i64>, BitMask, Vec<Value>) {
    let vals: Vec<i64> = (0..N as i64).map(|i| i % 1009).collect();
    let validity = BitMask::from_bools((0..N).map(|i| i % 13 != 0));
    let rows: Vec<Value> = vals
        .iter()
        .zip(0..N)
        .map(|(&v, i)| {
            if i % 13 == 0 {
                Value::Null
            } else {
                Value::Int(v)
            }
        })
        .collect();
    (vals, validity, rows)
}

fn bench_masked_compare(c: &mut Criterion) {
    let (vals, validity, rows) = fixture();
    let rids: Vec<usize> = (0..N).collect();
    let term = [MaskTerm::I64 {
        vals: &vals,
        validity: Some(&validity),
        op: KernelCmp::Le,
        rhs: 500,
    }];
    let mut keep = BitMask::new();
    c.bench_function("kernels/masked_compare", |b| {
        b.iter(|| {
            mask_terms(black_box(&term), true, &rids, &mut keep);
            black_box(keep.count_ones())
        })
    });
    let rhs = Value::Int(500);
    c.bench_function("kernels/masked_compare_scalar", |b| {
        b.iter(|| {
            black_box(
                rows.iter()
                    .filter(|v| {
                        v.sql_cmp(&rhs)
                            .is_some_and(|o| o != std::cmp::Ordering::Greater)
                    })
                    .count(),
            )
        })
    });
}

fn bench_composite_hash(c: &mut Criterion) {
    let (vals, validity, rows) = fixture();
    let grp: Vec<i64> = (0..N as i64).map(|i| i % 53).collect();
    let grp_rows: Vec<Value> = grp.iter().map(|&g| Value::Int(g)).collect();
    let keys = [HashKey::I64(&vals), HashKey::I64(&grp)];
    let mut hashes: Vec<Option<u64>> = Vec::new();
    c.bench_function("kernels/composite_hash", |b| {
        b.iter(|| {
            hash_keys_typed(black_box(&keys), Some(&validity), N, &mut hashes);
            black_box(hashes.len())
        })
    });
    c.bench_function("kernels/composite_hash_scalar", |b| {
        b.iter(|| {
            let mut live = 0usize;
            for (v, g) in rows.iter().zip(&grp_rows) {
                if v.is_null() || g.is_null() {
                    continue;
                }
                black_box(hash_values([v, g]));
                live += 1;
            }
            black_box(live)
        })
    });
}

fn bench_fused_residual(c: &mut Criterion) {
    let (vals, validity, rows) = fixture();
    let grp: Vec<i64> = (0..N as i64).map(|i| i % 53).collect();
    let rids: Vec<usize> = (0..N).collect();
    // A three-term conjunction, as an NLJOIN residual would fuse it.
    let terms = [
        MaskTerm::I64 {
            vals: &vals,
            validity: Some(&validity),
            op: KernelCmp::Ge,
            rhs: 100,
        },
        MaskTerm::I64 {
            vals: &vals,
            validity: Some(&validity),
            op: KernelCmp::Lt,
            rhs: 900,
        },
        MaskTerm::I64 {
            vals: &grp,
            validity: None,
            op: KernelCmp::Ne,
            rhs: 17,
        },
    ];
    let mut keep = BitMask::new();
    c.bench_function("kernels/fused_residual", |b| {
        b.iter(|| {
            mask_terms(black_box(&terms), true, &rids, &mut keep);
            black_box(keep.count_ones())
        })
    });
    let (lo, hi, skip) = (Value::Int(100), Value::Int(900), Value::Int(17));
    c.bench_function("kernels/fused_residual_scalar", |b| {
        b.iter(|| {
            black_box(
                rows.iter()
                    .zip(&grp)
                    .filter(|(v, &g)| {
                        v.sql_cmp(&lo)
                            .is_some_and(|o| o != std::cmp::Ordering::Less)
                            && v.sql_cmp(&hi) == Some(std::cmp::Ordering::Less)
                            && Value::Int(g)
                                .sql_cmp(&skip)
                                .is_some_and(|o| o != std::cmp::Ordering::Equal)
                    })
                    .count(),
            )
        })
    });
}

fn bench_masked_sum(c: &mut Criterion) {
    let (vals, validity, rows) = fixture();
    c.bench_function("kernels/masked_sum", |b| {
        b.iter(|| {
            let agg = agg_i64_masked(black_box(&vals), Some(&validity));
            black_box((agg.count, agg.sum, agg.min, agg.max))
        })
    });
    c.bench_function("kernels/masked_sum_scalar", |b| {
        b.iter(|| {
            let (mut count, mut sum) = (0usize, 0i128);
            let (mut min, mut max) = (None::<i64>, None::<i64>);
            for v in black_box(&rows) {
                if let Some(k) = v.as_i64() {
                    count += 1;
                    sum += k as i128;
                    min = Some(min.map_or(k, |m: i64| m.min(k)));
                    max = Some(max.map_or(k, |m: i64| m.max(k)));
                }
            }
            black_box((count, sum, min, max))
        })
    });
}

criterion_group!(
    benches,
    bench_masked_compare,
    bench_composite_hash,
    bench_fused_residual,
    bench_masked_sum
);
criterion_main!(benches);
