//! Micro-benchmarks of the relational substrate the paper's argument rests
//! on: B-tree point/range access and join-based XPath step evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::ops::Bound;
use xqjg_data::{generate_xmark_encoded, XmarkConfig};
use xqjg_store::{BPlusTree, Value};
use xqjg_xml::axis::step;
use xqjg_xml::{Axis, NodeTest, Pre};

fn bench_btree(c: &mut Criterion) {
    let entries: Vec<(Vec<Value>, usize)> = (0..100_000i64)
        .map(|i| (vec![Value::Int(i % 97), Value::Int(i)], i as usize))
        .collect();
    let tree = BPlusTree::bulk_load(entries);
    c.bench_function("btree/point_lookup", |b| {
        b.iter(|| {
            tree.lookup_prefix(&[Value::Int(13), Value::Int(4_000)])
                .len()
        })
    });
    c.bench_function("btree/partition_scan", |b| {
        b.iter(|| {
            let lo = vec![Value::Int(42)];
            tree.range(Bound::Included(&lo), Bound::Included(&lo)).len()
        })
    });
}

fn bench_axis_steps(c: &mut Criterion) {
    let doc = generate_xmark_encoded("auction.xml", &XmarkConfig::with_scale(0.1));
    let root = vec![Pre(0)];
    c.bench_function("axis/descendant_open_auction", |b| {
        b.iter(|| {
            step(
                &doc,
                &root,
                Axis::Descendant,
                &NodeTest::name("open_auction"),
            )
            .len()
        })
    });
    let auctions = step(
        &doc,
        &root,
        Axis::Descendant,
        &NodeTest::name("open_auction"),
    );
    c.bench_function("axis/child_bidder_from_auctions", |b| {
        b.iter(|| step(&doc, &auctions, Axis::Child, &NodeTest::name("bidder")).len())
    });
}

criterion_group!(benches, bench_btree, bench_axis_steps);
criterion_main!(benches);
