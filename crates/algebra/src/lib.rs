//! The table algebra dialect of Table I, as a DAG IR with a direct
//! evaluator and rendering support.
//!
//! * [`ir`] — operators (`π`, `σ`, `⋈`, `×`, `δ`, `@`, `#`, `ϱ`, `doc`,
//!   literal tables, serialization point), predicates, plans, schema
//!   inference and DAG utilities.
//! * [`eval`] — pipelined, batch-at-a-time evaluation over the shared
//!   `Operator` substrate (the "stacked plan" baseline of Table IX and the
//!   semantics reference for the rewriter).
//! * [`render`] — text/DOT plan rendering and operator histograms
//!   (reproducing Figures 4 and 7).
//! * [`bridge`] — conversion between the XML encoding and the relational
//!   `doc` table, and extraction of result node sequences.

pub mod bridge;
pub mod eval;
pub mod ir;
pub mod render;

pub use bridge::{doc_relation, result_items, DOC_RELATION};
pub use eval::{evaluate, materialized_rows, AlgebraRequest, EvalContext};
// Deprecated tuple-shaped twin, kept for external callers.
#[allow(deprecated)]
pub use eval::evaluate_with_stats;
pub use ir::{CmpOp, Comparison, OpId, OpKind, Plan, Predicate, Scalar, DOC_COLUMNS};
pub use render::{histogram, render_dot, render_text, OperatorHistogram};
