//! Plan rendering: textual trees (with DAG sharing made explicit) and
//! Graphviz DOT output.  Used to reproduce Fig. 4 (initial stacked plan) and
//! Fig. 7 (isolated join graph + plan tail).

use crate::ir::{OpId, OpKind, Plan};
use std::collections::HashMap;

/// Render a plan as an indented operator tree.
///
/// Nodes with more than one parent (shared sub-plans such as the `doc`
/// table) are printed in full once and referenced as `↺ opN` afterwards, so
/// the DAG structure remains visible.
pub fn render_text(plan: &Plan) -> String {
    let parents = plan.parents();
    let shared: HashMap<OpId, bool> = parents.iter().map(|(id, ps)| (*id, ps.len() > 1)).collect();
    let mut out = String::new();
    let mut printed: HashMap<OpId, ()> = HashMap::new();
    render_node(plan, plan.root(), 0, &shared, &mut printed, &mut out);
    out
}

fn render_node(
    plan: &Plan,
    id: OpId,
    depth: usize,
    shared: &HashMap<OpId, bool>,
    printed: &mut HashMap<OpId, ()>,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let is_shared = shared.get(&id).copied().unwrap_or(false);
    if printed.contains_key(&id) && is_shared {
        out.push_str(&format!("{indent}↺ {id}\n"));
        return;
    }
    let marker = if is_shared {
        format!(" [{id}]")
    } else {
        String::new()
    };
    out.push_str(&format!("{indent}{}{marker}\n", plan.op(id).label()));
    printed.insert(id, ());
    for c in plan.op(id).children() {
        render_node(plan, c, depth + 1, shared, printed, out);
    }
}

/// Render a plan in Graphviz DOT syntax.
pub fn render_dot(plan: &Plan) -> String {
    let mut out = String::from("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n");
    for id in plan.reachable() {
        let label = plan.op(id).label().replace('"', "\\\"");
        out.push_str(&format!("  {} [label=\"{}\"];\n", id.0, label));
    }
    for id in plan.reachable() {
        for c in plan.op(id).children() {
            out.push_str(&format!("  {} -> {};\n", id.0, c.0));
        }
    }
    out.push_str("}\n");
    out
}

/// A per-operator-kind histogram of the reachable plan — the quantitative
/// fingerprint used by tests and the figure harness to contrast the stacked
/// plan (many `ϱ`/`δ` instances spread everywhere, Fig. 4) with the isolated
/// plan (exactly one of each, in the plan tail, Fig. 7).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperatorHistogram {
    /// `ϱ` count.
    pub rank: usize,
    /// `δ` count.
    pub distinct: usize,
    /// `⋈` count.
    pub join: usize,
    /// `×` count.
    pub cross: usize,
    /// `σ` count.
    pub select: usize,
    /// `π` count.
    pub project: usize,
    /// `@` count.
    pub attach: usize,
    /// `#` count.
    pub rownum: usize,
    /// `doc` leaf count (occurrences of the shared node, not references).
    pub doc: usize,
    /// Literal table leaves.
    pub literal: usize,
    /// Total reachable operators.
    pub total: usize,
}

/// Compute the operator histogram of the reachable plan.
pub fn histogram(plan: &Plan) -> OperatorHistogram {
    let mut h = OperatorHistogram::default();
    for id in plan.reachable() {
        h.total += 1;
        match plan.op(id) {
            OpKind::Rank { .. } => h.rank += 1,
            OpKind::Distinct { .. } => h.distinct += 1,
            OpKind::Join { .. } => h.join += 1,
            OpKind::Cross { .. } => h.cross += 1,
            OpKind::Select { .. } => h.select += 1,
            OpKind::Project { .. } => h.project += 1,
            OpKind::Attach { .. } => h.attach += 1,
            OpKind::RowNum { .. } => h.rownum += 1,
            OpKind::DocTable => h.doc += 1,
            OpKind::Literal { .. } => h.literal += 1,
            OpKind::Serialize { .. } => {}
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Comparison, Predicate};

    fn shared_plan() -> Plan {
        let mut p = Plan::new();
        let doc = p.add(OpKind::DocTable);
        let s1 = p.add(OpKind::Select {
            input: doc,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let s2 = p.add(OpKind::Select {
            input: doc,
            pred: Predicate::single(Comparison::col_eq_const("kind", "DOC")),
        });
        let join = p.add(OpKind::Join {
            left: s1,
            right: s2,
            pred: Predicate::truth(),
        });
        let root = p.add(OpKind::Serialize { input: join });
        p.set_root(root);
        p
    }

    #[test]
    fn text_render_marks_shared_nodes() {
        let p = shared_plan();
        let txt = render_text(&p);
        assert!(txt.contains("serialize"));
        assert!(txt.contains("↺ op0"), "{txt}");
        assert_eq!(
            txt.matches("doc").count(),
            1,
            "doc body printed once: {txt}"
        );
    }

    #[test]
    fn dot_render_has_all_edges() {
        let p = shared_plan();
        let dot = render_dot(&p);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches("->").count(), 5);
    }

    #[test]
    fn histogram_counts() {
        let p = shared_plan();
        let h = histogram(&p);
        assert_eq!(h.doc, 1);
        assert_eq!(h.select, 2);
        assert_eq!(h.join, 1);
        assert_eq!(h.total, 5);
    }
}
