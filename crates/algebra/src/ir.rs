//! The table algebra of Table I as a DAG intermediate representation.
//!
//! Operators consume and produce *tables* (duplicate elimination is explicit
//! via `δ`), and plans are DAGs: the `doc` encoding table and the `loop`
//! relation are shared sub-plans.  The compiler (`xqjg-compiler`) builds
//! these DAGs; the rewriter (`xqjg-core`) transforms them; the evaluator
//! ([`crate::eval`]) executes them directly.

use std::collections::{HashMap, HashSet};
use std::fmt;
use xqjg_store::Value;

/// A scalar expression usable inside predicates: a column, a constant, or a
/// sum (the axis predicates of Fig. 3 need `pre + size`, `level + 1`).
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// Column reference.
    Col(String),
    /// Constant value.
    Const(Value),
    /// Sum of two scalars.
    Add(Box<Scalar>, Box<Scalar>),
}

impl std::ops::Add for Scalar {
    type Output = Scalar;

    fn add(self, other: Scalar) -> Scalar {
        Scalar::Add(Box::new(self), Box::new(other))
    }
}

impl Scalar {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Scalar {
        Scalar::Col(name.into())
    }

    /// Constant helper.
    pub fn cnst(v: impl Into<Value>) -> Scalar {
        Scalar::Const(v.into())
    }

    /// Columns mentioned by this scalar.
    pub fn cols(&self, out: &mut HashSet<String>) {
        match self {
            Scalar::Col(c) => {
                out.insert(c.clone());
            }
            Scalar::Const(_) => {}
            Scalar::Add(a, b) => {
                a.cols(out);
                b.cols(out);
            }
        }
    }

    /// Rename every column reference using the mapping (old name → new name).
    pub fn rename(&self, mapping: &HashMap<String, String>) -> Scalar {
        match self {
            Scalar::Col(c) => Scalar::Col(mapping.get(c).cloned().unwrap_or_else(|| c.clone())),
            Scalar::Const(v) => Scalar::Const(v.clone()),
            Scalar::Add(a, b) => {
                Scalar::Add(Box::new(a.rename(mapping)), Box::new(b.rename(mapping)))
            }
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Col(c) => write!(f, "{c}"),
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Add(a, b) => write!(f, "{a} + {b}"),
        }
    }
}

/// Comparison operators of the XQuery general comparisons (and the axis
/// range predicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL / display form.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The comparison with the operand sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// Apply the comparison to an ordering result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Parse from the surface syntax.
    pub fn from_symbol(s: &str) -> Option<CmpOp> {
        Some(match s {
            "=" => CmpOp::Eq,
            "!=" | "<>" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// A single comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Scalar,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Scalar,
}

impl Comparison {
    /// Build a comparison.
    pub fn new(lhs: Scalar, op: CmpOp, rhs: Scalar) -> Self {
        Comparison { lhs, op, rhs }
    }

    /// `col = const` helper.
    pub fn col_eq_const(col: impl Into<String>, v: impl Into<Value>) -> Self {
        Comparison::new(Scalar::col(col), CmpOp::Eq, Scalar::cnst(v))
    }

    /// `a = b` between two columns.
    pub fn col_eq_col(a: impl Into<String>, b: impl Into<String>) -> Self {
        Comparison::new(Scalar::col(a), CmpOp::Eq, Scalar::col(b))
    }

    /// Columns used by the comparison.
    pub fn cols(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        self.lhs.cols(&mut out);
        self.rhs.cols(&mut out);
        out
    }

    /// If this is a plain `column = column` equality, return the pair.
    pub fn as_col_eq_col(&self) -> Option<(&str, &str)> {
        match (&self.lhs, self.op, &self.rhs) {
            (Scalar::Col(a), CmpOp::Eq, Scalar::Col(b)) => Some((a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// A conjunction of comparisons (the only predicate form the compiler
/// emits: the paper's join graphs are connected by *conjunctive* equality
/// and range predicates).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    /// The conjuncts.
    pub conjuncts: Vec<Comparison>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn truth() -> Self {
        Predicate { conjuncts: vec![] }
    }

    /// Single-comparison predicate.
    pub fn single(c: Comparison) -> Self {
        Predicate { conjuncts: vec![c] }
    }

    /// Conjunction of comparisons.
    pub fn all(cs: impl IntoIterator<Item = Comparison>) -> Self {
        Predicate {
            conjuncts: cs.into_iter().collect(),
        }
    }

    /// Columns referenced by the predicate (the paper's `cols(p)`).
    pub fn cols(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        for c in &self.conjuncts {
            out.extend(c.cols());
        }
        out
    }

    /// Conjoin another predicate.
    pub fn and(mut self, other: Predicate) -> Predicate {
        self.conjuncts.extend(other.conjuncts);
        self
    }

    /// Is the predicate a single `a = b` column equality?  (Rules (9)–(11)
    /// of Fig. 5 only fire for such joins.)
    pub fn as_single_col_eq(&self) -> Option<(&str, &str)> {
        if self.conjuncts.len() == 1 {
            self.conjuncts[0].as_col_eq_col()
        } else {
            None
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self.conjuncts.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

/// Identifier of an operator inside a [`Plan`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// The operators of Table I.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Serialization point (plan root, `■` in the paper).
    Serialize {
        /// The plan producing the result encoding.
        input: OpId,
    },
    /// `π a1:b1,…,an:bn` — projection with renaming: `(new, old)` pairs.
    Project {
        /// Input plan.
        input: OpId,
        /// `(new_name, source_name)` pairs, in output order.
        cols: Vec<(String, String)>,
    },
    /// `σ p` — selection.
    Select {
        /// Input plan.
        input: OpId,
        /// Filter predicate.
        pred: Predicate,
    },
    /// `⋈ p` — join.
    Join {
        /// Left input.
        left: OpId,
        /// Right input.
        right: OpId,
        /// Join predicate (conjunctive).
        pred: Predicate,
    },
    /// `×` — Cartesian product.
    Cross {
        /// Left input.
        left: OpId,
        /// Right input.
        right: OpId,
    },
    /// `δ` — duplicate elimination.
    Distinct {
        /// Input plan.
        input: OpId,
    },
    /// `@ a:c` — attach a constant column.
    Attach {
        /// Input plan.
        input: OpId,
        /// New column name.
        col: String,
        /// Constant value.
        value: Value,
    },
    /// `# a` — attach an arbitrary unique row id.
    RowNum {
        /// Input plan.
        input: OpId,
        /// New column name.
        col: String,
    },
    /// `ϱ a:⟨b1,…,bn⟩` — attach the row rank in the given column order.
    Rank {
        /// Input plan.
        input: OpId,
        /// New column name.
        col: String,
        /// Ranking criteria (most significant first).
        order_by: Vec<String>,
    },
    /// Reference to the XML infoset encoding table `doc`.
    DocTable,
    /// A literal table (e.g. the singleton `loop` relation).
    Literal {
        /// Column names.
        columns: Vec<String>,
        /// Rows.
        rows: Vec<Vec<Value>>,
    },
}

impl OpKind {
    /// Short operator label for rendering.
    pub fn label(&self) -> String {
        match self {
            OpKind::Serialize { .. } => "serialize".to_string(),
            OpKind::Project { cols, .. } => {
                let parts: Vec<String> = cols
                    .iter()
                    .map(|(n, o)| {
                        if n == o {
                            n.clone()
                        } else {
                            format!("{n}:{o}")
                        }
                    })
                    .collect();
                format!("π {}", parts.join(","))
            }
            OpKind::Select { pred, .. } => format!("σ {pred}"),
            OpKind::Join { pred, .. } => format!("⋈ {pred}"),
            OpKind::Cross { .. } => "×".to_string(),
            OpKind::Distinct { .. } => "δ".to_string(),
            OpKind::Attach { col, value, .. } => format!("@ {col}:{value}"),
            OpKind::RowNum { col, .. } => format!("# {col}"),
            OpKind::Rank { col, order_by, .. } => format!("ϱ {col}:⟨{}⟩", order_by.join(",")),
            OpKind::DocTable => "doc".to_string(),
            OpKind::Literal { columns, rows } => {
                format!("lit ({}) [{} rows]", columns.join(","), rows.len())
            }
        }
    }

    /// Children of this operator.
    pub fn children(&self) -> Vec<OpId> {
        match self {
            OpKind::Serialize { input }
            | OpKind::Project { input, .. }
            | OpKind::Select { input, .. }
            | OpKind::Distinct { input }
            | OpKind::Attach { input, .. }
            | OpKind::RowNum { input, .. }
            | OpKind::Rank { input, .. } => vec![*input],
            OpKind::Join { left, right, .. } | OpKind::Cross { left, right } => {
                vec![*left, *right]
            }
            OpKind::DocTable | OpKind::Literal { .. } => vec![],
        }
    }

    /// Rewrite every child reference through the given mapping.
    pub fn map_children(&mut self, f: impl Fn(OpId) -> OpId) {
        match self {
            OpKind::Serialize { input }
            | OpKind::Project { input, .. }
            | OpKind::Select { input, .. }
            | OpKind::Distinct { input }
            | OpKind::Attach { input, .. }
            | OpKind::RowNum { input, .. }
            | OpKind::Rank { input, .. } => *input = f(*input),
            OpKind::Join { left, right, .. } | OpKind::Cross { left, right } => {
                *left = f(*left);
                *right = f(*right);
            }
            OpKind::DocTable | OpKind::Literal { .. } => {}
        }
    }

    /// Replace every child reference equal to `from` with `to`.
    pub fn replace_child(&mut self, from: OpId, to: OpId) {
        let patch = |id: &mut OpId| {
            if *id == from {
                *id = to;
            }
        };
        match self {
            OpKind::Serialize { input }
            | OpKind::Project { input, .. }
            | OpKind::Select { input, .. }
            | OpKind::Distinct { input }
            | OpKind::Attach { input, .. }
            | OpKind::RowNum { input, .. }
            | OpKind::Rank { input, .. } => patch(input),
            OpKind::Join { left, right, .. } | OpKind::Cross { left, right } => {
                patch(left);
                patch(right);
            }
            OpKind::DocTable | OpKind::Literal { .. } => {}
        }
    }
}

/// Column names of the `doc` relation (Fig. 2).
pub const DOC_COLUMNS: [&str; 7] = ["pre", "size", "level", "kind", "name", "value", "data"];

/// An algebraic plan: an operator arena with a designated root.
#[derive(Debug, Clone)]
pub struct Plan {
    ops: Vec<OpKind>,
    root: OpId,
}

impl Plan {
    /// Create an empty plan whose root will be set later.
    pub fn new() -> Self {
        Plan {
            ops: Vec::new(),
            root: OpId(0),
        }
    }

    /// Add an operator, returning its id.
    pub fn add(&mut self, op: OpKind) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(op);
        id
    }

    /// Set the plan root.
    pub fn set_root(&mut self, root: OpId) {
        self.root = root;
    }

    /// The plan root.
    pub fn root(&self) -> OpId {
        self.root
    }

    /// Number of operators in the arena (including unreachable ones left
    /// behind by rewrites).
    pub fn arena_len(&self) -> usize {
        self.ops.len()
    }

    /// Access an operator.
    pub fn op(&self, id: OpId) -> &OpKind {
        &self.ops[id.0]
    }

    /// Mutable access to an operator.
    pub fn op_mut(&mut self, id: OpId) -> &mut OpKind {
        &mut self.ops[id.0]
    }

    /// All operator ids reachable from the root.
    pub fn reachable(&self) -> Vec<OpId> {
        let mut seen = HashSet::new();
        let mut stack = vec![self.root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            out.push(id);
            stack.extend(self.op(id).children());
        }
        out
    }

    /// Number of operators reachable from the root.
    pub fn size(&self) -> usize {
        self.reachable().len()
    }

    /// Count reachable operators satisfying a predicate on their kind.
    pub fn count_ops(&self, mut f: impl FnMut(&OpKind) -> bool) -> usize {
        self.reachable()
            .iter()
            .filter(|id| f(self.op(**id)))
            .count()
    }

    /// Parents of each reachable node.
    pub fn parents(&self) -> HashMap<OpId, Vec<OpId>> {
        let mut map: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for id in self.reachable() {
            for c in self.op(id).children() {
                map.entry(c).or_default().push(id);
            }
        }
        map
    }

    /// Is `target` reachable from `from` (the paper's `⇛` relation)?
    pub fn reaches(&self, from: OpId, target: OpId) -> bool {
        if from == target {
            return true;
        }
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            for c in self.op(id).children() {
                if c == target {
                    return true;
                }
                stack.push(c);
            }
        }
        false
    }

    /// Topological order of the reachable sub-DAG (children before parents).
    pub fn topo_order(&self) -> Vec<OpId> {
        let mut visited = HashSet::new();
        let mut out = Vec::new();
        fn visit(plan: &Plan, id: OpId, visited: &mut HashSet<OpId>, out: &mut Vec<OpId>) {
            if !visited.insert(id) {
                return;
            }
            for c in plan.op(id).children() {
                visit(plan, c, visited, out);
            }
            out.push(id);
        }
        visit(self, self.root, &mut visited, &mut out);
        out
    }

    /// Output columns of the sub-plan rooted at `id` (the paper's
    /// `cols(e)`).
    pub fn output_cols(&self, id: OpId) -> Vec<String> {
        match self.op(id) {
            OpKind::Serialize { input } => self.output_cols(*input),
            OpKind::Project { cols, .. } => cols.iter().map(|(n, _)| n.clone()).collect(),
            OpKind::Select { input, .. } | OpKind::Distinct { input } => self.output_cols(*input),
            OpKind::Join { left, right, .. } | OpKind::Cross { left, right } => {
                let mut cols = self.output_cols(*left);
                for c in self.output_cols(*right) {
                    assert!(
                        !cols.contains(&c),
                        "join/cross with overlapping column {c:?}: the compiler must rename"
                    );
                    cols.push(c);
                }
                cols
            }
            OpKind::Attach { input, col, .. }
            | OpKind::RowNum { input, col }
            | OpKind::Rank { input, col, .. } => {
                let mut cols = self.output_cols(*input);
                cols.push(col.clone());
                cols
            }
            OpKind::DocTable => DOC_COLUMNS.iter().map(|s| s.to_string()).collect(),
            OpKind::Literal { columns, .. } => columns.clone(),
        }
    }

    /// Drop unreachable operators, renumbering ids (used after rewriting to
    /// keep rendering and statistics honest).
    pub fn garbage_collect(&mut self) {
        let reachable = {
            let mut order = self.topo_order();
            order.sort();
            order
        };
        let mut remap: HashMap<OpId, OpId> = HashMap::new();
        let mut new_ops = Vec::with_capacity(reachable.len());
        for (new_idx, old_id) in reachable.iter().enumerate() {
            remap.insert(*old_id, OpId(new_idx));
            new_ops.push(self.ops[old_id.0].clone());
        }
        for op in &mut new_ops {
            op.map_children(|child| remap[&child]);
        }
        self.root = remap[&self.root];
        self.ops = new_ops;
    }
}

impl Default for Plan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> (Plan, OpId, OpId, OpId) {
        // serialize(π_item:pre(σ_kind=ELEM(doc)))
        let mut p = Plan::new();
        let doc = p.add(OpKind::DocTable);
        let sel = p.add(OpKind::Select {
            input: doc,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let proj = p.add(OpKind::Project {
            input: sel,
            cols: vec![("item".to_string(), "pre".to_string())],
        });
        let root = p.add(OpKind::Serialize { input: proj });
        p.set_root(root);
        (p, doc, sel, proj)
    }

    #[test]
    fn schema_inference() {
        let (p, doc, sel, proj) = small_plan();
        assert_eq!(p.output_cols(doc).len(), 7);
        assert_eq!(p.output_cols(sel).len(), 7);
        assert_eq!(p.output_cols(proj), vec!["item".to_string()]);
    }

    #[test]
    fn reachability_and_size() {
        let (p, doc, _, proj) = small_plan();
        assert_eq!(p.size(), 4);
        assert!(p.reaches(p.root(), doc));
        assert!(p.reaches(proj, doc));
        assert!(!p.reaches(doc, proj));
    }

    #[test]
    fn topo_order_children_first() {
        let (p, doc, sel, _) = small_plan();
        let order = p.topo_order();
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(doc) < pos(sel));
        assert_eq!(*order.last().unwrap(), p.root());
    }

    #[test]
    fn replace_child_rewires() {
        let (mut p, doc, sel, _) = small_plan();
        let doc2 = p.add(OpKind::DocTable);
        p.op_mut(sel).replace_child(doc, doc2);
        assert_eq!(p.op(sel).children(), vec![doc2]);
    }

    #[test]
    fn garbage_collect_drops_unreachable() {
        let (mut p, _, _, _) = small_plan();
        // Add garbage.
        p.add(OpKind::DocTable);
        p.add(OpKind::DocTable);
        assert_eq!(p.arena_len(), 6);
        p.garbage_collect();
        assert_eq!(p.arena_len(), 4);
        assert_eq!(p.size(), 4);
        // Still well-formed.
        assert_eq!(p.output_cols(p.root()), vec!["item".to_string()]);
    }

    #[test]
    fn predicate_cols_and_display() {
        let pred = Predicate::all([
            Comparison::new(
                Scalar::col("pre0") + Scalar::cnst(0i64),
                CmpOp::Lt,
                Scalar::col("pre"),
            ),
            Comparison::new(
                Scalar::col("pre"),
                CmpOp::Le,
                Scalar::col("pre0") + Scalar::col("size0"),
            ),
        ]);
        let cols = pred.cols();
        assert!(cols.contains("pre0") && cols.contains("pre") && cols.contains("size0"));
        assert!(pred.to_string().contains("∧"));
        assert_eq!(Predicate::truth().to_string(), "true");
    }

    #[test]
    fn cmp_op_behaviour() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.eval(Equal));
        assert!(!CmpOp::Lt.eval(Equal));
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::from_symbol("<="), Some(CmpOp::Le));
        assert_eq!(CmpOp::from_symbol("=="), None);
    }

    #[test]
    fn single_col_eq_detection() {
        let p = Predicate::single(Comparison::col_eq_col("iter", "inner"));
        assert_eq!(p.as_single_col_eq(), Some(("iter", "inner")));
        let p2 = Predicate::single(Comparison::col_eq_const("iter", 1i64));
        assert_eq!(p2.as_single_col_eq(), None);
    }

    #[test]
    #[should_panic(expected = "overlapping column")]
    fn join_with_overlapping_columns_panics() {
        let mut p = Plan::new();
        let a = p.add(OpKind::DocTable);
        let b = p.add(OpKind::DocTable);
        let j = p.add(OpKind::Join {
            left: a,
            right: b,
            pred: Predicate::truth(),
        });
        p.set_root(j);
        let _ = p.output_cols(j);
    }

    #[test]
    fn scalar_rename() {
        let mut mapping = HashMap::new();
        mapping.insert("a".to_string(), "x".to_string());
        let s = Scalar::col("a") + Scalar::col("b");
        let r = s.rename(&mapping);
        let mut cols = HashSet::new();
        r.cols(&mut cols);
        assert!(cols.contains("x") && cols.contains("b") && !cols.contains("a"));
    }
}
