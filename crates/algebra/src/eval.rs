//! Pipelined evaluation of algebra plans.
//!
//! Historically every operator here materialized its full result table —
//! the staged execution (SORT → temporary table → scan) a relational
//! back-end falls back to for the compiler's *stacked* plans.  The
//! evaluator now runs on the same pull-based [`Operator`] substrate as the
//! join-graph executor: single-parent operator chains stream fixed-capacity
//! row [`Batch`]es (σ, π, `@`, `#`, δ all pipeline), and only genuine
//! pipeline breakers (ϱ, the serialization sort, join/cross build sides)
//! and *shared* DAG sub-plans buffer rows.  The evaluator still doubles as
//!
//! 1. the semantics reference for the rewriter (isolation must not change
//!    the evaluated result), and
//! 2. the "DB2 + Pathfinder, stacked" baseline column of Table IX — the
//!    per-operator [`OpStats`] reproduce the old materialized-row
//!    accounting exactly (each DAG node is counted once).

use crate::ir::{CmpOp, Comparison, OpId, OpKind, Plan, Predicate, Scalar};
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use xqjg_store::{
    drain, fill_from_pending, hash_values, new_stats_sink, Batch, BoxedOperator, OpStats, Operator,
    Row, Schema, StatsSink, Table, Value,
};

/// Evaluation context: the base relations a plan may reference.
pub struct EvalContext<'a> {
    /// The XML infoset encoding relation (`doc`).
    pub doc: &'a Table,
}

/// One algebra-plan evaluation, described declaratively — the mirror of
/// the relational engine's `QueryRequest` builder for the stacked-plan
/// side.  [`AlgebraRequest::run`] returns the result table plus the
/// per-operator work counters (one entry per reachable DAG node, upstream
/// operators first).
#[derive(Clone, Copy)]
pub struct AlgebraRequest<'a> {
    plan: &'a Plan,
    ctx: &'a EvalContext<'a>,
}

impl<'a> AlgebraRequest<'a> {
    /// A request to evaluate `plan` against the base relations in `ctx`.
    pub fn new(plan: &'a Plan, ctx: &'a EvalContext<'a>) -> AlgebraRequest<'a> {
        AlgebraRequest { plan, ctx }
    }

    /// Evaluate the plan, returning the result table and the per-operator
    /// counters.
    pub fn run(self) -> (Table, Vec<OpStats>) {
        let sink = new_stats_sink();
        let mut builder = Builder::new(self.plan, self.ctx, sink.clone());
        let (schema, mut root) = builder.build(self.plan.root());
        let rows = drain(&mut *root);
        let stats = sink.borrow().clone();
        (Table::from_rows(schema, rows), stats)
    }
}

/// Evaluate a plan to its result table (the table produced at the
/// serialization point).
pub fn evaluate(plan: &Plan, ctx: &EvalContext<'_>) -> Table {
    AlgebraRequest::new(plan, ctx).run().0
}

/// Evaluate a plan, additionally returning the per-operator work counters
/// (one entry per reachable DAG node, upstream operators first).
#[deprecated(note = "use AlgebraRequest::new(plan, ctx).run()")]
pub fn evaluate_with_stats(plan: &Plan, ctx: &EvalContext<'_>) -> (Table, Vec<OpStats>) {
    AlgebraRequest::new(plan, ctx).run()
}

/// Number of rows produced across all operators (a simple work metric used
/// by the benchmarks to contrast stacked and isolated plans).  Shared DAG
/// nodes are counted once, matching the memoized evaluation the metric was
/// defined over.
pub fn materialized_rows(plan: &Plan, ctx: &EvalContext<'_>) -> usize {
    AlgebraRequest::new(plan, ctx)
        .run()
        .1
        .iter()
        .map(|o| o.rows_out)
        .sum()
}

/// Operator-tree builder: walks the plan DAG, streaming along single-parent
/// edges and materializing each shared sub-plan exactly once.
struct Builder<'a> {
    plan: &'a Plan,
    ctx: &'a EvalContext<'a>,
    /// Nodes referenced by more than one parent edge.
    shared: HashSet<OpId>,
    /// Results of already-materialized shared nodes.
    memo: HashMap<OpId, (Schema, Rc<Vec<Row>>)>,
    sink: StatsSink,
}

impl<'a> Builder<'a> {
    fn new(plan: &'a Plan, ctx: &'a EvalContext<'a>, sink: StatsSink) -> Self {
        let shared = plan
            .parents()
            .into_iter()
            .filter(|(_, ps)| ps.len() > 1)
            .map(|(id, _)| id)
            .collect();
        Builder {
            plan,
            ctx,
            shared,
            memo: HashMap::new(),
            sink,
        }
    }

    /// Build the operator (sub)tree rooted at `id`, returning its output
    /// schema and root operator.
    fn build(&mut self, id: OpId) -> (Schema, BoxedOperator<'a, Row>) {
        if self.shared.contains(&id) {
            let (schema, rows) = self.materialize(id);
            let op = SharedSource {
                rows,
                pos: 0,
                stats: OpStats::named(format!("shared {}", self.plan.op(id).label())),
            };
            return (schema, Box::new(op));
        }
        self.build_fresh(id)
    }

    /// Evaluate a shared node once, caching its rows.  The node's own
    /// operators report their stats during this drain, so the metric counts
    /// it a single time no matter how many parents consume it.
    fn materialize(&mut self, id: OpId) -> (Schema, Rc<Vec<Row>>) {
        if let Some((schema, rows)) = self.memo.get(&id) {
            return (schema.clone(), rows.clone());
        }
        let (schema, mut op) = self.build_fresh(id);
        let rows = Rc::new(drain(&mut *op));
        self.memo.insert(id, (schema.clone(), rows.clone()));
        (schema, rows)
    }

    fn build_fresh(&mut self, id: OpId) -> (Schema, BoxedOperator<'a, Row>) {
        let kind = self.plan.op(id);
        let name = kind.label();
        match kind {
            OpKind::DocTable => {
                let op = SliceSource {
                    rows: self.ctx.doc.rows(),
                    pos: 0,
                    stats: OpStats::named(name),
                    sink: self.sink.clone(),
                };
                (self.ctx.doc.schema().clone(), Box::new(op))
            }
            OpKind::Literal { columns, rows } => {
                let op = SliceSource {
                    rows,
                    pos: 0,
                    stats: OpStats::named(name),
                    sink: self.sink.clone(),
                };
                (Schema::new(columns.clone()), Box::new(op))
            }
            OpKind::Select { input, pred } => {
                let (schema, child) = self.build(*input);
                let s = schema.clone();
                let op = Box::new(FilterOp {
                    input: child,
                    pred: Box::new(move |row: &Row| eval_predicate(pred, row, &s)),
                    sel: Vec::new(),
                    stats: OpStats::named(name),
                    sink: self.sink.clone(),
                });
                (schema, op)
            }
            OpKind::Project { input, cols } => {
                let (schema, child) = self.build(*input);
                let indices: Vec<usize> = cols
                    .iter()
                    .map(|(_, old)| schema.expect_index(old))
                    .collect();
                let out_schema = Schema::new(cols.iter().map(|(new, _)| new.clone()));
                let op = self.map_filter(name, child, move |row: Row| {
                    Some(indices.iter().map(|&i| row[i].clone()).collect())
                });
                (out_schema, op)
            }
            OpKind::Distinct { input } => {
                let (schema, child) = self.build(*input);
                let mut seen: HashSet<Row> = HashSet::new();
                let op = self.map_filter(name, child, move |row| {
                    seen.insert(row.clone()).then_some(row)
                });
                (schema, op)
            }
            OpKind::Attach { input, col, value } => {
                let (schema, child) = self.build(*input);
                let out_schema = append_column(&schema, col);
                let op = self.map_filter(name, child, move |mut row| {
                    row.push(value.clone());
                    Some(row)
                });
                (out_schema, op)
            }
            OpKind::RowNum { input, col } => {
                let (schema, child) = self.build(*input);
                let out_schema = append_column(&schema, col);
                let mut next = 0i64;
                let op = self.map_filter(name, child, move |mut row| {
                    next += 1;
                    row.push(Value::Int(next));
                    Some(row)
                });
                (out_schema, op)
            }
            OpKind::Rank {
                input,
                col,
                order_by,
            } => {
                let (schema, child) = self.build(*input);
                let key_idx: Vec<usize> = order_by.iter().map(|c| schema.expect_index(c)).collect();
                let out_schema = append_column(&schema, col);
                let op = Blocking {
                    input: child,
                    finalize: Some(Box::new(move |rows| rank_rows(rows, &key_idx))),
                    rows: Vec::new().into_iter(),
                    stats: OpStats::named(name),
                    sink: self.sink.clone(),
                };
                (out_schema, Box::new(op))
            }
            OpKind::Serialize { input } => {
                let (schema, child) = self.build(*input);
                // Order the encoding of the result: by iteration, then by
                // sequence position (only the columns that exist
                // participate).
                let key_idx: Vec<usize> = ["iter", "pos", "item"]
                    .iter()
                    .filter_map(|c| schema.index_of(c))
                    .collect();
                let op = Blocking {
                    input: child,
                    finalize: Some(Box::new(move |mut rows: Vec<Row>| {
                        rows.sort_by(|a, b| {
                            for &i in &key_idx {
                                let o = a[i].cmp(&b[i]);
                                if o != std::cmp::Ordering::Equal {
                                    return o;
                                }
                            }
                            std::cmp::Ordering::Equal
                        });
                        rows
                    })),
                    rows: Vec::new().into_iter(),
                    stats: OpStats::named(name),
                    sink: self.sink.clone(),
                };
                (schema, Box::new(op))
            }
            OpKind::Cross { left, right } => {
                let (ls, lop) = self.build(*left);
                let (rs, rop) = self.build(*right);
                let out_schema = concat_schemas(&ls, &rs);
                let op = JoinStream {
                    left: lop,
                    right: Some(rop),
                    left_schema: ls,
                    right_schema: rs,
                    right_rows: Vec::new(),
                    keys: None,
                    residual: Vec::new(),
                    buckets: HashMap::new(),
                    pending: VecDeque::new(),
                    stats: OpStats::named(name),
                    sink: self.sink.clone(),
                };
                (out_schema, Box::new(op))
            }
            OpKind::Join { left, right, pred } => {
                let (ls, lop) = self.build(*left);
                let (rs, rop) = self.build(*right);
                let out_schema = concat_schemas(&ls, &rs);
                // Split the predicate into hashable equi-conjuncts (left
                // column = right column) and the rest.
                let mut left_keys: Vec<usize> = Vec::new();
                let mut right_keys: Vec<usize> = Vec::new();
                let mut residual: Vec<Comparison> = Vec::new();
                for c in &pred.conjuncts {
                    if let Some((a, b)) = c.as_col_eq_col() {
                        match (ls.index_of(a), rs.index_of(b)) {
                            (Some(li), Some(ri)) => {
                                left_keys.push(li);
                                right_keys.push(ri);
                                continue;
                            }
                            _ => {
                                if let (Some(li), Some(ri)) = (ls.index_of(b), rs.index_of(a)) {
                                    left_keys.push(li);
                                    right_keys.push(ri);
                                    continue;
                                }
                            }
                        }
                    }
                    residual.push(c.clone());
                }
                let keys = (!left_keys.is_empty()).then_some((left_keys, right_keys));
                let op = JoinStream {
                    left: lop,
                    right: Some(rop),
                    left_schema: ls,
                    right_schema: rs,
                    right_rows: Vec::new(),
                    keys,
                    residual,
                    buckets: HashMap::new(),
                    pending: VecDeque::new(),
                    stats: OpStats::named(name),
                    sink: self.sink.clone(),
                };
                (out_schema, Box::new(op))
            }
        }
    }

    /// Wrap a streaming row transform (≤ 1 output row per input row) into
    /// an operator.
    fn map_filter(
        &self,
        name: String,
        input: BoxedOperator<'a, Row>,
        f: impl FnMut(Row) -> Option<Row> + 'a,
    ) -> BoxedOperator<'a, Row> {
        Box::new(MapFilter {
            input,
            f: Box::new(f),
            stats: OpStats::named(name),
            sink: self.sink.clone(),
        })
    }
}

fn append_column(schema: &Schema, col: &str) -> Schema {
    let mut columns: Vec<String> = schema.columns().to_vec();
    columns.push(col.to_string());
    Schema::new(columns)
}

fn concat_schemas(left: &Schema, right: &Schema) -> Schema {
    let mut columns: Vec<String> = left.columns().to_vec();
    columns.extend(right.columns().iter().cloned());
    Schema::new(columns)
}

/// Source over borrowed rows (the `doc` relation, literal tables).
struct SliceSource<'a> {
    rows: &'a [Row],
    pos: usize,
    stats: OpStats,
    sink: StatsSink,
}

impl Operator for SliceSource<'_> {
    type Item = Row;

    fn open(&mut self) {
        self.pos = 0;
    }

    fn next_batch(&mut self) -> Option<Batch<Row>> {
        if self.pos >= self.rows.len() {
            return None;
        }
        let mut batch: Batch<Row> = Batch::new();
        self.pos += batch.fill_from_slice(&self.rows[self.pos..]);
        self.stats.rows_out += batch.len();
        self.stats.batches += 1;
        Some(batch)
    }

    fn close(&mut self) {
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Source over the memoized rows of a shared sub-plan.  Does not report to
/// the stats sink: the shared node's own operators were counted when it was
/// materialized.
struct SharedSource {
    rows: Rc<Vec<Row>>,
    pos: usize,
    stats: OpStats,
}

impl Operator for SharedSource {
    type Item = Row;

    fn open(&mut self) {
        self.pos = 0;
    }

    fn next_batch(&mut self) -> Option<Batch<Row>> {
        if self.pos >= self.rows.len() {
            return None;
        }
        let mut batch: Batch<Row> = Batch::new();
        self.pos += batch.fill_from_slice(&self.rows[self.pos..]);
        self.stats.rows_out += batch.len();
        self.stats.batches += 1;
        Some(batch)
    }

    fn close(&mut self) {}

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Vectorized selection: evaluates the predicate over *borrowed* rows into
/// a reusable selection vector, then compacts the batch in place — the
/// batch allocation survives, surviving rows are moved at most once, and
/// dropped rows are never re-materialized (the row-batch analogue of the
/// engine's columnar selection vectors).
struct FilterOp<'a> {
    input: BoxedOperator<'a, Row>,
    #[allow(clippy::type_complexity)]
    pred: Box<dyn FnMut(&Row) -> bool + 'a>,
    /// Reusable selection vector.
    sel: Vec<u32>,
    stats: OpStats,
    sink: StatsSink,
}

impl Operator for FilterOp<'_> {
    type Item = Row;

    fn open(&mut self) {
        self.input.open();
    }

    fn next_batch(&mut self) -> Option<Batch<Row>> {
        loop {
            let mut batch = self.input.next_batch()?;
            self.stats.rows_in += batch.len();
            self.sel.clear();
            for (i, row) in batch.items().iter().enumerate() {
                if (self.pred)(row) {
                    self.sel.push(i as u32);
                }
            }
            // All rows surviving is the common case on XML predicates that
            // were already pushed into the scan: skip the compaction pass.
            if self.sel.len() < batch.len() {
                batch.retain_selected(&self.sel);
            }
            if !batch.is_empty() {
                self.stats.rows_out += batch.len();
                self.stats.batches += 1;
                return Some(batch);
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Streaming row transform: selection, projection, column attachment, row
/// numbering and duplicate elimination all produce at most one output row
/// per input row and pipeline without buffering.
struct MapFilter<'a> {
    input: BoxedOperator<'a, Row>,
    f: Box<dyn FnMut(Row) -> Option<Row> + 'a>,
    stats: OpStats,
    sink: StatsSink,
}

impl Operator for MapFilter<'_> {
    type Item = Row;

    fn open(&mut self) {
        self.input.open();
    }

    fn next_batch(&mut self) -> Option<Batch<Row>> {
        loop {
            let batch = self.input.next_batch()?;
            self.stats.rows_in += batch.len();
            let mut out: Batch<Row> = Batch::new();
            for row in batch {
                if let Some(r) = (self.f)(row) {
                    out.push(r);
                }
            }
            if !out.is_empty() {
                self.stats.rows_out += out.len();
                self.stats.batches += 1;
                return Some(out);
            }
        }
    }

    fn close(&mut self) {
        self.input.close();
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Pipeline breaker: buffers its whole input at `open`, applies a
/// finalization pass (rank assignment, the serialization sort) and emits
/// the result in batches.
struct Blocking<'a> {
    input: BoxedOperator<'a, Row>,
    #[allow(clippy::type_complexity)]
    finalize: Option<Box<dyn FnOnce(Vec<Row>) -> Vec<Row> + 'a>>,
    /// The finalized output, handed out by value batch-by-batch.
    rows: std::vec::IntoIter<Row>,
    stats: OpStats,
    sink: StatsSink,
}

impl Operator for Blocking<'_> {
    type Item = Row;

    fn open(&mut self) {
        self.input.open();
        let mut buf = Vec::new();
        while let Some(batch) = self.input.next_batch() {
            self.stats.rows_in += batch.len();
            buf.extend(batch);
        }
        self.stats.build_rows = buf.len();
        let finalize = self.finalize.take().expect("blocking operator opened once");
        self.rows = finalize(buf).into_iter();
    }

    fn next_batch(&mut self) -> Option<Batch<Row>> {
        // Move the buffered rows out — no second clone of the result set.
        let items: Vec<Row> = self
            .rows
            .by_ref()
            .take(xqjg_store::BATCH_CAPACITY)
            .collect();
        if items.is_empty() {
            return None;
        }
        let batch = Batch::from_items(items);
        self.stats.rows_out += batch.len();
        self.stats.batches += 1;
        Some(batch)
    }

    fn close(&mut self) {
        self.input.close();
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// Join / cross product: the right (build) side is drained once at `open`
/// — bucketed by borrowed-key hash when equi-keys exist — and the left
/// (probe) side streams through.
struct JoinStream<'a> {
    left: BoxedOperator<'a, Row>,
    right: Option<BoxedOperator<'a, Row>>,
    left_schema: Schema,
    right_schema: Schema,
    right_rows: Vec<Row>,
    /// `(left key indices, right key indices)` for hash joins; `None`
    /// nested-loops over the buffered right side (theta join / cross).
    keys: Option<(Vec<usize>, Vec<usize>)>,
    residual: Vec<Comparison>,
    buckets: HashMap<u64, Vec<usize>>,
    pending: VecDeque<Row>,
    stats: OpStats,
    sink: StatsSink,
}

impl JoinStream<'_> {
    fn probe(&mut self, lr: &Row, pending: &mut VecDeque<Row>) {
        self.stats.probes += 1;
        match &self.keys {
            Some((left_keys, right_keys)) => {
                if left_keys.iter().any(|&k| lr[k].is_null()) {
                    return;
                }
                let h = hash_values(left_keys.iter().map(|&k| &lr[k]));
                let Some(candidates) = self.buckets.get(&h) else {
                    return;
                };
                for &ri in candidates {
                    let rr = &self.right_rows[ri];
                    // Resolve hash collisions by borrowed-value comparison.
                    let keys_match = left_keys
                        .iter()
                        .zip(right_keys)
                        .all(|(&lk, &rk)| lr[lk] == rr[rk]);
                    if !keys_match {
                        continue;
                    }
                    if join_residual_holds(
                        &self.residual,
                        lr,
                        &self.left_schema,
                        rr,
                        &self.right_schema,
                    ) {
                        let mut row = lr.clone();
                        row.extend(rr.iter().cloned());
                        pending.push_back(row);
                    }
                }
            }
            None => {
                for rr in &self.right_rows {
                    if join_residual_holds(
                        &self.residual,
                        lr,
                        &self.left_schema,
                        rr,
                        &self.right_schema,
                    ) {
                        let mut row = lr.clone();
                        row.extend(rr.iter().cloned());
                        pending.push_back(row);
                    }
                }
            }
        }
    }
}

impl Operator for JoinStream<'_> {
    type Item = Row;

    fn open(&mut self) {
        self.left.open();
        let mut right = self.right.take().expect("join opened once");
        self.right_rows = drain(&mut *right);
        self.stats.build_rows = self.right_rows.len();
        if let Some((_, right_keys)) = &self.keys {
            for (i, rr) in self.right_rows.iter().enumerate() {
                if right_keys.iter().any(|&k| rr[k].is_null()) {
                    continue;
                }
                let h = hash_values(right_keys.iter().map(|&k| &rr[k]));
                self.buckets.entry(h).or_default().push(i);
            }
        }
    }

    fn next_batch(&mut self) -> Option<Batch<Row>> {
        let mut pending = std::mem::take(&mut self.pending);
        let out = fill_from_pending(&mut pending, |p| match self.left.next_batch() {
            Some(batch) => {
                self.stats.rows_in += batch.len();
                for lr in batch {
                    self.probe(&lr, p);
                }
                true
            }
            None => false,
        });
        self.pending = pending;
        let out = out?;
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.left.close();
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

/// RANK() OVER (ORDER BY keys) semantics: equal ranking keys receive the
/// same rank value; ranks are 1-based and not necessarily dense.  The
/// output retains the input row order with the rank column appended.
fn rank_rows(rows: Vec<Row>, key_idx: &[usize]) -> Vec<Row> {
    // Sort row indices by the ranking key (stable).
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| {
        for &i in key_idx {
            let o = rows[a][i].cmp(&rows[b][i]);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    // Assign RANK values.
    let mut ranks = vec![0i64; rows.len()];
    let mut current_rank = 0i64;
    for (pos, &row_idx) in order.iter().enumerate() {
        let same_as_prev = pos > 0
            && key_idx
                .iter()
                .all(|&i| rows[order[pos - 1]][i] == rows[row_idx][i]);
        if !same_as_prev {
            current_rank = pos as i64 + 1;
        }
        ranks[row_idx] = current_rank;
    }
    rows.into_iter()
        .enumerate()
        .map(|(i, mut r)| {
            r.push(Value::Int(ranks[i]));
            r
        })
        .collect()
}

fn join_residual_holds(
    residual: &[Comparison],
    lr: &Row,
    ls: &Schema,
    rr: &Row,
    rs: &Schema,
) -> bool {
    residual.iter().all(|c| {
        let lhs = eval_scalar_two_sided(&c.lhs, lr, ls, rr, rs);
        let rhs = eval_scalar_two_sided(&c.rhs, lr, ls, rr, rs);
        match lhs.sql_cmp(&rhs) {
            Some(ord) => c.op.eval(ord),
            None => false,
        }
    })
}

/// Evaluate a scalar against the concatenation of a left and right row.
fn eval_scalar_two_sided(s: &Scalar, lr: &Row, ls: &Schema, rr: &Row, rs: &Schema) -> Value {
    match s {
        Scalar::Const(v) => v.clone(),
        Scalar::Col(c) => {
            if let Some(i) = ls.index_of(c) {
                lr[i].clone()
            } else if let Some(i) = rs.index_of(c) {
                rr[i].clone()
            } else {
                panic!("column {c:?} not found in join inputs {ls} / {rs}")
            }
        }
        Scalar::Add(a, b) => eval_scalar_two_sided(a, lr, ls, rr, rs)
            .numeric_add(&eval_scalar_two_sided(b, lr, ls, rr, rs)),
    }
}

/// Evaluate a scalar against a single row.
pub fn eval_scalar(s: &Scalar, row: &Row, schema: &Schema) -> Value {
    match s {
        Scalar::Const(v) => v.clone(),
        Scalar::Col(c) => row[schema.expect_index(c)].clone(),
        Scalar::Add(a, b) => eval_scalar(a, row, schema).numeric_add(&eval_scalar(b, row, schema)),
    }
}

/// Evaluate a conjunctive predicate against a single row (NULL comparisons
/// are false, as in SQL).
pub fn eval_predicate(pred: &Predicate, row: &Row, schema: &Schema) -> bool {
    pred.conjuncts.iter().all(|c| {
        let lhs = eval_scalar(&c.lhs, row, schema);
        let rhs = eval_scalar(&c.rhs, row, schema);
        match lhs.sql_cmp(&rhs) {
            Some(ord) => c.op.eval(ord),
            None => false,
        }
    })
}

/// Numeric addition with Int/Dec promotion; NULL-propagating (delegates to
/// [`Value::numeric_add`], the shared `+` semantics).
pub fn add_values(a: &Value, b: &Value) -> Value {
    a.numeric_add(b)
}

/// Evaluate a single comparison operator on two values (used by the
/// reference interpreter and the pureXML baseline as well).
pub fn compare_values(a: &Value, op: CmpOp, b: &Value) -> bool {
    match a.sql_cmp(b) {
        Some(ord) => op.eval(ord),
        None => false,
    }
}

#[cfg(test)]
// The unit tests deliberately keep exercising the deprecated entry points:
// they are the regression suite proving the shims stay byte-identical to
// the `AlgebraRequest` path they forward to.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::ir::Comparison;

    fn doc_fixture() -> Table {
        // A tiny stand-in for the doc relation: pre, size, level, kind, name.
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        type FixtureRow = (
            i64,
            i64,
            i64,
            &'static str,
            Option<&'static str>,
            Option<&'static str>,
            Option<f64>,
        );
        let rows: Vec<FixtureRow> = vec![
            (0, 3, 0, "DOC", Some("d.xml"), None, None),
            (1, 2, 1, "ELEM", Some("a"), None, None),
            (2, 1, 2, "ELEM", Some("b"), Some("7"), Some(7.0)),
            (3, 0, 3, "TEXT", None, Some("7"), Some(7.0)),
        ];
        for (pre, size, level, kind, name, value, data) in rows {
            t.push(vec![
                Value::Int(pre),
                Value::Int(size),
                Value::Int(level),
                Value::str(kind),
                name.map(Value::str).unwrap_or(Value::Null),
                value.map(Value::str).unwrap_or(Value::Null),
                data.map(Value::Dec).unwrap_or(Value::Null),
            ]);
        }
        t
    }

    #[test]
    fn select_project_pipeline() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let d = p.add(OpKind::DocTable);
        let s = p.add(OpKind::Select {
            input: d,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let pr = p.add(OpKind::Project {
            input: s,
            cols: vec![("item".to_string(), "pre".to_string())],
        });
        let root = p.add(OpKind::Serialize { input: pr });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], vec![Value::Int(1)]);
    }

    #[test]
    fn join_with_range_predicate_implements_descendant() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let d1 = p.add(OpKind::DocTable);
        let ctx = p.add(OpKind::Select {
            input: d1,
            pred: Predicate::single(Comparison::col_eq_const("kind", "DOC")),
        });
        let ctx_proj = p.add(OpKind::Project {
            input: ctx,
            cols: vec![
                ("pre0".to_string(), "pre".to_string()),
                ("size0".to_string(), "size".to_string()),
            ],
        });
        let d2 = p.add(OpKind::DocTable);
        let join = p.add(OpKind::Join {
            left: d2,
            right: ctx_proj,
            pred: Predicate::all([
                Comparison::new(Scalar::col("pre0"), CmpOp::Lt, Scalar::col("pre")),
                Comparison::new(
                    Scalar::col("pre"),
                    CmpOp::Le,
                    Scalar::col("pre0") + Scalar::col("size0"),
                ),
            ]),
        });
        let root = p.add(OpKind::Serialize { input: join });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        // Descendants of the DOC node: pre 1, 2, 3.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn hash_join_on_equality() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["iter".to_string(), "item".to_string()],
            rows: vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(1), Value::Int(3)],
            ],
        });
        let d = p.add(OpKind::DocTable);
        let join = p.add(OpKind::Join {
            left: d,
            right: lit,
            pred: Predicate::single(Comparison::col_eq_col("pre", "item")),
        });
        let root = p.add(OpKind::Serialize { input: join });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn rank_assigns_order_based_positions() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["iter".to_string(), "item".to_string()],
            rows: vec![
                vec![Value::Int(1), Value::Int(30)],
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(10)],
            ],
        });
        let rank = p.add(OpKind::Rank {
            input: lit,
            col: "pos".to_string(),
            order_by: vec!["item".to_string()],
        });
        let root = p.add(OpKind::Serialize { input: rank });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        // Both item=10 rows get rank 1; item=30 gets rank 3.
        let pos_idx = out.schema().expect_index("pos");
        let item_idx = out.schema().expect_index("item");
        for r in out.rows() {
            if r[item_idx] == Value::Int(10) {
                assert_eq!(r[pos_idx], Value::Int(1));
            } else {
                assert_eq!(r[pos_idx], Value::Int(3));
            }
        }
    }

    #[test]
    fn rownum_attach_distinct_cross() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["x".to_string()],
            rows: vec![vec![Value::Int(5)], vec![Value::Int(5)]],
        });
        let dis = p.add(OpKind::Distinct { input: lit });
        let att = p.add(OpKind::Attach {
            input: dis,
            col: "c".to_string(),
            value: Value::str("k"),
        });
        let num = p.add(OpKind::RowNum {
            input: att,
            col: "id".to_string(),
        });
        let lit2 = p.add(OpKind::Literal {
            columns: vec!["y".to_string()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        });
        let cross = p.add(OpKind::Cross {
            left: num,
            right: lit2,
        });
        let root = p.add(OpKind::Serialize { input: cross });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().columns(), &["x", "c", "id", "y"]);
    }

    #[test]
    fn serialize_orders_by_iter_pos() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["iter".to_string(), "pos".to_string(), "item".to_string()],
            rows: vec![
                vec![Value::Int(2), Value::Int(1), Value::Int(9)],
                vec![Value::Int(1), Value::Int(2), Value::Int(8)],
                vec![Value::Int(1), Value::Int(1), Value::Int(7)],
            ],
        });
        let root = p.add(OpKind::Serialize { input: lit });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        let items: Vec<&Value> = out.rows().iter().map(|r| &r[2]).collect();
        assert_eq!(items, vec![&Value::Int(7), &Value::Int(8), &Value::Int(9)]);
    }

    #[test]
    fn null_comparisons_are_false() {
        let pred = Predicate::single(Comparison::new(
            Scalar::col("v"),
            CmpOp::Eq,
            Scalar::cnst(Value::Null),
        ));
        let schema = Schema::new(["v"]);
        assert!(!eval_predicate(&pred, &vec![Value::Int(1)], &schema));
        assert!(!eval_predicate(&pred, &vec![Value::Null], &schema));
    }

    #[test]
    fn add_values_promotes() {
        assert_eq!(add_values(&Value::Int(1), &Value::Int(2)), Value::Int(3));
        assert_eq!(
            add_values(&Value::Int(1), &Value::Dec(0.5)),
            Value::Dec(1.5)
        );
        assert_eq!(add_values(&Value::Null, &Value::Int(1)), Value::Null);
        assert_eq!(add_values(&Value::str("x"), &Value::Int(1)), Value::Null);
    }

    #[test]
    fn materialized_rows_counts_all_operators() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let d = p.add(OpKind::DocTable);
        let s = p.add(OpKind::Select {
            input: d,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let root = p.add(OpKind::Serialize { input: s });
        p.set_root(root);
        let total = materialized_rows(&p, &EvalContext { doc: &doc });
        // doc (4) + select (2) + serialize (2)
        assert_eq!(total, 8);
    }

    #[test]
    fn shared_subplans_are_materialized_and_counted_once() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        // The same δ(doc) node feeds both join inputs (through renaming
        // projections so the output columns stay disjoint).
        let d = p.add(OpKind::DocTable);
        let dis = p.add(OpKind::Distinct { input: d });
        let left = p.add(OpKind::Project {
            input: dis,
            cols: vec![("lp".to_string(), "pre".to_string())],
        });
        let right = p.add(OpKind::Project {
            input: dis,
            cols: vec![("rp".to_string(), "pre".to_string())],
        });
        let join = p.add(OpKind::Join {
            left,
            right,
            pred: Predicate::single(Comparison::col_eq_col("lp", "rp")),
        });
        let root = p.add(OpKind::Serialize { input: join });
        p.set_root(root);
        let (out, stats) = evaluate_with_stats(&p, &EvalContext { doc: &doc });
        assert_eq!(out.len(), 4, "self-equi-join over pre");
        // doc and δ are counted exactly once despite feeding two parents.
        let doc_entries = stats.iter().filter(|o| o.name == "doc").count();
        assert_eq!(doc_entries, 1);
        // doc(4) + δ(4) + two π(4 each) + join(4) + serialize(4)
        let total: usize = stats.iter().map(|o| o.rows_out).sum();
        assert_eq!(total, 24);
    }

    #[test]
    fn per_operator_stats_record_batches_and_probes() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["item".to_string()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        });
        let d = p.add(OpKind::DocTable);
        let join = p.add(OpKind::Join {
            left: d,
            right: lit,
            pred: Predicate::single(Comparison::col_eq_col("pre", "item")),
        });
        let root = p.add(OpKind::Serialize { input: join });
        p.set_root(root);
        let (_, stats) = evaluate_with_stats(&p, &EvalContext { doc: &doc });
        let join_stats = stats
            .iter()
            .find(|o| o.name.starts_with('⋈'))
            .expect("join reports stats");
        assert_eq!(join_stats.probes, 4, "one probe per left row");
        assert_eq!(join_stats.build_rows, 2, "right side buffered once");
        assert_eq!(join_stats.rows_out, 2);
        assert!(stats.iter().all(|o| o.rows_out == 0 || o.batches > 0));
    }
}
