//! Direct, operator-at-a-time evaluation of algebra plans.
//!
//! Every operator materializes its full result table, exactly like the
//! staged execution (SORT → temporary table → scan) that a relational
//! back-end falls back to for the compiler's *stacked* plans.  This
//! evaluator therefore doubles as
//!
//! 1. the semantics reference for the rewriter (isolation must not change
//!    the evaluated result), and
//! 2. the "DB2 + Pathfinder, stacked" baseline column of Table IX.

use crate::ir::{CmpOp, OpId, OpKind, Plan, Predicate, Scalar};
use std::collections::HashMap;
use xqjg_store::{Row, Schema, Table, Value};

/// Evaluation context: the base relations a plan may reference.
pub struct EvalContext<'a> {
    /// The XML infoset encoding relation (`doc`).
    pub doc: &'a Table,
}

/// Evaluate a plan to its result table (the table produced at the
/// serialization point).
pub fn evaluate(plan: &Plan, ctx: &EvalContext<'_>) -> Table {
    let mut memo: HashMap<OpId, Table> = HashMap::new();
    for id in plan.topo_order() {
        let table = eval_op(plan, id, ctx, &memo);
        memo.insert(id, table);
    }
    memo.remove(&plan.root()).expect("root must be evaluated")
}

/// Number of rows materialized across all operators (a simple work metric
/// used by the benchmarks to contrast stacked and isolated plans).
pub fn materialized_rows(plan: &Plan, ctx: &EvalContext<'_>) -> usize {
    let mut memo: HashMap<OpId, Table> = HashMap::new();
    let mut total = 0usize;
    for id in plan.topo_order() {
        let table = eval_op(plan, id, ctx, &memo);
        total += table.len();
        memo.insert(id, table);
    }
    total
}

fn eval_op(plan: &Plan, id: OpId, ctx: &EvalContext<'_>, memo: &HashMap<OpId, Table>) -> Table {
    let input =
        |child: OpId| -> &Table { memo.get(&child).expect("child evaluated before parent") };
    match plan.op(id) {
        OpKind::DocTable => ctx.doc.clone(),
        OpKind::Literal { columns, rows } => {
            Table::from_rows(Schema::new(columns.clone()), rows.clone())
        }
        OpKind::Serialize { input: c } => {
            let t = input(*c);
            let mut out = t.clone();
            // Order the encoding of the result: by iteration, then by
            // sequence position (only the columns that exist participate).
            let mut order = Vec::new();
            for col in ["iter", "pos", "item"] {
                if t.schema().contains(col) {
                    order.push(col.to_string());
                }
            }
            out.sort_by_columns(&order);
            out
        }
        OpKind::Project { input: c, cols } => input(*c).project(
            &cols
                .iter()
                .map(|(n, o)| (n.clone(), o.clone()))
                .collect::<Vec<_>>(),
        ),
        OpKind::Select { input: c, pred } => {
            let t = input(*c);
            t.filter(|row, schema| eval_predicate(pred, row, schema))
        }
        OpKind::Distinct { input: c } => input(*c).distinct(),
        OpKind::Attach {
            input: c,
            col,
            value,
        } => {
            let t = input(*c);
            let mut columns: Vec<String> = t.schema().columns().to_vec();
            columns.push(col.clone());
            let rows = t
                .rows()
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.push(value.clone());
                    r
                })
                .collect();
            Table::from_rows(Schema::new(columns), rows)
        }
        OpKind::RowNum { input: c, col } => {
            let t = input(*c);
            let mut columns: Vec<String> = t.schema().columns().to_vec();
            columns.push(col.clone());
            let rows = t
                .rows()
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let mut r = r.clone();
                    r.push(Value::Int(i as i64 + 1));
                    r
                })
                .collect();
            Table::from_rows(Schema::new(columns), rows)
        }
        OpKind::Rank {
            input: c,
            col,
            order_by,
        } => eval_rank(input(*c), col, order_by),
        OpKind::Cross { left, right } => {
            let l = input(*left);
            let r = input(*right);
            let mut columns: Vec<String> = l.schema().columns().to_vec();
            columns.extend(r.schema().columns().iter().cloned());
            let mut rows = Vec::with_capacity(l.len() * r.len());
            for lr in l.rows() {
                for rr in r.rows() {
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    rows.push(row);
                }
            }
            Table::from_rows(Schema::new(columns), rows)
        }
        OpKind::Join { left, right, pred } => eval_join(input(*left), input(*right), pred),
    }
}

/// RANK() OVER (ORDER BY order_by) semantics: equal ranking keys receive the
/// same rank value; ranks are 1-based and not necessarily dense.
fn eval_rank(t: &Table, col: &str, order_by: &[String]) -> Table {
    let key_idx: Vec<usize> = order_by
        .iter()
        .map(|c| t.schema().expect_index(c))
        .collect();
    // Sort row indices by the ranking key (stable).
    let mut order: Vec<usize> = (0..t.len()).collect();
    order.sort_by(|&a, &b| {
        for &i in &key_idx {
            let o = t.rows()[a][i].cmp(&t.rows()[b][i]);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    // Assign RANK values.
    let mut ranks = vec![0i64; t.len()];
    let mut current_rank = 0i64;
    for (pos, &row_idx) in order.iter().enumerate() {
        let same_as_prev = pos > 0
            && key_idx
                .iter()
                .all(|&i| t.rows()[order[pos - 1]][i] == t.rows()[row_idx][i]);
        if !same_as_prev {
            current_rank = pos as i64 + 1;
        }
        ranks[row_idx] = current_rank;
    }
    let mut columns: Vec<String> = t.schema().columns().to_vec();
    columns.push(col.to_string());
    let rows = t
        .rows()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = r.clone();
            r.push(Value::Int(ranks[i]));
            r
        })
        .collect();
    Table::from_rows(Schema::new(columns), rows)
}

fn eval_join(left: &Table, right: &Table, pred: &Predicate) -> Table {
    let mut columns: Vec<String> = left.schema().columns().to_vec();
    columns.extend(right.schema().columns().iter().cloned());
    let out_schema = Schema::new(columns);

    // Split the predicate into hashable equi-conjuncts (left column = right
    // column) and the rest.
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    let mut residual: Vec<_> = Vec::new();
    for c in &pred.conjuncts {
        if let Some((a, b)) = c.as_col_eq_col() {
            match (left.schema().index_of(a), right.schema().index_of(b)) {
                (Some(li), Some(ri)) => {
                    left_keys.push(li);
                    right_keys.push(ri);
                    continue;
                }
                _ => {
                    if let (Some(li), Some(ri)) =
                        (left.schema().index_of(b), right.schema().index_of(a))
                    {
                        left_keys.push(li);
                        right_keys.push(ri);
                        continue;
                    }
                }
            }
        }
        residual.push(c.clone());
    }

    let mut rows = Vec::new();
    if left_keys.is_empty() {
        // Pure theta join: nested loops.
        for lr in left.rows() {
            for rr in right.rows() {
                if join_residual_holds(&residual, lr, left.schema(), rr, right.schema()) {
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    rows.push(row);
                }
            }
        }
    } else {
        // Hash join: build on the smaller side (right by convention here).
        let mut buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, rr) in right.rows().iter().enumerate() {
            let key: Vec<Value> = right_keys.iter().map(|&k| rr[k].clone()).collect();
            buckets.entry(key).or_default().push(i);
        }
        for lr in left.rows() {
            let key: Vec<Value> = left_keys.iter().map(|&k| lr[k].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = buckets.get(&key) {
                for &ri in matches {
                    let rr = &right.rows()[ri];
                    if join_residual_holds(&residual, lr, left.schema(), rr, right.schema()) {
                        let mut row = lr.clone();
                        row.extend(rr.iter().cloned());
                        rows.push(row);
                    }
                }
            }
        }
    }
    Table::from_rows(out_schema, rows)
}

fn join_residual_holds(
    residual: &[crate::ir::Comparison],
    lr: &Row,
    ls: &Schema,
    rr: &Row,
    rs: &Schema,
) -> bool {
    residual.iter().all(|c| {
        let lhs = eval_scalar_two_sided(&c.lhs, lr, ls, rr, rs);
        let rhs = eval_scalar_two_sided(&c.rhs, lr, ls, rr, rs);
        match lhs.sql_cmp(&rhs) {
            Some(ord) => c.op.eval(ord),
            None => false,
        }
    })
}

/// Evaluate a scalar against the concatenation of a left and right row.
fn eval_scalar_two_sided(s: &Scalar, lr: &Row, ls: &Schema, rr: &Row, rs: &Schema) -> Value {
    match s {
        Scalar::Const(v) => v.clone(),
        Scalar::Col(c) => {
            if let Some(i) = ls.index_of(c) {
                lr[i].clone()
            } else if let Some(i) = rs.index_of(c) {
                rr[i].clone()
            } else {
                panic!("column {c:?} not found in join inputs {ls} / {rs}")
            }
        }
        Scalar::Add(a, b) => add_values(
            &eval_scalar_two_sided(a, lr, ls, rr, rs),
            &eval_scalar_two_sided(b, lr, ls, rr, rs),
        ),
    }
}

/// Evaluate a scalar against a single row.
pub fn eval_scalar(s: &Scalar, row: &Row, schema: &Schema) -> Value {
    match s {
        Scalar::Const(v) => v.clone(),
        Scalar::Col(c) => row[schema.expect_index(c)].clone(),
        Scalar::Add(a, b) => add_values(&eval_scalar(a, row, schema), &eval_scalar(b, row, schema)),
    }
}

/// Evaluate a conjunctive predicate against a single row (NULL comparisons
/// are false, as in SQL).
pub fn eval_predicate(pred: &Predicate, row: &Row, schema: &Schema) -> bool {
    pred.conjuncts.iter().all(|c| {
        let lhs = eval_scalar(&c.lhs, row, schema);
        let rhs = eval_scalar(&c.rhs, row, schema);
        match lhs.sql_cmp(&rhs) {
            Some(ord) => c.op.eval(ord),
            None => false,
        }
    })
}

/// Numeric addition with Int/Dec promotion; NULL-propagating.
pub fn add_values(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Value::Dec(x + y),
            _ => Value::Null,
        },
    }
}

/// Evaluate a single comparison operator on two values (used by the
/// reference interpreter and the pureXML baseline as well).
pub fn compare_values(a: &Value, op: CmpOp, b: &Value) -> bool {
    match a.sql_cmp(b) {
        Some(ord) => op.eval(ord),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Comparison;

    fn doc_fixture() -> Table {
        // A tiny stand-in for the doc relation: pre, size, level, kind, name.
        let mut t = Table::new(Schema::new([
            "pre", "size", "level", "kind", "name", "value", "data",
        ]));
        type FixtureRow = (
            i64,
            i64,
            i64,
            &'static str,
            Option<&'static str>,
            Option<&'static str>,
            Option<f64>,
        );
        let rows: Vec<FixtureRow> = vec![
            (0, 3, 0, "DOC", Some("d.xml"), None, None),
            (1, 2, 1, "ELEM", Some("a"), None, None),
            (2, 1, 2, "ELEM", Some("b"), Some("7"), Some(7.0)),
            (3, 0, 3, "TEXT", None, Some("7"), Some(7.0)),
        ];
        for (pre, size, level, kind, name, value, data) in rows {
            t.push(vec![
                Value::Int(pre),
                Value::Int(size),
                Value::Int(level),
                Value::str(kind),
                name.map(Value::str).unwrap_or(Value::Null),
                value.map(Value::str).unwrap_or(Value::Null),
                data.map(Value::Dec).unwrap_or(Value::Null),
            ]);
        }
        t
    }

    #[test]
    fn select_project_pipeline() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let d = p.add(OpKind::DocTable);
        let s = p.add(OpKind::Select {
            input: d,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let pr = p.add(OpKind::Project {
            input: s,
            cols: vec![("item".to_string(), "pre".to_string())],
        });
        let root = p.add(OpKind::Serialize { input: pr });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], vec![Value::Int(1)]);
    }

    #[test]
    fn join_with_range_predicate_implements_descendant() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let d1 = p.add(OpKind::DocTable);
        let ctx = p.add(OpKind::Select {
            input: d1,
            pred: Predicate::single(Comparison::col_eq_const("kind", "DOC")),
        });
        let ctx_proj = p.add(OpKind::Project {
            input: ctx,
            cols: vec![
                ("pre0".to_string(), "pre".to_string()),
                ("size0".to_string(), "size".to_string()),
            ],
        });
        let d2 = p.add(OpKind::DocTable);
        let join = p.add(OpKind::Join {
            left: d2,
            right: ctx_proj,
            pred: Predicate::all([
                Comparison::new(Scalar::col("pre0"), CmpOp::Lt, Scalar::col("pre")),
                Comparison::new(
                    Scalar::col("pre"),
                    CmpOp::Le,
                    Scalar::col("pre0") + Scalar::col("size0"),
                ),
            ]),
        });
        let root = p.add(OpKind::Serialize { input: join });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        // Descendants of the DOC node: pre 1, 2, 3.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn hash_join_on_equality() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["iter".to_string(), "item".to_string()],
            rows: vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(1), Value::Int(3)],
            ],
        });
        let d = p.add(OpKind::DocTable);
        let join = p.add(OpKind::Join {
            left: d,
            right: lit,
            pred: Predicate::single(Comparison::col_eq_col("pre", "item")),
        });
        let root = p.add(OpKind::Serialize { input: join });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn rank_assigns_order_based_positions() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["iter".to_string(), "item".to_string()],
            rows: vec![
                vec![Value::Int(1), Value::Int(30)],
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(10)],
            ],
        });
        let rank = p.add(OpKind::Rank {
            input: lit,
            col: "pos".to_string(),
            order_by: vec!["item".to_string()],
        });
        let root = p.add(OpKind::Serialize { input: rank });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        // Both item=10 rows get rank 1; item=30 gets rank 3.
        let pos_idx = out.schema().expect_index("pos");
        let item_idx = out.schema().expect_index("item");
        for r in out.rows() {
            if r[item_idx] == Value::Int(10) {
                assert_eq!(r[pos_idx], Value::Int(1));
            } else {
                assert_eq!(r[pos_idx], Value::Int(3));
            }
        }
    }

    #[test]
    fn rownum_attach_distinct_cross() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["x".to_string()],
            rows: vec![vec![Value::Int(5)], vec![Value::Int(5)]],
        });
        let dis = p.add(OpKind::Distinct { input: lit });
        let att = p.add(OpKind::Attach {
            input: dis,
            col: "c".to_string(),
            value: Value::str("k"),
        });
        let num = p.add(OpKind::RowNum {
            input: att,
            col: "id".to_string(),
        });
        let lit2 = p.add(OpKind::Literal {
            columns: vec!["y".to_string()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        });
        let cross = p.add(OpKind::Cross {
            left: num,
            right: lit2,
        });
        let root = p.add(OpKind::Serialize { input: cross });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().columns(), &["x", "c", "id", "y"]);
    }

    #[test]
    fn serialize_orders_by_iter_pos() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let lit = p.add(OpKind::Literal {
            columns: vec!["iter".to_string(), "pos".to_string(), "item".to_string()],
            rows: vec![
                vec![Value::Int(2), Value::Int(1), Value::Int(9)],
                vec![Value::Int(1), Value::Int(2), Value::Int(8)],
                vec![Value::Int(1), Value::Int(1), Value::Int(7)],
            ],
        });
        let root = p.add(OpKind::Serialize { input: lit });
        p.set_root(root);
        let out = evaluate(&p, &EvalContext { doc: &doc });
        let items: Vec<&Value> = out.rows().iter().map(|r| &r[2]).collect();
        assert_eq!(items, vec![&Value::Int(7), &Value::Int(8), &Value::Int(9)]);
    }

    #[test]
    fn null_comparisons_are_false() {
        let pred = Predicate::single(Comparison::new(
            Scalar::col("v"),
            CmpOp::Eq,
            Scalar::cnst(Value::Null),
        ));
        let schema = Schema::new(["v"]);
        assert!(!eval_predicate(&pred, &vec![Value::Int(1)], &schema));
        assert!(!eval_predicate(&pred, &vec![Value::Null], &schema));
    }

    #[test]
    fn add_values_promotes() {
        assert_eq!(add_values(&Value::Int(1), &Value::Int(2)), Value::Int(3));
        assert_eq!(
            add_values(&Value::Int(1), &Value::Dec(0.5)),
            Value::Dec(1.5)
        );
        assert_eq!(add_values(&Value::Null, &Value::Int(1)), Value::Null);
        assert_eq!(add_values(&Value::str("x"), &Value::Int(1)), Value::Null);
    }

    #[test]
    fn materialized_rows_counts_all_operators() {
        let doc = doc_fixture();
        let mut p = Plan::new();
        let d = p.add(OpKind::DocTable);
        let s = p.add(OpKind::Select {
            input: d,
            pred: Predicate::single(Comparison::col_eq_const("kind", "ELEM")),
        });
        let root = p.add(OpKind::Serialize { input: s });
        p.set_root(root);
        let total = materialized_rows(&p, &EvalContext { doc: &doc });
        // doc (4) + select (2) + serialize (2)
        assert_eq!(total, 8);
    }
}
