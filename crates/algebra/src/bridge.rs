//! Bridge between the XML-side encoding ([`xqjg_xml::DocTable`]) and the
//! relational-side `doc` relation ([`xqjg_store::Table`]).
//!
//! Column layout and naming follow Fig. 2; the `kind` column stores the
//! paper's textual labels (`DOC`, `ELEM`, `ATTR`, `TEXT`, …) so that the
//! emitted SQL reads exactly like Fig. 8 (`d1.kind = DOC`).

use xqjg_store::{Schema, Table, Value};
use xqjg_xml::{DocTable, NodeKind, Pre};

/// The canonical relational name of the encoding table.
pub const DOC_RELATION: &str = "doc";

/// Convert the XML encoding into a relational table with schema
/// `(pre, size, level, kind, name, value, data)`.
pub fn doc_relation(doc: &DocTable) -> Table {
    let schema = Schema::new(crate::ir::DOC_COLUMNS.iter().copied());
    let mut table = Table::new(schema);
    for row in doc.rows() {
        table.push(vec![
            Value::Int(row.pre as i64),
            Value::Int(row.size as i64),
            Value::Int(row.level as i64),
            Value::str(row.kind.label()),
            row.name.clone().map(Value::Str).unwrap_or(Value::Null),
            row.value.clone().map(Value::Str).unwrap_or(Value::Null),
            row.data.map(Value::Dec).unwrap_or(Value::Null),
        ]);
    }
    table
}

/// Extract the node sequence encoded by a result table: the `item` column
/// interpreted as `pre` ranks, in row order.
pub fn result_items(result: &Table) -> Vec<Pre> {
    let idx = result
        .schema()
        .index_of("item")
        .expect("result table has no item column");
    result
        .rows()
        .iter()
        .filter_map(|r| r[idx].as_i64())
        .map(|i| Pre(i as u32))
        .collect()
}

/// The label of a node kind as stored in the relational `kind` column.
pub fn kind_label(kind: NodeKind) -> &'static str {
    kind.label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqjg_xml::parse_document;

    #[test]
    fn doc_relation_matches_encoding() {
        let xml = r#"<a id="1"><b>15</b></a>"#;
        let enc = DocTable::from_document("a.xml", &parse_document(xml).unwrap());
        let rel = doc_relation(&enc);
        assert_eq!(rel.len(), enc.len());
        assert_eq!(rel.schema().columns().len(), 7);
        assert_eq!(rel.value(0, "kind"), &Value::str("DOC"));
        assert_eq!(rel.value(0, "name"), &Value::str("a.xml"));
        assert_eq!(rel.value(2, "kind"), &Value::str("ATTR"));
        assert_eq!(rel.value(3, "name"), &Value::str("b"));
        assert_eq!(rel.value(4, "data"), &Value::Dec(15.0));
    }

    #[test]
    fn result_items_reads_item_column() {
        let mut t = Table::new(Schema::new(["pos", "item"]));
        t.push(vec![Value::Int(1), Value::Int(4)]);
        t.push(vec![Value::Int(2), Value::Int(9)]);
        assert_eq!(result_items(&t), vec![Pre(4), Pre(9)]);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(kind_label(NodeKind::Document), "DOC");
        assert_eq!(kind_label(NodeKind::Element), "ELEM");
    }
}
