//! Error type for XML parsing and encoding.

use std::fmt;

/// An error raised while parsing XML text or building the tabular encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl XmlError {
    /// Create a new error at the given byte offset.
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        XmlError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = XmlError::new(42, "unexpected '<'");
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("unexpected '<'"));
    }
}
