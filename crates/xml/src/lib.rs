//! XML substrate for the join-graph-isolating XQuery processor.
//!
//! This crate provides everything the paper's Section II assumes about XML
//! document handling:
//!
//! * a parser for the well-formed XML subset the workloads need
//!   ([`parse_document`]),
//! * an in-memory infoset tree ([`tree::Document`], [`tree::NodeId`]),
//! * the schema-oblivious tabular encoding of Fig. 2 — one row per node with
//!   columns `pre | size | level | kind | name | value | data`
//!   ([`encoding::DocTable`], [`encoding::NodeRow`]),
//! * the XPath axis / kind-test / name-test predicates of Fig. 3
//!   ([`axis::Axis`], [`axis::NodeTest`]),
//! * serialization of a node-sequence result back to XML text
//!   ([`serialize::serialize_nodes`]).
//!
//! The encoding is the `doc` table every compiled plan joins against; all
//! higher layers (`xqjg-algebra`, `xqjg-engine`, `xqjg-core`) treat it as the
//! single shared base relation.

pub mod axis;
pub mod encoding;
pub mod error;
pub mod parser;
pub mod qname;
pub mod serialize;
pub mod tree;

pub use axis::{Axis, NodeTest};
pub use encoding::{DocTable, NodeKind, NodeRow, Pre};
pub use error::XmlError;
pub use parser::parse_document;
pub use serialize::{serialize_nodes, serialize_subtree, serialized_node_count};
pub use tree::{Document, Node, NodeId};

/// Parse XML text and immediately shred it into the tabular encoding.
///
/// The document URI is stored on the synthetic document root row (kind
/// `DOC`, column `name`), exactly as in Fig. 2 of the paper.
pub fn encode_document(uri: &str, text: &str) -> Result<DocTable, XmlError> {
    let doc = parse_document(text)?;
    Ok(DocTable::from_document(uri, &doc))
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn encode_paper_example() {
        let xml = r#"<open_auction id="1"><initial>15</initial><bidder><time>18:43</time><increase>4.20</increase></bidder></open_auction>"#;
        let table = encode_document("auction.xml", xml).unwrap();
        // Fig. 2 of the paper: 10 rows, pre 0..=9.
        assert_eq!(table.len(), 10);
        assert_eq!(table.row(Pre(0)).kind, NodeKind::Document);
        assert_eq!(table.row(Pre(0)).size, 9);
        assert_eq!(table.row(Pre(1)).name.as_deref(), Some("open_auction"));
        assert_eq!(table.row(Pre(2)).kind, NodeKind::Attribute);
        assert_eq!(table.row(Pre(2)).data, Some(1.0));
        assert_eq!(table.row(Pre(8)).value.as_deref(), Some("4.20"));
        assert_eq!(table.row(Pre(8)).data, Some(4.2));
    }
}
