//! XPath axes, node tests and their relational predicates (Fig. 3).
//!
//! Each axis maps to a conjunctive range predicate over the columns
//! `pre`, `size`, `level` of the context node (written `pre◦`, `size◦`,
//! `level◦` in the paper) and the candidate node.  Kind and name tests map
//! to equality predicates over `kind` and `name`.
//!
//! Besides the predicate *descriptions* (used by the compiler to build join
//! predicates), this module provides a naive direct evaluation
//! ([`step`]) over a [`DocTable`]; it is the semantics oracle the rest of
//! the system is tested against.

use crate::encoding::{DocTable, NodeKind, NodeRow, Pre};

/// The 12 XPath axes of the full axis feature, plus `attribute`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::`
    DescendantOrSelf,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following::`
    Following,
    /// `preceding::`
    Preceding,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `self::`
    SelfAxis,
    /// `attribute::`
    Attribute,
}

impl Axis {
    /// All axes, useful for exhaustive tests.
    pub const ALL: [Axis; 12] = [
        Axis::Child,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Parent,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::Preceding,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::SelfAxis,
        Axis::Attribute,
    ];

    /// XPath surface syntax of the axis.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
        }
    }

    /// Parse an axis from its surface name.
    pub fn from_name(name: &str) -> Option<Axis> {
        Axis::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Is this a reverse axis (results come before the context node in
    /// document order)?
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
        )
    }

    /// The dual axis obtained by swapping the roles of context node and
    /// result node — the basis of the "axis reversal" the optimizer performs
    /// (Section IV-A: `descendant` ↔ `ancestor`, `child` ↔ `parent`, …).
    pub fn dual(self) -> Axis {
        match self {
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::Descendant => Axis::Ancestor,
            Axis::Ancestor => Axis::Descendant,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::Following => Axis::Preceding,
            Axis::Preceding => Axis::Following,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::SelfAxis => Axis::SelfAxis,
            // The attribute/owner relationship is its own dual in the
            // encoding (the paper exploits this for attribute-axis reversal).
            Axis::Attribute => Axis::Attribute,
        }
    }

    /// The principal node kind of the axis: name tests without an explicit
    /// kind select this kind (attributes for the attribute axis, elements
    /// everywhere else).
    pub fn principal_node_kind(self) -> NodeKind {
        match self {
            Axis::Attribute => NodeKind::Attribute,
            _ => NodeKind::Element,
        }
    }

    /// Does the structural predicate `axis(α)` of Fig. 3 hold between a
    /// context row `ctx` and a candidate row `cand`?
    ///
    /// The predicates are purely structural (`pre`/`size`/`level`); kind and
    /// name restrictions are the node test's business.  The only exception
    /// is the attribute axis / its complement: attribute rows are embedded
    /// in their owner's `pre` range, so the child/descendant-family axes
    /// must exclude `ATTR` rows, and `attribute::` selects exactly them.
    pub fn holds(self, ctx: &NodeRow, cand: &NodeRow) -> bool {
        let (p0, s0, l0) = (ctx.pre, ctx.size, ctx.level);
        let (p, s, l) = (cand.pre, cand.size, cand.level);
        let cand_is_attr = cand.kind == NodeKind::Attribute;
        match self {
            Axis::Child => p0 < p && p <= p0 + s0 && l0 + 1 == l && !cand_is_attr,
            Axis::Descendant => p0 < p && p <= p0 + s0 && !cand_is_attr,
            Axis::DescendantOrSelf => p0 <= p && p <= p0 + s0 && !(cand_is_attr && p != p0),
            Axis::Parent => p < p0 && p0 <= p + s && l + 1 == l0,
            Axis::Ancestor => p < p0 && p0 <= p + s,
            Axis::AncestorOrSelf => p <= p0 && p0 <= p + s,
            Axis::Following => p > p0 + s0 && !cand_is_attr,
            Axis::Preceding => p + s < p0 && !cand_is_attr && ctx.kind != NodeKind::Attribute,
            Axis::FollowingSibling => {
                p > p0 && l == l0 && p <= sibling_bound(ctx, cand) && !cand_is_attr
            }
            Axis::PrecedingSibling => {
                p < p0 && l == l0 && p0 <= sibling_bound(cand, ctx) && !cand_is_attr
            }
            Axis::SelfAxis => p == p0,
            Axis::Attribute => p0 < p && p <= p0 + s0 && l0 + 1 == l && cand_is_attr,
        }
    }
}

/// Helper for the sibling axes: a following sibling of `ctx` must still lie
/// inside `ctx`'s parent's subtree.  Because the encoding does not store the
/// parent's `pre` directly, the direct-evaluation path approximates the
/// bound as "any node with the same level that is not a descendant of an
/// intermediate node"; [`step`] falls back to a tree-accurate computation.
fn sibling_bound(_ctx: &NodeRow, cand: &NodeRow) -> u32 {
    cand.pre
}

/// An XPath node test.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// `node()` — any node.
    AnyKind,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    Pi,
    /// A name test: `*` when `None`, a specific QName otherwise.  The kind
    /// selected is the axis's principal node kind.
    Name(Option<String>),
    /// `element()` / `element(name)` kind test in sequence-type syntax.
    Element(Option<String>),
    /// `attribute()` / `attribute(name)` kind test.
    Attribute(Option<String>),
    /// `document-node()`
    DocumentNode,
}

impl NodeTest {
    /// A wildcard name test (`*`).
    pub fn any_name() -> Self {
        NodeTest::Name(None)
    }

    /// A specific name test.
    pub fn name(n: impl Into<String>) -> Self {
        NodeTest::Name(Some(n.into()))
    }

    /// Does the node test accept the row, in the context of `axis`?
    pub fn matches(&self, axis: Axis, row: &NodeRow) -> bool {
        match self {
            NodeTest::AnyKind => true,
            NodeTest::Text => row.kind == NodeKind::Text,
            NodeTest::Comment => row.kind == NodeKind::Comment,
            NodeTest::Pi => row.kind == NodeKind::ProcessingInstruction,
            NodeTest::DocumentNode => row.kind == NodeKind::Document,
            NodeTest::Name(n) => {
                row.kind == axis.principal_node_kind()
                    && n.as_deref().is_none_or(|n| row.name.as_deref() == Some(n))
            }
            NodeTest::Element(n) => {
                row.kind == NodeKind::Element
                    && n.as_deref().is_none_or(|n| row.name.as_deref() == Some(n))
            }
            NodeTest::Attribute(n) => {
                row.kind == NodeKind::Attribute
                    && n.as_deref().is_none_or(|n| row.name.as_deref() == Some(n))
            }
        }
    }

    /// The equality predicates of Fig. 3: returns `(kind, name)` constraints
    /// the relational plan has to apply (`None` = unconstrained).
    pub fn predicates(&self, axis: Axis) -> (Option<NodeKind>, Option<String>) {
        match self {
            NodeTest::AnyKind => (None, None),
            NodeTest::Text => (Some(NodeKind::Text), None),
            NodeTest::Comment => (Some(NodeKind::Comment), None),
            NodeTest::Pi => (Some(NodeKind::ProcessingInstruction), None),
            NodeTest::DocumentNode => (Some(NodeKind::Document), None),
            NodeTest::Name(n) => (Some(axis.principal_node_kind()), n.clone()),
            NodeTest::Element(n) => (Some(NodeKind::Element), n.clone()),
            NodeTest::Attribute(n) => (Some(NodeKind::Attribute), n.clone()),
        }
    }

    /// XPath surface syntax.
    pub fn render(&self) -> String {
        match self {
            NodeTest::AnyKind => "node()".to_string(),
            NodeTest::Text => "text()".to_string(),
            NodeTest::Comment => "comment()".to_string(),
            NodeTest::Pi => "processing-instruction()".to_string(),
            NodeTest::DocumentNode => "document-node()".to_string(),
            NodeTest::Name(None) | NodeTest::Element(None) => "*".to_string(),
            NodeTest::Name(Some(n)) | NodeTest::Element(Some(n)) => n.clone(),
            NodeTest::Attribute(None) => "@*".to_string(),
            NodeTest::Attribute(Some(n)) => format!("@{n}"),
        }
    }
}

/// Naive (context-node-at-a-time) evaluation of one location step over the
/// tabular encoding.  Results are returned in document order without
/// duplicates — i.e. with `fs:ddo` applied, matching the normalized XQuery
/// Core semantics.
///
/// For the sibling axes, which the range predicates of Fig. 3 only
/// approximate, this function computes the exact sibling relationship via
/// the ancestor structure, keeping it a faithful oracle.
pub fn step(table: &DocTable, contexts: &[Pre], axis: Axis, test: &NodeTest) -> Vec<Pre> {
    let mut out: Vec<Pre> = Vec::new();
    for &ctx in contexts {
        let ctx_row = table.row(ctx);
        match axis {
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                let parent = parent_of(table, ctx);
                if let Some(parent) = parent {
                    let siblings = children_of(table, parent);
                    for s in siblings {
                        let srow = table.row(s);
                        let ok = match axis {
                            Axis::FollowingSibling => srow.pre > ctx_row.pre,
                            _ => srow.pre < ctx_row.pre,
                        };
                        if ok && test.matches(axis, srow) {
                            out.push(s);
                        }
                    }
                }
            }
            _ => {
                // Range predicates are accurate for all remaining axes; scan
                // only the relevant pre range where it is contiguous.
                let (lo, hi) = scan_range(table, ctx_row, axis);
                for p in lo..=hi {
                    if p as usize >= table.len() {
                        break;
                    }
                    let cand = table.row(Pre(p));
                    if axis.holds(ctx_row, cand) && test.matches(axis, cand) {
                        out.push(Pre(p));
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The contiguous `pre` range that can possibly satisfy `axis` for context
/// row `ctx` (used to avoid full-table scans in the oracle evaluation).
fn scan_range(table: &DocTable, ctx: &NodeRow, axis: Axis) -> (u32, u32) {
    let last = (table.len().saturating_sub(1)) as u32;
    match axis {
        Axis::Child | Axis::Descendant | Axis::Attribute => (ctx.pre + 1, ctx.pre + ctx.size),
        Axis::DescendantOrSelf => (ctx.pre, ctx.pre + ctx.size),
        Axis::SelfAxis => (ctx.pre, ctx.pre),
        Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::Preceding => (0, ctx.pre),
        Axis::Following => (ctx.pre + ctx.size, last),
        Axis::FollowingSibling | Axis::PrecedingSibling => (0, last),
    }
}

/// Parent of a node, computed via the ancestor predicate (closest ancestor).
pub fn parent_of(table: &DocTable, pre: Pre) -> Option<Pre> {
    let row = table.row(pre);
    let mut best: Option<Pre> = None;
    for p in (0..pre.0).rev() {
        let cand = table.row(Pre(p));
        if cand.pre < row.pre && row.pre <= cand.pre + cand.size && cand.level + 1 == row.level {
            best = Some(Pre(p));
            break;
        }
    }
    best
}

/// Children (non-attribute) of a node in document order.
pub fn children_of(table: &DocTable, pre: Pre) -> Vec<Pre> {
    let row = table.row(pre);
    (row.pre + 1..=row.pre + row.size)
        .filter(|&p| {
            let c = table.row(Pre(p));
            c.level == row.level + 1 && c.kind != NodeKind::Attribute
        })
        .map(Pre)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn table() -> DocTable {
        let xml = r#"<open_auction id="1"><initial>15</initial><bidder><time>18:43</time><increase>4.20</increase></bidder></open_auction>"#;
        DocTable::from_document("auction.xml", &parse_document(xml).unwrap())
    }

    #[test]
    fn paper_q0_child_text_step() {
        // Fig. 3 example: context {time, increase} (pre 6, 8), child::text()
        // yields pre {7, 9}.
        let t = table();
        let result = step(&t, &[Pre(6), Pre(8)], Axis::Child, &NodeTest::Text);
        assert_eq!(result, vec![Pre(7), Pre(9)]);
    }

    #[test]
    fn descendant_from_document_root() {
        let t = table();
        let result = step(&t, &[Pre(0)], Axis::Descendant, &NodeTest::name("bidder"));
        assert_eq!(result, vec![Pre(5)]);
    }

    #[test]
    fn child_excludes_attributes_but_attribute_axis_selects_them() {
        let t = table();
        let children = step(&t, &[Pre(1)], Axis::Child, &NodeTest::AnyKind);
        assert_eq!(children, vec![Pre(3), Pre(5)]);
        let attrs = step(&t, &[Pre(1)], Axis::Attribute, &NodeTest::any_name());
        assert_eq!(attrs, vec![Pre(2)]);
        let named = step(&t, &[Pre(1)], Axis::Attribute, &NodeTest::name("id"));
        assert_eq!(named, vec![Pre(2)]);
    }

    #[test]
    fn parent_and_ancestor() {
        let t = table();
        assert_eq!(
            step(&t, &[Pre(7)], Axis::Parent, &NodeTest::any_name()),
            vec![Pre(6)]
        );
        assert_eq!(
            step(&t, &[Pre(7)], Axis::Ancestor, &NodeTest::any_name()),
            vec![Pre(1), Pre(5), Pre(6)]
        );
        assert_eq!(
            step(&t, &[Pre(7)], Axis::AncestorOrSelf, &NodeTest::AnyKind),
            vec![Pre(0), Pre(1), Pre(5), Pre(6), Pre(7)]
        );
    }

    #[test]
    fn following_and_preceding() {
        let t = table();
        // following of initial (pre 3, size 1): nodes after pre 4.
        let fol = step(&t, &[Pre(3)], Axis::Following, &NodeTest::AnyKind);
        assert_eq!(fol, vec![Pre(5), Pre(6), Pre(7), Pre(8), Pre(9)]);
        let prec = step(&t, &[Pre(5)], Axis::Preceding, &NodeTest::AnyKind);
        assert_eq!(prec, vec![Pre(3), Pre(4)]);
    }

    #[test]
    fn sibling_axes() {
        let t = table();
        assert_eq!(
            step(&t, &[Pre(3)], Axis::FollowingSibling, &NodeTest::any_name()),
            vec![Pre(5)]
        );
        assert_eq!(
            step(&t, &[Pre(5)], Axis::PrecedingSibling, &NodeTest::any_name()),
            vec![Pre(3)]
        );
    }

    #[test]
    fn self_axis_and_node_tests() {
        let t = table();
        assert_eq!(
            step(&t, &[Pre(4)], Axis::SelfAxis, &NodeTest::Text),
            vec![Pre(4)]
        );
        assert_eq!(
            step(&t, &[Pre(4)], Axis::SelfAxis, &NodeTest::name("x")),
            vec![]
        );
    }

    #[test]
    fn duals_are_involutions() {
        for a in Axis::ALL {
            assert_eq!(a.dual().dual(), a);
        }
    }

    #[test]
    fn dual_axis_relates_swapped_rows() {
        let t = table();
        // descendant(ctx=1, cand=7) <=> ancestor(ctx=7, cand=1)
        assert!(Axis::Descendant.holds(t.row(Pre(1)), t.row(Pre(7))));
        assert!(Axis::Ancestor.holds(t.row(Pre(7)), t.row(Pre(1))));
    }

    #[test]
    fn node_test_predicates_follow_fig3() {
        let (k, n) = NodeTest::name("bidder").predicates(Axis::Child);
        assert_eq!(k, Some(NodeKind::Element));
        assert_eq!(n.as_deref(), Some("bidder"));
        let (k, n) = NodeTest::name("id").predicates(Axis::Attribute);
        assert_eq!(k, Some(NodeKind::Attribute));
        assert_eq!(n.as_deref(), Some("id"));
        let (k, n) = NodeTest::Text.predicates(Axis::Child);
        assert_eq!(k, Some(NodeKind::Text));
        assert_eq!(n, None);
        assert_eq!(NodeTest::AnyKind.predicates(Axis::Descendant), (None, None));
    }

    #[test]
    fn axis_names_roundtrip() {
        for a in Axis::ALL {
            assert_eq!(Axis::from_name(a.name()), Some(a));
        }
        assert_eq!(Axis::from_name("sideways"), None);
    }
}
