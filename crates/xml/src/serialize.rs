//! Serialization of query results back to XML text.
//!
//! The relational processor returns a sequence of `pre` ranks (the encoding
//! of the resulting XML node sequence).  Serializing the sequence means
//! emitting, for every result node, the full subtree below it — the paper
//! makes this explicit by appending a `descendant-or-self::node()` step and
//! scanning the `p|nvkls` index in `pre` order.  This module performs the
//! same subtree scan directly over the [`DocTable`].

use crate::encoding::{DocTable, NodeKind, Pre};

/// Serialize a node sequence (in the given order) to XML text.
///
/// Adjacent result items are separated by newlines, mirroring the usual
/// XQuery serialization of top-level sequences.
pub fn serialize_nodes(table: &DocTable, nodes: &[Pre]) -> String {
    let mut out = String::new();
    for (i, &pre) in nodes.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        serialize_subtree(table, pre, &mut out);
    }
    out
}

/// Serialize the subtree rooted at `pre` into `out`.
pub fn serialize_subtree(table: &DocTable, pre: Pre, out: &mut String) {
    let row = table.row(pre);
    match row.kind {
        NodeKind::Document => {
            // Serialize all children of the document root.
            let mut p = pre.0 + 1;
            let end = pre.0 + row.size;
            while p <= end {
                let child = table.row(Pre(p));
                serialize_subtree(table, Pre(p), out);
                p += child.size + 1;
            }
        }
        NodeKind::Element => {
            let name = row.name.as_deref().unwrap_or("unnamed");
            out.push('<');
            out.push_str(name);
            // Attributes are the immediately following rows with
            // level = row.level + 1 and kind ATTR.
            let mut p = pre.0 + 1;
            let end = pre.0 + row.size;
            while p <= end {
                let cand = table.row(Pre(p));
                if cand.kind == NodeKind::Attribute && cand.level == row.level + 1 {
                    out.push(' ');
                    out.push_str(cand.name.as_deref().unwrap_or("attr"));
                    out.push_str("=\"");
                    push_escaped(out, cand.value.as_deref().unwrap_or(""), true);
                    out.push('"');
                    p += 1;
                } else {
                    break;
                }
            }
            if p > end {
                out.push_str("/>");
                return;
            }
            out.push('>');
            while p <= end {
                let child = table.row(Pre(p));
                serialize_subtree(table, Pre(p), out);
                p += child.size + 1;
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Attribute => {
            // A bare attribute in a sequence serializes as name="value".
            out.push_str(row.name.as_deref().unwrap_or("attr"));
            out.push_str("=\"");
            push_escaped(out, row.value.as_deref().unwrap_or(""), true);
            out.push('"');
        }
        NodeKind::Text => {
            push_escaped(out, row.value.as_deref().unwrap_or(""), false);
        }
        NodeKind::Comment => {
            out.push_str("<!--");
            out.push_str(row.value.as_deref().unwrap_or(""));
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction => {
            out.push_str("<?");
            out.push_str(row.name.as_deref().unwrap_or(""));
            if let Some(v) = row.value.as_deref() {
                if !v.is_empty() {
                    out.push(' ');
                    out.push_str(v);
                }
            }
            out.push_str("?>");
        }
    }
}

/// Count the nodes delivered by serialization of the given result sequence —
/// i.e. the size of the `descendant-or-self::node()` closure.  Table IX's
/// "# nodes" column reports exactly this quantity.
pub fn serialized_node_count(table: &DocTable, nodes: &[Pre]) -> usize {
    nodes.iter().map(|&p| table.row(p).size as usize + 1).sum()
}

fn push_escaped(out: &mut String, s: &str, in_attribute: bool) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn table(xml: &str) -> DocTable {
        DocTable::from_document("t.xml", &parse_document(xml).unwrap())
    }

    #[test]
    fn roundtrip_simple_document() {
        let xml = "<a x=\"1\"><b>hi</b><c/></a>";
        let t = table(xml);
        let rendered = serialize_nodes(&t, &[Pre(0)]);
        assert_eq!(rendered, xml);
    }

    #[test]
    fn roundtrip_paper_example() {
        let xml = r#"<open_auction id="1"><initial>15</initial><bidder><time>18:43</time><increase>4.20</increase></bidder></open_auction>"#;
        let t = table(xml);
        assert_eq!(serialize_nodes(&t, &[Pre(1)]), xml);
    }

    #[test]
    fn serialize_inner_nodes_and_text() {
        let t = table("<a><b>x &amp; y</b></a>");
        let b = Pre(2);
        assert_eq!(serialize_nodes(&t, &[b]), "<b>x &amp; y</b>");
        let text = Pre(3);
        assert_eq!(serialize_nodes(&t, &[text]), "x &amp; y");
    }

    #[test]
    fn serialize_attribute_node() {
        let t = table("<a id=\"7\"/>");
        assert_eq!(serialize_nodes(&t, &[Pre(2)]), "id=\"7\"");
    }

    #[test]
    fn sequence_items_newline_separated() {
        let t = table("<a><b>1</b><b>2</b></a>");
        let out = serialize_nodes(&t, &[Pre(2), Pre(4)]);
        assert_eq!(out, "<b>1</b>\n<b>2</b>");
    }

    #[test]
    fn node_count_matches_subtree_sizes() {
        let t = table("<a><b>1</b><b>2</b></a>");
        assert_eq!(serialized_node_count(&t, &[Pre(1)]), 5);
        assert_eq!(serialized_node_count(&t, &[Pre(2), Pre(4)]), 4);
    }

    #[test]
    fn parse_serialize_parse_is_stable() {
        let xml = "<site><people><person id=\"person0\"><name>Jo</name></person></people></site>";
        let t = table(xml);
        let rendered = serialize_nodes(&t, &[Pre(0)]);
        let t2 = table(&rendered);
        assert_eq!(t.len(), t2.len());
        for (a, b) in t.rows().zip(t2.rows()) {
            assert_eq!((a.kind, &a.name, &a.value), (b.kind, &b.name, &b.value));
        }
    }
}
