//! In-memory XML infoset tree.
//!
//! The tree is the parser's output and the data structure the navigational
//! baseline (`xqjg-purexml`) and the reference interpreter operate on.  The
//! relational processor never touches it after shredding into the tabular
//! encoding of [`crate::encoding`].

use std::fmt;

/// Index of a node inside a [`Document`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// The kind of an infoset node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeNodeKind {
    /// The synthetic document root.
    Document,
    /// An element node.
    Element,
    /// An attribute node.
    Attribute,
    /// A text node.
    Text,
    /// A comment node (parsed but never matched by the queries we support).
    Comment,
    /// A processing instruction.
    ProcessingInstruction,
}

/// A single infoset node stored in a [`Document`] arena.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node kind.
    pub kind: TreeNodeKind,
    /// Tag name for elements, attribute name for attributes, target for PIs.
    pub name: Option<String>,
    /// Text content for text/comment nodes, attribute value for attributes.
    pub value: Option<String>,
    /// Parent node, `None` only for the document root.
    pub parent: Option<NodeId>,
    /// Child nodes in document order (elements, text, comments, PIs).
    pub children: Vec<NodeId>,
    /// Attribute nodes owned by this element.
    pub attributes: Vec<NodeId>,
}

impl Node {
    fn new(kind: TreeNodeKind) -> Self {
        Node {
            kind,
            name: None,
            value: None,
            parent: None,
            children: Vec::new(),
            attributes: Vec::new(),
        }
    }
}

/// An XML document: an arena of [`Node`]s rooted at [`Document::ROOT`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// The arena index of the document root node.
    pub const ROOT: NodeId = NodeId(0);

    /// Create an empty document containing only the document root node.
    pub fn new() -> Self {
        let mut nodes = Vec::with_capacity(16);
        nodes.push(Node::new(TreeNodeKind::Document));
        Document { nodes }
    }

    /// Number of nodes in the document (including the document root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the document only contains the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Append a fresh element node under `parent`.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        let id = self.push(Node {
            kind: TreeNodeKind::Element,
            name: Some(name.into()),
            ..Node::new(TreeNodeKind::Element)
        });
        self.nodes[id.0].parent = Some(parent);
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Append an attribute node to the element `owner`.
    pub fn add_attribute(
        &mut self,
        owner: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> NodeId {
        let id = self.push(Node {
            kind: TreeNodeKind::Attribute,
            name: Some(name.into()),
            value: Some(value.into()),
            ..Node::new(TreeNodeKind::Attribute)
        });
        self.nodes[id.0].parent = Some(owner);
        self.nodes[owner.0].attributes.push(id);
        id
    }

    /// Append a text node under `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = self.push(Node {
            kind: TreeNodeKind::Text,
            value: Some(text.into()),
            ..Node::new(TreeNodeKind::Text)
        });
        self.nodes[id.0].parent = Some(parent);
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Append a comment node under `parent`.
    pub fn add_comment(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = self.push(Node {
            kind: TreeNodeKind::Comment,
            value: Some(text.into()),
            ..Node::new(TreeNodeKind::Comment)
        });
        self.nodes[id.0].parent = Some(parent);
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Append a processing-instruction node under `parent`.
    pub fn add_pi(
        &mut self,
        parent: NodeId,
        target: impl Into<String>,
        data: impl Into<String>,
    ) -> NodeId {
        let id = self.push(Node {
            kind: TreeNodeKind::ProcessingInstruction,
            name: Some(target.into()),
            value: Some(data.into()),
            ..Node::new(TreeNodeKind::ProcessingInstruction)
        });
        self.nodes[id.0].parent = Some(parent);
        self.nodes[parent.0].children.push(id);
        id
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// The (unique) top-level element of the document, if any.
    pub fn root_element(&self) -> Option<NodeId> {
        self.node(Self::ROOT)
            .children
            .iter()
            .copied()
            .find(|&c| self.node(c).kind == TreeNodeKind::Element)
    }

    /// Document-order iteration: a node, then its attributes, then its
    /// children recursively.  This matches the `pre` rank ordering used by
    /// the tabular encoding (Fig. 2 places the `id` attribute directly after
    /// its owner element).
    pub fn document_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.visit(Self::ROOT, &mut out);
        out
    }

    fn visit(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.push(id);
        let node = self.node(id);
        for &a in &node.attributes {
            out.push(a);
        }
        for &c in &node.children {
            self.visit(c, out);
        }
    }

    /// Number of nodes in the subtree rooted at `id` (excluding `id` itself,
    /// attributes included) — the `size` column of the encoding.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let node = self.node(id);
        let mut n = node.attributes.len();
        for &c in &node.children {
            n += 1 + self.subtree_size(c);
        }
        n
    }

    /// Length of the path from `id` up to the document root — the `level`
    /// column of the encoding (the document root itself has level 0).
    pub fn level(&self, id: NodeId) -> usize {
        let mut level = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            level += 1;
            cur = p;
        }
        level
    }

    /// Untyped string value of a node: concatenation of all descendant text
    /// for elements, the literal value for attributes and text nodes.
    pub fn string_value(&self, id: NodeId) -> String {
        let node = self.node(id);
        match node.kind {
            TreeNodeKind::Attribute
            | TreeNodeKind::Text
            | TreeNodeKind::Comment
            | TreeNodeKind::ProcessingInstruction => node.value.clone().unwrap_or_default(),
            TreeNodeKind::Element | TreeNodeKind::Document => {
                let mut buf = String::new();
                self.collect_text(id, &mut buf);
                buf
            }
        }
    }

    fn collect_text(&self, id: NodeId, buf: &mut String) {
        let node = self.node(id);
        match node.kind {
            TreeNodeKind::Text => buf.push_str(node.value.as_deref().unwrap_or("")),
            TreeNodeKind::Element | TreeNodeKind::Document => {
                for &c in &node.children {
                    self.collect_text(c, buf);
                }
            }
            _ => {}
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let root = d.add_element(Document::ROOT, "open_auction");
        d.add_attribute(root, "id", "1");
        let initial = d.add_element(root, "initial");
        d.add_text(initial, "15");
        let bidder = d.add_element(root, "bidder");
        let time = d.add_element(bidder, "time");
        d.add_text(time, "18:43");
        (d, root, initial, bidder)
    }

    #[test]
    fn document_order_puts_attributes_right_after_owner() {
        let (d, root, _, _) = sample();
        let order = d.document_order();
        assert_eq!(order[0], Document::ROOT);
        assert_eq!(order[1], root);
        assert_eq!(d.node(order[2]).kind, TreeNodeKind::Attribute);
    }

    #[test]
    fn subtree_size_counts_attributes_and_descendants() {
        let (d, root, initial, bidder) = sample();
        assert_eq!(d.subtree_size(root), 6);
        assert_eq!(d.subtree_size(initial), 1);
        assert_eq!(d.subtree_size(bidder), 2);
        assert_eq!(d.subtree_size(Document::ROOT), 7);
    }

    #[test]
    fn levels() {
        let (d, root, initial, _) = sample();
        assert_eq!(d.level(Document::ROOT), 0);
        assert_eq!(d.level(root), 1);
        assert_eq!(d.level(initial), 2);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let (d, root, initial, _) = sample();
        assert_eq!(d.string_value(initial), "15");
        assert_eq!(d.string_value(root), "1518:43");
    }

    #[test]
    fn root_element_found() {
        let (d, root, _, _) = sample();
        assert_eq!(d.root_element(), Some(root));
    }
}
