//! The tabular XML infoset encoding of Fig. 2.
//!
//! Every node of every loaded document becomes one row of the `doc` table
//! with schema
//!
//! ```text
//! pre | size | level | kind | name | value | data
//! ```
//!
//! * `pre`   — document order rank (unique key across the whole table),
//! * `size`  — number of nodes in the subtree below the node (attributes
//!   included),
//! * `level` — length of the path to the node's document root,
//! * `kind`  — DOC / ELEM / ATTR / TEXT / COMMENT / PI,
//! * `name`  — tag or attribute name; the document URI for DOC rows,
//! * `value` — untyped string value for nodes with `size <= 1`,
//! * `data`  — the `value` cast to `xs:decimal` where that cast succeeds.
//!
//! Several documents may live in one table (multiple DOC rows), exactly as
//! described in Section II-A of the paper.

use crate::tree::{Document, TreeNodeKind};

/// Document order rank — the key column of the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pre(pub u32);

impl Pre {
    /// The rank as a `usize` index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Pre {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The `kind` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// Document root (`DOC` in Fig. 2).
    Document,
    /// Element node (`ELEM`).
    Element,
    /// Attribute node (`ATTR`).
    Attribute,
    /// Text node (`TEXT`).
    Text,
    /// Comment node.
    Comment,
    /// Processing instruction.
    ProcessingInstruction,
}

impl NodeKind {
    /// Paper-style short label (used when rendering plans and SQL).
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Document => "DOC",
            NodeKind::Element => "ELEM",
            NodeKind::Attribute => "ATTR",
            NodeKind::Text => "TEXT",
            NodeKind::Comment => "COMMENT",
            NodeKind::ProcessingInstruction => "PI",
        }
    }

    /// Stable numeric code used when the kind is stored in a relational
    /// [`xqjg-store`] table or a B-tree key.
    pub fn code(self) -> i64 {
        match self {
            NodeKind::Document => 0,
            NodeKind::Element => 1,
            NodeKind::Attribute => 2,
            NodeKind::Text => 3,
            NodeKind::Comment => 4,
            NodeKind::ProcessingInstruction => 5,
        }
    }

    /// Inverse of [`NodeKind::code`].
    pub fn from_code(code: i64) -> Option<NodeKind> {
        Some(match code {
            0 => NodeKind::Document,
            1 => NodeKind::Element,
            2 => NodeKind::Attribute,
            3 => NodeKind::Text,
            4 => NodeKind::Comment,
            5 => NodeKind::ProcessingInstruction,
            _ => return None,
        })
    }
}

impl From<TreeNodeKind> for NodeKind {
    fn from(k: TreeNodeKind) -> Self {
        match k {
            TreeNodeKind::Document => NodeKind::Document,
            TreeNodeKind::Element => NodeKind::Element,
            TreeNodeKind::Attribute => NodeKind::Attribute,
            TreeNodeKind::Text => NodeKind::Text,
            TreeNodeKind::Comment => NodeKind::Comment,
            TreeNodeKind::ProcessingInstruction => NodeKind::ProcessingInstruction,
        }
    }
}

/// One row of the `doc` table.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// Document order rank.
    pub pre: u32,
    /// Subtree size (number of nodes strictly below this node).
    pub size: u32,
    /// Distance to the owning document root.
    pub level: u32,
    /// Node kind.
    pub kind: NodeKind,
    /// Tag / attribute name, or the document URI for DOC rows.
    pub name: Option<String>,
    /// Untyped string value, populated for rows with `size <= 1`.
    pub value: Option<String>,
    /// `value` cast to decimal when the cast succeeds.
    pub data: Option<f64>,
}

/// The tabular encoding: a dense vector of [`NodeRow`]s indexed by `pre`.
#[derive(Debug, Clone, Default)]
pub struct DocTable {
    rows: Vec<NodeRow>,
}

impl DocTable {
    /// Create an empty table.
    pub fn new() -> Self {
        DocTable { rows: Vec::new() }
    }

    /// Build a table directly from pre-computed rows (rows must already be
    /// in `pre` order with `pre` values `0..n`).
    pub fn from_rows(rows: Vec<NodeRow>) -> Self {
        for (i, r) in rows.iter().enumerate() {
            debug_assert_eq!(r.pre as usize, i, "rows must be dense in pre order");
        }
        DocTable { rows }
    }

    /// Shred a parsed [`Document`] into a fresh table.
    pub fn from_document(uri: &str, doc: &Document) -> Self {
        let mut table = DocTable::new();
        table.add_document(uri, doc);
        table
    }

    /// Append another document to the table (the table then hosts multiple
    /// trees, distinguishable via their DOC rows).
    pub fn add_document(&mut self, uri: &str, doc: &Document) {
        let base = self.rows.len() as u32;
        let order = doc.document_order();
        self.rows.reserve(order.len());
        for (offset, node_id) in order.iter().enumerate() {
            let node = doc.node(*node_id);
            let kind = NodeKind::from(node.kind);
            let size = doc.subtree_size(*node_id) as u32;
            let level = doc.level(*node_id) as u32;
            let name = match kind {
                NodeKind::Document => Some(uri.to_string()),
                _ => node.name.clone(),
            };
            let value = if size <= 1 && kind != NodeKind::Document {
                let v = doc.string_value(*node_id);
                if v.is_empty() && kind == NodeKind::Element {
                    None
                } else {
                    Some(v)
                }
            } else {
                None
            };
            let data = value.as_deref().and_then(parse_decimal);
            self.rows.push(NodeRow {
                pre: base + offset as u32,
                size,
                level,
                kind,
                name,
                value,
                data,
            });
        }
    }

    /// Number of rows (nodes) in the table.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no document has been loaded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access the row with the given `pre` rank.
    ///
    /// # Panics
    /// Panics when the rank is out of range.
    pub fn row(&self, pre: Pre) -> &NodeRow {
        &self.rows[pre.idx()]
    }

    /// Access the row with the given `pre` rank, if it exists.
    pub fn get(&self, pre: Pre) -> Option<&NodeRow> {
        self.rows.get(pre.idx())
    }

    /// Iterate over all rows in `pre` order.
    pub fn rows(&self) -> impl Iterator<Item = &NodeRow> {
        self.rows.iter()
    }

    /// All `pre` ranks whose row satisfies `f`.
    pub fn filter(&self, mut f: impl FnMut(&NodeRow) -> bool) -> Vec<Pre> {
        self.rows
            .iter()
            .filter(|r| f(r))
            .map(|r| Pre(r.pre))
            .collect()
    }

    /// The DOC row for a given document URI.
    pub fn document_root(&self, uri: &str) -> Option<Pre> {
        self.rows
            .iter()
            .find(|r| r.kind == NodeKind::Document && r.name.as_deref() == Some(uri))
            .map(|r| Pre(r.pre))
    }

    /// All document roots hosted by the table.
    pub fn document_roots(&self) -> Vec<Pre> {
        self.filter(|r| r.kind == NodeKind::Document)
    }

    /// The document root that owns the node `pre` (the closest preceding DOC
    /// row that contains `pre` in its subtree).
    pub fn owning_root(&self, pre: Pre) -> Option<Pre> {
        self.rows[..=pre.idx()]
            .iter()
            .rev()
            .find(|r| r.kind == NodeKind::Document && r.pre + r.size >= pre.0)
            .map(|r| Pre(r.pre))
    }

    /// Untyped string value of an arbitrary node: the stored `value` for
    /// rows that carry one, otherwise the concatenation of descendant TEXT
    /// rows (needed for atomization of large elements).
    pub fn string_value(&self, pre: Pre) -> String {
        let row = self.row(pre);
        if let Some(v) = &row.value {
            return v.clone();
        }
        let lo = pre.0;
        let hi = pre.0 + row.size;
        self.rows[lo as usize..=hi as usize]
            .iter()
            .filter(|r| r.kind == NodeKind::Text)
            .filter_map(|r| r.value.as_deref())
            .collect()
    }

    /// Typed decimal value of a node (`data` column semantics extended to
    /// arbitrary nodes via string-value parsing).
    pub fn decimal_value(&self, pre: Pre) -> Option<f64> {
        let row = self.row(pre);
        if row.data.is_some() {
            return row.data;
        }
        parse_decimal(&self.string_value(pre))
    }
}

/// Parse an `xs:decimal`-compatible literal (also accepts plain integers and
/// simple floating point forms produced by the data generators).
pub fn parse_decimal(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    // Reject strings with non-numeric content so "18:43" does not become a
    // decimal (cf. Fig. 2 where `time` has no data value).
    let mut chars = t.chars().peekable();
    if matches!(chars.peek(), Some('+') | Some('-')) {
        chars.next();
    }
    let mut seen_digit = false;
    let mut seen_dot = false;
    for c in chars {
        match c {
            '0'..='9' => seen_digit = true,
            '.' if !seen_dot => seen_dot = true,
            _ => return None,
        }
    }
    if !seen_digit {
        return None;
    }
    t.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn auction_table() -> DocTable {
        let xml = r#"<open_auction id="1"><initial>15</initial><bidder><time>18:43</time><increase>4.20</increase></bidder></open_auction>"#;
        DocTable::from_document("auction.xml", &parse_document(xml).unwrap())
    }

    #[test]
    fn figure2_layout() {
        let t = auction_table();
        let expect: Vec<(u32, u32, u32, NodeKind)> = vec![
            (0, 9, 0, NodeKind::Document),
            (1, 8, 1, NodeKind::Element),
            (2, 0, 2, NodeKind::Attribute),
            (3, 1, 2, NodeKind::Element),
            (4, 0, 3, NodeKind::Text),
            (5, 4, 2, NodeKind::Element),
            (6, 1, 3, NodeKind::Element),
            (7, 0, 4, NodeKind::Text),
            (8, 1, 3, NodeKind::Element),
            (9, 0, 4, NodeKind::Text),
        ];
        for (pre, size, level, kind) in expect {
            let r = t.row(Pre(pre));
            assert_eq!((r.pre, r.size, r.level, r.kind), (pre, size, level, kind));
        }
    }

    #[test]
    fn figure2_values_and_data() {
        let t = auction_table();
        assert_eq!(t.row(Pre(2)).value.as_deref(), Some("1"));
        assert_eq!(t.row(Pre(2)).data, Some(1.0));
        assert_eq!(t.row(Pre(3)).value.as_deref(), Some("15"));
        assert_eq!(t.row(Pre(3)).data, Some(15.0));
        assert_eq!(t.row(Pre(6)).value.as_deref(), Some("18:43"));
        assert_eq!(t.row(Pre(6)).data, None);
        assert_eq!(t.row(Pre(5)).value, None, "bidder has size 4, no value");
        assert_eq!(t.row(Pre(9)).data, Some(4.2));
    }

    #[test]
    fn multiple_documents_share_a_table() {
        let mut t = auction_table();
        let second = parse_document("<dblp><phdthesis/></dblp>").unwrap();
        t.add_document("dblp.xml", &second);
        assert_eq!(t.document_roots().len(), 2);
        let root2 = t.document_root("dblp.xml").unwrap();
        assert_eq!(root2, Pre(10));
        assert_eq!(t.row(root2).size, 2);
        assert_eq!(t.owning_root(Pre(11)), Some(root2));
        assert_eq!(t.owning_root(Pre(4)), Some(Pre(0)));
    }

    #[test]
    fn string_value_of_inner_element() {
        let t = auction_table();
        // bidder (pre 5) has no stored value; string value concatenates text.
        assert_eq!(t.string_value(Pre(5)), "18:434.20");
        assert_eq!(t.string_value(Pre(3)), "15");
    }

    #[test]
    fn decimal_parsing_rules() {
        assert_eq!(parse_decimal("15"), Some(15.0));
        assert_eq!(parse_decimal(" 4.20 "), Some(4.2));
        assert_eq!(parse_decimal("-3.5"), Some(-3.5));
        assert_eq!(parse_decimal("18:43"), None);
        assert_eq!(parse_decimal("person0"), None);
        assert_eq!(parse_decimal(""), None);
        assert_eq!(parse_decimal("1.2.3"), None);
    }
}
