//! A small, dependency-free XML parser.
//!
//! The parser covers the subset the XMark / DBLP style workloads and the
//! paper's running examples need: elements, attributes (single or double
//! quoted), character data with the five predefined entities plus numeric
//! character references, comments, CDATA sections, processing instructions
//! and an optional XML declaration / doctype line (skipped).  It rejects
//! mismatched tags and other structural errors with byte-accurate
//! [`XmlError`]s.

use crate::error::XmlError;
use crate::qname::is_valid_qname;
use crate::tree::{Document, NodeId};

/// Parse a complete XML document from `input`.
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut parser = Parser::new(input);
    parser.parse()
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn parse(&mut self) -> Result<Document, XmlError> {
        let mut doc = Document::new();
        self.skip_prolog()?;
        let mut stack: Vec<NodeId> = vec![Document::ROOT];
        let mut seen_root = false;

        loop {
            self.skip_misc_whitespace(&mut doc, &stack, seen_root);
            if self.at_end() {
                break;
            }
            if self.peek_str("</") {
                let (name, _) = self.parse_close_tag()?;
                if stack.len() <= 1 {
                    return Err(self.err(format!("unexpected closing tag </{name}>")));
                }
                let open = *stack.last().unwrap();
                let open_name = doc.node(open).name.clone().unwrap_or_default();
                if open_name != name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected </{open_name}>, found </{name}>"
                    )));
                }
                stack.pop();
            } else if self.peek_str("<!--") {
                let text = self.parse_comment()?;
                let parent = *stack.last().unwrap();
                if stack.len() > 1 {
                    doc.add_comment(parent, text);
                }
            } else if self.peek_str("<![CDATA[") {
                let text = self.parse_cdata()?;
                let parent = *stack.last().unwrap();
                if stack.len() <= 1 {
                    return Err(self.err("character data outside the root element"));
                }
                doc.add_text(parent, text);
            } else if self.peek_str("<?") {
                let (target, data) = self.parse_pi()?;
                let parent = *stack.last().unwrap();
                if stack.len() > 1 {
                    doc.add_pi(parent, target, data);
                }
            } else if self.peek_str("<!") {
                // DOCTYPE or similar declarations inside the body: skip.
                self.skip_until('>')?;
            } else if self.peek_byte() == Some(b'<') {
                if stack.len() == 1 && seen_root {
                    return Err(self.err("multiple root elements"));
                }
                let parent = *stack.last().unwrap();
                let (id, self_closing) = self.parse_open_tag(&mut doc, parent)?;
                if stack.len() == 1 {
                    seen_root = true;
                }
                if !self_closing {
                    stack.push(id);
                }
            } else {
                let text = self.parse_text()?;
                let parent = *stack.last().unwrap();
                if stack.len() <= 1 {
                    if !text.trim().is_empty() {
                        return Err(self.err("character data outside the root element"));
                    }
                } else if !text.is_empty() {
                    doc.add_text(parent, text);
                }
            }
        }

        if stack.len() > 1 {
            let open = doc
                .node(*stack.last().unwrap())
                .name
                .clone()
                .unwrap_or_default();
            return Err(self.err(format!("unclosed element <{open}>")));
        }
        if !seen_root {
            return Err(self.err("document has no root element"));
        }
        Ok(doc)
    }

    // --- prolog -----------------------------------------------------------

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_whitespace();
        if self.peek_str("<?xml") {
            self.skip_until('>')?;
        }
        loop {
            self.skip_whitespace();
            if self.peek_str("<!DOCTYPE") || self.peek_str("<!doctype") {
                self.skip_doctype()?;
            } else if self.peek_str("<!--") {
                self.parse_comment()?;
            } else if self.peek_str("<?") && !self.peek_str("<?xml") {
                self.parse_pi()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Handle nested [] internal subsets.
        let mut depth = 0usize;
        while let Some(b) = self.peek_byte() {
            self.pos += 1;
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err("unterminated DOCTYPE declaration"))
    }

    fn skip_misc_whitespace(&mut self, _doc: &mut Document, stack: &[NodeId], _seen_root: bool) {
        // Whitespace between top-level constructs is insignificant.
        if stack.len() == 1 {
            self.skip_whitespace();
        }
    }

    // --- markup -----------------------------------------------------------

    fn parse_open_tag(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
    ) -> Result<(NodeId, bool), XmlError> {
        self.expect_byte(b'<')?;
        let name = self.parse_name()?;
        let id = doc.add_element(parent, name);
        loop {
            self.skip_whitespace();
            match self.peek_byte() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((id, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect_byte(b'>')?;
                    return Ok((id, true));
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect_byte(b'=')?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    doc.add_attribute(id, attr_name, value);
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    fn parse_close_tag(&mut self) -> Result<(String, ()), XmlError> {
        self.expect_str("</")?;
        let name = self.parse_name()?;
        self.skip_whitespace();
        self.expect_byte(b'>')?;
        Ok((name, ()))
    }

    fn parse_comment(&mut self) -> Result<String, XmlError> {
        self.expect_str("<!--")?;
        let start = self.pos;
        while !self.peek_str("-->") {
            if self.at_end() {
                return Err(self.err("unterminated comment"));
            }
            self.pos += 1;
        }
        let text = self.input[start..self.pos].to_string();
        self.pos += 3;
        Ok(text)
    }

    fn parse_cdata(&mut self) -> Result<String, XmlError> {
        self.expect_str("<![CDATA[")?;
        let start = self.pos;
        while !self.peek_str("]]>") {
            if self.at_end() {
                return Err(self.err("unterminated CDATA section"));
            }
            self.pos += 1;
        }
        let text = self.input[start..self.pos].to_string();
        self.pos += 3;
        Ok(text)
    }

    fn parse_pi(&mut self) -> Result<(String, String), XmlError> {
        self.expect_str("<?")?;
        let target = self.parse_name()?;
        let start = self.pos;
        while !self.peek_str("?>") {
            if self.at_end() {
                return Err(self.err("unterminated processing instruction"));
            }
            self.pos += 1;
        }
        let data = self.input[start..self.pos].trim().to_string();
        self.pos += 2;
        Ok((target, data))
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek_byte() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        decode_entities(&self.input[start..self.pos], start)
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek_byte() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek_byte() {
            if b == quote {
                let raw = &self.input[start..self.pos];
                self.pos += 1;
                return decode_entities(raw, start);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek_byte() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' {
                self.pos += 1;
            } else if !c.is_ascii() {
                // Multi-byte character: accept it wholesale.
                let ch = self.input[self.pos..].chars().next().unwrap();
                self.pos += ch.len_utf8();
            } else {
                break;
            }
        }
        let name = &self.input[start..self.pos];
        if !is_valid_qname(name) {
            return Err(XmlError::new(start, format!("invalid name {name:?}")));
        }
        Ok(name.to_string())
    }

    // --- low-level helpers --------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_str(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek_byte() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<(), XmlError> {
        if self.peek_str(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek_byte() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn skip_until(&mut self, stop: char) -> Result<(), XmlError> {
        while let Some(b) = self.peek_byte() {
            self.pos += 1;
            if b == stop as u8 {
                return Ok(());
            }
        }
        Err(self.err(format!("expected {stop:?} before end of input")))
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::new(self.pos, message)
    }
}

/// Decode the five predefined entities and numeric character references.
fn decode_entities(raw: &str, base_offset: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    let mut offset = base_offset;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        let after = &rest[i..];
        let end = after.find(';').ok_or_else(|| {
            XmlError::new(offset + i, "unterminated entity reference".to_string())
        })?;
        let entity = &after[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                    XmlError::new(offset + i, format!("bad character reference &{entity};"))
                })?;
                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
            }
            _ if entity.starts_with('#') => {
                let cp: u32 = entity[1..].parse().map_err(|_| {
                    XmlError::new(offset + i, format!("bad character reference &{entity};"))
                })?;
                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
            }
            other => {
                return Err(XmlError::new(
                    offset + i,
                    format!("unknown entity &{other};"),
                ))
            }
        }
        offset += i + end + 1;
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeNodeKind;

    #[test]
    fn parses_simple_document() {
        let doc = parse_document("<a><b x='1'>hi</b><c/></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name.as_deref(), Some("a"));
        assert_eq!(doc.node(root).children.len(), 2);
        let b = doc.node(root).children[0];
        assert_eq!(doc.node(b).attributes.len(), 1);
        assert_eq!(doc.string_value(b), "hi");
    }

    #[test]
    fn parses_declaration_doctype_comments() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE site SYSTEM \"auction.dtd\">\n<!-- header -->\n<site><!-- inner --><x/></site>",
        )
        .unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name.as_deref(), Some("site"));
        // inner comment + element child
        assert_eq!(doc.node(root).children.len(), 2);
        assert_eq!(
            doc.node(doc.node(root).children[0]).kind,
            TreeNodeKind::Comment
        );
    }

    #[test]
    fn decodes_entities() {
        let doc = parse_document("<a t=\"&lt;&amp;&gt;\">x &#65; &quot;y&quot;</a>").unwrap();
        let root = doc.root_element().unwrap();
        let attr = doc.node(root).attributes[0];
        assert_eq!(doc.node(attr).value.as_deref(), Some("<&>"));
        assert_eq!(doc.string_value(root), "x A \"y\"");
    }

    #[test]
    fn parses_cdata() {
        let doc = parse_document("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.string_value(root), "1 < 2 && 3 > 2");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn rejects_unclosed_element() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(err.message.contains("unclosed"));
    }

    #[test]
    fn rejects_multiple_roots() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(err.message.contains("multiple root"));
    }

    #[test]
    fn rejects_garbage_text_at_top_level() {
        let err = parse_document("hello <a/>").unwrap_err();
        assert!(err.message.contains("root"));
    }

    #[test]
    fn whitespace_only_text_at_top_level_is_fine() {
        assert!(parse_document("  \n <a/> \n").is_ok());
    }

    #[test]
    fn self_closing_with_attributes() {
        let doc = parse_document("<a><item id=\"item7\" kind='used' /></a>").unwrap();
        let root = doc.root_element().unwrap();
        let item = doc.node(root).children[0];
        assert_eq!(doc.node(item).attributes.len(), 2);
    }

    #[test]
    fn processing_instruction_inside_body() {
        let doc = parse_document("<a><?php echo 1; ?></a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(
            doc.node(doc.node(root).children[0]).kind,
            TreeNodeKind::ProcessingInstruction
        );
    }
}
