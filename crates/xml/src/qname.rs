//! Qualified-name handling.
//!
//! The paper's fragment only needs `QName`s without namespace resolution
//! (XMark and DBLP data are namespace-free), so a qualified name is a plain
//! NCName with an optional prefix kept verbatim.

/// Returns `true` if `s` is a syntactically valid XML name (NCName with an
/// optional single `:` separating prefix and local part).
pub fn is_valid_qname(s: &str) -> bool {
    if s.is_empty() {
        return false;
    }
    let mut parts = s.split(':');
    let first = parts.next().unwrap();
    let rest: Vec<&str> = parts.collect();
    if rest.len() > 1 {
        return false;
    }
    if !is_ncname(first) {
        return false;
    }
    if let Some(local) = rest.first() {
        if !is_ncname(local) {
            return false;
        }
    }
    true
}

/// Returns `true` if `s` is a valid NCName (no colon).
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => {}
        _ => return false,
    }
    chars.all(is_name_char)
}

/// First character of an XML name.
pub fn is_name_start_char(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || (!c.is_ascii() && c.is_alphabetic())
}

/// Subsequent characters of an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Splits a qualified name into `(prefix, local)`; prefix is `None` when the
/// name has no colon.
pub fn split_qname(s: &str) -> (Option<&str>, &str) {
    match s.find(':') {
        Some(i) => (Some(&s[..i]), &s[i + 1..]),
        None => (None, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        for n in [
            "a",
            "open_auction",
            "closed-auction",
            "p.x",
            "_x",
            "ns:item",
        ] {
            assert!(is_valid_qname(n), "{n} should be valid");
        }
    }

    #[test]
    fn invalid_names() {
        for n in ["", "1a", "-a", "a:b:c", ":a", "a:"] {
            assert!(!is_valid_qname(n), "{n} should be invalid");
        }
    }

    #[test]
    fn split() {
        assert_eq!(split_qname("a:b"), (Some("a"), "b"));
        assert_eq!(split_qname("plain"), (None, "plain"));
    }
}
