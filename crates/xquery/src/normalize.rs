//! XQuery Core normalization.
//!
//! The loop-lifting compilation rules (Fig. 13) expect their input *after*
//! X Query Core normalization: duplicate removal and document ordering after
//! location steps is explicit (`fs:ddo`), effective boolean values in
//! conditionals are explicit (`fn:boolean`), path predicates `e[p]` are
//! desugared into `for`/`if`, and `where` clauses into `if` (the parser
//! already performs the latter).  This module performs that normalization,
//! producing the [`CoreExpr`] dialect the compiler and the reference
//! interpreter share.

use crate::ast::{Expr, GenCmp, Literal};
use std::fmt;
use xqjg_xml::{Axis, NodeTest};

/// Normalization error (unsupported construct or missing context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizeError {
    /// Description of the offending construct.
    pub message: String,
}

impl NormalizeError {
    fn new(message: impl Into<String>) -> Self {
        NormalizeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "normalization error: {}", self.message)
    }
}

impl std::error::Error for NormalizeError {}

/// A comparison operand: a node-sequence expression (atomized at comparison
/// time) or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A node-valued expression; the comparison atomizes its items.
    Nodes(CoreExpr),
    /// A literal.
    Literal(Literal),
}

/// A normalized conditional: the argument of `fn:boolean(·)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Effective boolean value of a node sequence (non-emptiness).
    Exists(CoreExpr),
    /// A general (existentially quantified) comparison.
    Compare {
        /// Left operand.
        lhs: Operand,
        /// Comparison operator.
        op: GenCmp,
        /// Right operand.
        rhs: Operand,
    },
}

/// An X Query Core expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreExpr {
    /// `for $var in seq return body`
    For {
        /// Bound variable.
        var: String,
        /// Iterated sequence.
        seq: Box<CoreExpr>,
        /// Loop body.
        body: Box<CoreExpr>,
    },
    /// `let $var := value return body`
    Let {
        /// Bound variable.
        var: String,
        /// Bound value.
        value: Box<CoreExpr>,
        /// Body.
        body: Box<CoreExpr>,
    },
    /// Variable reference.
    Var(String),
    /// `doc("uri")`
    Doc(String),
    /// `fs:ddo(e)` — distinct document order.
    Ddo(Box<CoreExpr>),
    /// A location step.
    Step {
        /// Context expression.
        input: Box<CoreExpr>,
        /// Axis.
        axis: Axis,
        /// Node test.
        test: NodeTest,
    },
    /// `if (fn:boolean(cond)) then then_branch else ()`
    If {
        /// Condition.
        cond: Box<Condition>,
        /// Then branch.
        then: Box<CoreExpr>,
    },
    /// A sequence of expressions (only meaningful directly under a `return`;
    /// the relational pipeline decomposes it into one query per item).
    Seq(Vec<CoreExpr>),
    /// The empty sequence `()`.
    Empty,
}

impl CoreExpr {
    /// Render the Core expression in XQuery-like concrete syntax (useful in
    /// error messages, tests and the figure harness).
    pub fn render(&self) -> String {
        match self {
            CoreExpr::For { var, seq, body } => {
                format!("for ${var} in {} return {}", seq.render(), body.render())
            }
            CoreExpr::Let { var, value, body } => {
                format!("let ${var} := {} return {}", value.render(), body.render())
            }
            CoreExpr::Var(v) => format!("${v}"),
            CoreExpr::Doc(uri) => format!("doc(\"{uri}\")"),
            CoreExpr::Ddo(e) => format!("fs:ddo({})", e.render()),
            CoreExpr::Step { input, axis, test } => {
                format!("{}/{}::{}", input.render(), axis.name(), test.render())
            }
            CoreExpr::If { cond, then } => format!(
                "if (fn:boolean({})) then {} else ()",
                cond.render(),
                then.render()
            ),
            CoreExpr::Seq(items) => {
                let parts: Vec<String> = items.iter().map(|e| e.render()).collect();
                format!("({})", parts.join(", "))
            }
            CoreExpr::Empty => "()".to_string(),
        }
    }
}

impl Condition {
    /// Concrete-syntax rendering.
    pub fn render(&self) -> String {
        match self {
            Condition::Exists(e) => e.render(),
            Condition::Compare { lhs, op, rhs } => {
                format!("{} {} {}", lhs.render(), op.symbol(), rhs.render())
            }
        }
    }
}

impl Operand {
    /// Concrete-syntax rendering.
    pub fn render(&self) -> String {
        match self {
            Operand::Nodes(e) => e.render(),
            Operand::Literal(Literal::String(s)) => format!("\"{s}\""),
            Operand::Literal(Literal::Integer(i)) => i.to_string(),
            Operand::Literal(Literal::Decimal(d)) => d.to_string(),
        }
    }
}

/// Normalization context.
struct Ctx<'a> {
    /// URI substituted for absolute paths (`/…`).
    default_doc: Option<&'a str>,
    /// The variable the current predicate's context item refers to.
    context_var: Option<String>,
    /// Counter for fresh variables introduced by predicate desugaring.
    fresh: usize,
}

impl<'a> Ctx<'a> {
    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("#p{}", self.fresh)
    }
}

/// Normalize a surface expression into X Query Core.
///
/// `default_doc` supplies the document URI that absolute paths (`/site/…`)
/// refer to; queries without absolute paths may pass `None`.
pub fn normalize(expr: &Expr, default_doc: Option<&str>) -> Result<CoreExpr, NormalizeError> {
    let mut ctx = Ctx {
        default_doc,
        context_var: None,
        fresh: 0,
    };
    normalize_value(expr, &mut ctx)
}

/// Normalize in a value position: path expressions receive a trailing
/// `fs:ddo(·)`.
fn normalize_value(expr: &Expr, ctx: &mut Ctx<'_>) -> Result<CoreExpr, NormalizeError> {
    let core = normalize_inner(expr, ctx)?;
    Ok(match core {
        CoreExpr::Step { .. } => CoreExpr::Ddo(Box::new(core)),
        other => other,
    })
}

fn normalize_inner(expr: &Expr, ctx: &mut Ctx<'_>) -> Result<CoreExpr, NormalizeError> {
    match expr {
        Expr::For { var, seq, body } => Ok(CoreExpr::For {
            var: var.clone(),
            seq: Box::new(normalize_value(seq, ctx)?),
            body: Box::new(normalize_value(body, ctx)?),
        }),
        Expr::Let { var, value, body } => Ok(CoreExpr::Let {
            var: var.clone(),
            value: Box::new(normalize_value(value, ctx)?),
            body: Box::new(normalize_value(body, ctx)?),
        }),
        Expr::Var(v) => Ok(CoreExpr::Var(v.clone())),
        Expr::Doc(uri) => Ok(CoreExpr::Doc(uri.clone())),
        Expr::Root => match ctx.default_doc {
            Some(uri) => Ok(CoreExpr::Doc(uri.to_string())),
            None => Err(NormalizeError::new(
                "absolute path used but no context document was supplied",
            )),
        },
        Expr::ContextItem => match &ctx.context_var {
            Some(v) => Ok(CoreExpr::Var(v.clone())),
            None => Err(NormalizeError::new(
                "context item '.' used outside a predicate",
            )),
        },
        Expr::Step { input, axis, test } => Ok(CoreExpr::Step {
            input: Box::new(normalize_inner(input, ctx)?),
            axis: *axis,
            test: test.clone(),
        }),
        Expr::Filter { input, pred } => {
            // e[p]  ≡  for $fresh in fs:ddo(e)
            //          return if (fn:boolean(p[. := $fresh])) then $fresh else ()
            let fresh = ctx.fresh_var();
            let seq = normalize_value(input, ctx)?;
            let saved = ctx.context_var.replace(fresh.clone());
            let body = normalize_condition_to_if(pred, CoreExpr::Var(fresh.clone()), ctx)?;
            ctx.context_var = saved;
            Ok(CoreExpr::For {
                var: fresh,
                seq: Box::new(seq),
                body: Box::new(body),
            })
        }
        Expr::If { cond, then, else_ } => {
            if **else_ != Expr::Empty {
                return Err(NormalizeError::new(
                    "the fragment only supports conditionals whose else branch is ()",
                ));
            }
            let then_core = normalize_value(then, ctx)?;
            normalize_condition_to_if(cond, then_core, ctx)
        }
        Expr::Sequence(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(normalize_value(item, ctx)?);
            }
            Ok(CoreExpr::Seq(out))
        }
        Expr::Empty => Ok(CoreExpr::Empty),
        Expr::Literal(_) => Err(NormalizeError::new(
            "literals may only appear as general-comparison operands in this fragment",
        )),
        Expr::Compare { .. } | Expr::And(_, _) | Expr::Or(_, _) => Err(NormalizeError::new(
            "boolean expressions may only appear in conditional/predicate positions",
        )),
    }
}

/// Normalize a boolean expression `cond` guarding `then` into (possibly
/// nested) `if` expressions: `if (a and b) then e` becomes
/// `if (a) then (if (b) then e else ()) else ()`.
fn normalize_condition_to_if(
    cond: &Expr,
    then: CoreExpr,
    ctx: &mut Ctx<'_>,
) -> Result<CoreExpr, NormalizeError> {
    match cond {
        Expr::And(a, b) => {
            let inner = normalize_condition_to_if(b, then, ctx)?;
            normalize_condition_to_if(a, inner, ctx)
        }
        Expr::Or(_, _) => Err(NormalizeError::new(
            "general 'or' conditions are outside the supported fragment",
        )),
        other => {
            let condition = normalize_condition(other, ctx)?;
            Ok(CoreExpr::If {
                cond: Box::new(condition),
                then: Box::new(then),
            })
        }
    }
}

fn normalize_condition(cond: &Expr, ctx: &mut Ctx<'_>) -> Result<Condition, NormalizeError> {
    match cond {
        Expr::Compare { lhs, op, rhs } => Ok(Condition::Compare {
            lhs: normalize_operand(lhs, ctx)?,
            op: *op,
            rhs: normalize_operand(rhs, ctx)?,
        }),
        other => Ok(Condition::Exists(normalize_value(other, ctx)?)),
    }
}

fn normalize_operand(e: &Expr, ctx: &mut Ctx<'_>) -> Result<Operand, NormalizeError> {
    match e {
        Expr::Literal(l) => Ok(Operand::Literal(l.clone())),
        other => Ok(Operand::Nodes(normalize_value(other, ctx)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn q1_normalizes_to_paper_core_form() {
        let q1 = parse(r#"doc("auction.xml")/descendant::open_auction[bidder]"#).unwrap();
        let core = normalize(&q1, None).unwrap();
        let rendered = core.render();
        // Paper, Section II-D: for $x in fs:ddo(doc(...)/descendant::open_auction)
        //   return if (fn:boolean(fs:ddo($x/child::bidder))) then $x else ()
        assert!(rendered
            .starts_with("for $#p1 in fs:ddo(doc(\"auction.xml\")/descendant::open_auction)"));
        assert!(rendered.contains("if (fn:boolean(fs:ddo($#p1/child::bidder)))"));
        assert!(rendered.ends_with("then $#p1 else ()"));
    }

    #[test]
    fn predicate_conjunction_becomes_nested_ifs() {
        let q = parse(r#"/dblp/phdthesis[year < "1994" and author and title]"#).unwrap();
        let core = normalize(&q, Some("dblp.xml")).unwrap();
        let rendered = core.render();
        assert_eq!(rendered.matches("if (fn:boolean(").count(), 3);
        assert!(rendered.contains("< \"1994\""));
        assert!(rendered.contains("doc(\"dblp.xml\")"));
    }

    #[test]
    fn absolute_path_without_default_doc_fails() {
        let q = parse("/site/people").unwrap();
        let err = normalize(&q, None).unwrap_err();
        assert!(err.message.contains("context document"));
    }

    #[test]
    fn or_is_rejected() {
        let q = parse("$x[a or b]").unwrap();
        assert!(normalize(&q, None).is_err());
    }

    #[test]
    fn where_desugaring_flows_through() {
        let q =
            parse(r#"for $i in doc("d.xml")//item where $i/@id = "i0" return $i/name"#).unwrap();
        let core = normalize(&q, None).unwrap();
        let rendered = core.render();
        assert!(rendered.contains("if (fn:boolean(fs:ddo($i/attribute::id) = \"i0\"))"));
        assert!(rendered.contains("return if"));
    }

    #[test]
    fn bare_literal_is_rejected_outside_comparisons() {
        let q = parse("for $x in doc(\"d\")//a return 42").unwrap();
        assert!(normalize(&q, None).is_err());
    }

    #[test]
    fn sequences_are_preserved() {
        let q = parse("for $t in doc(\"d\")//x return ($t/a, $t/b)").unwrap();
        let core = normalize(&q, None).unwrap();
        match core {
            CoreExpr::For { body, .. } => match *body {
                CoreExpr::Seq(items) => assert_eq!(items.len(), 2),
                other => panic!("expected seq, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn steps_in_value_position_get_ddo() {
        let q = parse("doc(\"d\")/a/b").unwrap();
        let core = normalize(&q, None).unwrap();
        assert!(matches!(core, CoreExpr::Ddo(_)));
        // Exactly one ddo is introduced for the whole chain.
        assert_eq!(core.render().matches("fs:ddo").count(), 1);
    }
}
