//! XQuery front end: lexer, parser, X Query Core normalization and a
//! reference interpreter.
//!
//! The supported language is the data-bound "workhorse" fragment of Fig. 1
//! (nested `for` loops over node sequences, the full axis feature, kind and
//! name tests, conditionals with empty `else`) extended with `let`, `where`,
//! path predicates, general comparisons between paths, `and`, and comma
//! sequences — the extensions the paper itself uses for Q2 and the
//! TurboXPath query set (Table VIII).

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod normalize;
pub mod parser;

pub use ast::{Expr, GenCmp, Literal};
pub use interp::{evaluate as interpret, InterpError};
pub use lexer::{tokenize, ParseError, Token};
pub use normalize::{normalize, Condition, CoreExpr, NormalizeError, Operand};
pub use parser::parse;

/// Parse and normalize a query in one call.
pub fn parse_and_normalize(
    query: &str,
    default_doc: Option<&str>,
) -> Result<CoreExpr, Box<dyn std::error::Error>> {
    let ast = parse(query)?;
    Ok(normalize(&ast, default_doc)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_normalize_roundtrip() {
        let core = parse_and_normalize("//a[b]", Some("d.xml")).unwrap();
        assert!(core.render().contains("doc(\"d.xml\")"));
    }

    #[test]
    fn parse_and_normalize_propagates_errors() {
        assert!(parse_and_normalize("for $x in", None).is_err());
        assert!(parse_and_normalize("/a", None).is_err());
    }
}
