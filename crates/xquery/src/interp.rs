//! Reference interpreter for X Query Core.
//!
//! A straightforward environment-passing, node-at-a-time evaluator over the
//! tabular encoding.  It exists purely as the *correctness oracle*: the
//! loop-lifted algebra plans (stacked or isolated) and the navigational
//! pureXML-style baseline must all produce the same node sequences as this
//! interpreter.

use crate::ast::{GenCmp, Literal};
use crate::normalize::{Condition, CoreExpr, Operand};
use std::collections::HashMap;
use std::fmt;
use xqjg_xml::axis::step;
use xqjg_xml::encoding::parse_decimal;
use xqjg_xml::{DocTable, Pre};

/// Interpreter error (unbound variables, unknown documents, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description.
    pub message: String,
}

impl InterpError {
    fn new(message: impl Into<String>) -> Self {
        InterpError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// Evaluate a Core expression against the documents loaded in `doc`,
/// returning the resulting node sequence (as `pre` ranks, in sequence
/// order).
pub fn evaluate(expr: &CoreExpr, doc: &DocTable) -> Result<Vec<Pre>, InterpError> {
    let mut env: HashMap<String, Vec<Pre>> = HashMap::new();
    eval(expr, doc, &mut env)
}

/// Evaluate with a pre-populated variable environment (used by the
/// navigational pureXML-style baseline to bind its segment roots).
pub fn evaluate_with_env(
    expr: &CoreExpr,
    doc: &DocTable,
    env: &mut HashMap<String, Vec<Pre>>,
) -> Result<Vec<Pre>, InterpError> {
    eval(expr, doc, env)
}

fn eval(
    expr: &CoreExpr,
    doc: &DocTable,
    env: &mut HashMap<String, Vec<Pre>>,
) -> Result<Vec<Pre>, InterpError> {
    match expr {
        CoreExpr::Empty => Ok(vec![]),
        CoreExpr::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| InterpError::new(format!("unbound variable ${v}"))),
        CoreExpr::Doc(uri) => {
            let root = doc
                .document_root(uri)
                .ok_or_else(|| InterpError::new(format!("unknown document {uri:?}")))?;
            Ok(vec![root])
        }
        CoreExpr::Ddo(e) => {
            let mut nodes = eval(e, doc, env)?;
            nodes.sort();
            nodes.dedup();
            Ok(nodes)
        }
        CoreExpr::Step { input, axis, test } => {
            let ctx = eval(input, doc, env)?;
            Ok(step(doc, &ctx, *axis, test))
        }
        CoreExpr::For { var, seq, body } => {
            let items = eval(seq, doc, env)?;
            let mut out = Vec::new();
            let shadowed = env.get(var).cloned();
            for item in items {
                env.insert(var.clone(), vec![item]);
                out.extend(eval(body, doc, env)?);
            }
            restore(env, var, shadowed);
            Ok(out)
        }
        CoreExpr::Let { var, value, body } => {
            let bound = eval(value, doc, env)?;
            let shadowed = env.insert(var.clone(), bound);
            let result = eval(body, doc, env)?;
            restore(env, var, shadowed);
            result_ok(result)
        }
        CoreExpr::If { cond, then } => {
            if eval_condition(cond, doc, env)? {
                eval(then, doc, env)
            } else {
                Ok(vec![])
            }
        }
        CoreExpr::Seq(items) => {
            let mut out = Vec::new();
            for item in items {
                out.extend(eval(item, doc, env)?);
            }
            Ok(out)
        }
    }
}

fn result_ok(v: Vec<Pre>) -> Result<Vec<Pre>, InterpError> {
    Ok(v)
}

fn restore(env: &mut HashMap<String, Vec<Pre>>, var: &str, shadowed: Option<Vec<Pre>>) {
    match shadowed {
        Some(old) => {
            env.insert(var.to_string(), old);
        }
        None => {
            env.remove(var);
        }
    }
}

/// Evaluate `fn:boolean(cond)`.
pub fn eval_condition(
    cond: &Condition,
    doc: &DocTable,
    env: &mut HashMap<String, Vec<Pre>>,
) -> Result<bool, InterpError> {
    match cond {
        Condition::Exists(e) => Ok(!eval(e, doc, env)?.is_empty()),
        Condition::Compare { lhs, op, rhs } => {
            let left = atomize(lhs, doc, env)?;
            let right = atomize(rhs, doc, env)?;
            // General comparisons are existentially quantified.
            for l in &left {
                for r in &right {
                    if compare_atoms(l, *op, r) {
                        return Ok(true);
                    }
                }
            }
            Ok(false)
        }
    }
}

/// An atomized item: the untyped string value plus its decimal cast, when
/// that cast succeeds (mirrors the `value` / `data` column pair).
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Untyped string value.
    pub string: String,
    /// Decimal value, when the string parses as `xs:decimal`.
    pub decimal: Option<f64>,
    /// Whether the atom came from a literal that was written as a number.
    pub numeric_literal: bool,
}

fn atomize(
    op: &Operand,
    doc: &DocTable,
    env: &mut HashMap<String, Vec<Pre>>,
) -> Result<Vec<Atom>, InterpError> {
    match op {
        Operand::Literal(Literal::String(s)) => Ok(vec![Atom {
            string: s.clone(),
            decimal: parse_decimal(s),
            numeric_literal: false,
        }]),
        Operand::Literal(Literal::Integer(i)) => Ok(vec![Atom {
            string: i.to_string(),
            decimal: Some(*i as f64),
            numeric_literal: true,
        }]),
        Operand::Literal(Literal::Decimal(d)) => Ok(vec![Atom {
            string: d.to_string(),
            decimal: Some(*d),
            numeric_literal: true,
        }]),
        Operand::Nodes(e) => {
            let nodes = eval(e, doc, env)?;
            Ok(nodes
                .into_iter()
                .map(|p| {
                    let s = doc.string_value(p);
                    let d = doc.decimal_value(p);
                    Atom {
                        string: s,
                        decimal: d,
                        numeric_literal: false,
                    }
                })
                .collect())
        }
    }
}

/// Compare two atoms under the untyped-data rules the relational plan uses:
/// if either side is a numeric literal (or both have decimal values and one
/// side was written as a number), compare numerically via the `data` image;
/// otherwise compare the untyped string values.
pub fn compare_atoms(l: &Atom, op: GenCmp, r: &Atom) -> bool {
    let numeric = l.numeric_literal || r.numeric_literal;
    if numeric {
        match (l.decimal, r.decimal) {
            (Some(a), Some(b)) => op.eval(a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)),
            _ => false,
        }
    } else {
        op.eval(l.string.cmp(&r.string))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parser::parse;
    use xqjg_xml::parse_document;

    fn auction_doc() -> DocTable {
        let xml = r#"<site>
            <open_auctions>
              <open_auction id="a1"><initial>10</initial><bidder><increase>5</increase></bidder></open_auction>
              <open_auction id="a2"><initial>20</initial></open_auction>
              <open_auction id="a3"><initial>7</initial><bidder><increase>1</increase></bidder><bidder><increase>2</increase></bidder></open_auction>
            </open_auctions>
            <closed_auctions>
              <closed_auction><price>600</price><itemref item="i1"/></closed_auction>
              <closed_auction><price>100</price><itemref item="i2"/></closed_auction>
            </closed_auctions>
            <items>
              <item id="i1"><name>bike</name></item>
              <item id="i2"><name>car</name></item>
            </items>
          </site>"#;
        DocTable::from_document("auction.xml", &parse_document(xml).unwrap())
    }

    fn run(q: &str, doc: &DocTable) -> Vec<Pre> {
        let ast = parse(q).unwrap();
        let core = normalize(&ast, Some("auction.xml")).unwrap();
        evaluate(&core, doc).unwrap()
    }

    #[test]
    fn q1_like_filter() {
        let doc = auction_doc();
        let result = run(
            r#"doc("auction.xml")/descendant::open_auction[bidder]"#,
            &doc,
        );
        // a1 and a3 have bidder children.
        assert_eq!(result.len(), 2);
        for p in &result {
            assert_eq!(doc.row(*p).name.as_deref(), Some("open_auction"));
        }
    }

    #[test]
    fn numeric_comparison_predicate() {
        let doc = auction_doc();
        let expensive = run(r#"//closed_auction[price > 500]"#, &doc);
        assert_eq!(expensive.len(), 1);
        let cheap = run(r#"//closed_auction[price > 5000]"#, &doc);
        assert!(cheap.is_empty());
    }

    #[test]
    fn attribute_value_join() {
        let doc = auction_doc();
        let q = r#"
            for $ca in //closed_auction[price > 500], $i in //item
            where $ca/itemref/@item = $i/@id
            return $i/name
        "#;
        let result = run(q, &doc);
        assert_eq!(result.len(), 1);
        assert_eq!(doc.string_value(result[0]), "bike");
    }

    #[test]
    fn string_comparison_on_attribute() {
        let doc = auction_doc();
        let result = run(r#"//open_auction[@id = "a2"]/initial"#, &doc);
        assert_eq!(result.len(), 1);
        assert_eq!(doc.string_value(result[0]), "20");
    }

    #[test]
    fn for_loop_preserves_iteration_order_and_duplicates() {
        let doc = auction_doc();
        // Each open_auction contributes its bidders; a3 has two.
        let result = run(
            r#"for $a in //open_auction return $a/bidder/increase"#,
            &doc,
        );
        assert_eq!(result.len(), 3);
        // Document order within each iteration, iterations in sequence order.
        let values: Vec<String> = result.iter().map(|p| doc.string_value(*p)).collect();
        assert_eq!(values, vec!["5", "1", "2"]);
    }

    #[test]
    fn let_binding_and_sequences() {
        let doc = auction_doc();
        let q = r#"
            let $as := //open_auction[bidder]
            for $a in $as return ($a/initial, $a/bidder/increase)
        "#;
        let result = run(q, &doc);
        // a1: initial + 1 increase; a3: initial + 2 increases => 5 nodes.
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn text_step() {
        let doc = auction_doc();
        let result = run(r#"//item/name/text()"#, &doc);
        assert_eq!(result.len(), 2);
        let values: Vec<String> = result.iter().map(|p| doc.string_value(*p)).collect();
        assert_eq!(values, vec!["bike", "car"]);
    }

    #[test]
    fn unknown_document_and_unbound_variable_error() {
        let doc = auction_doc();
        let ast = parse(r#"doc("missing.xml")/a"#).unwrap();
        let core = normalize(&ast, None).unwrap();
        assert!(evaluate(&core, &doc).is_err());
        let core2 = CoreExpr::Var("nope".to_string());
        assert!(evaluate(&core2, &doc).is_err());
    }

    #[test]
    fn string_vs_numeric_comparison_rules() {
        let a = Atom {
            string: "100".into(),
            decimal: Some(100.0),
            numeric_literal: false,
        };
        let lit500 = Atom {
            string: "500".into(),
            decimal: Some(500.0),
            numeric_literal: true,
        };
        // Numeric literal forces numeric comparison: 100 < 500.
        assert!(compare_atoms(&a, GenCmp::Lt, &lit500));
        // Pure string comparison: "100" < "500" lexicographically too...
        let lit_str = Atom {
            string: "500".into(),
            decimal: Some(500.0),
            numeric_literal: false,
        };
        assert!(compare_atoms(&a, GenCmp::Lt, &lit_str));
        // ...but "9" > "10" as strings, numeric says otherwise.
        let nine = Atom {
            string: "9".into(),
            decimal: Some(9.0),
            numeric_literal: false,
        };
        let ten_str = Atom {
            string: "10".into(),
            decimal: Some(10.0),
            numeric_literal: false,
        };
        assert!(compare_atoms(&nine, GenCmp::Gt, &ten_str));
        let ten_num = Atom {
            string: "10".into(),
            decimal: Some(10.0),
            numeric_literal: true,
        };
        assert!(compare_atoms(&nine, GenCmp::Lt, &ten_num));
    }
}
