//! Tokenizer for the XQuery fragment.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A QName / keyword candidate.
    Name(String),
    /// `$name`
    Variable(String),
    /// A string literal (quotes stripped, entities not interpreted).
    StringLit(String),
    /// An integer literal.
    IntegerLit(i64),
    /// A decimal literal.
    DecimalLit(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `@`
    At,
    /// `::`
    DoubleColon,
    /// `:=`
    Assign,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Name(n) => write!(f, "{n}"),
            Token::Variable(v) => write!(f, "${v}"),
            Token::StringLit(s) => write!(f, "\"{s}\""),
            Token::IntegerLit(i) => write!(f, "{i}"),
            Token::DecimalLit(d) => write!(f, "{d}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Slash => write!(f, "/"),
            Token::DoubleSlash => write!(f, "//"),
            Token::At => write!(f, "@"),
            Token::DoubleColon => write!(f, "::"),
            Token::Assign => write!(f, ":="),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexical or syntactic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset (lexer) or token index (parser) of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl ParseError {
    /// Create an error.
    pub fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XQuery parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Tokenize an XQuery string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        match c {
            c if c.is_whitespace() => pos += 1,
            '(' => {
                // XQuery comments: (: ... :)
                if bytes.get(pos + 1) == Some(&b':') {
                    let mut depth = 1;
                    let mut i = pos + 2;
                    while i + 1 < bytes.len() && depth > 0 {
                        if bytes[i] == b'(' && bytes[i + 1] == b':' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b':' && bytes[i + 1] == b')' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(ParseError::new(pos, "unterminated comment"));
                    }
                    pos = i;
                } else {
                    out.push(Token::LParen);
                    pos += 1;
                }
            }
            ')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                pos += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                pos += 1;
            }
            ',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            '@' => {
                out.push(Token::At);
                pos += 1;
            }
            '*' => {
                out.push(Token::Star);
                pos += 1;
            }
            '/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    out.push(Token::DoubleSlash);
                    pos += 2;
                } else {
                    out.push(Token::Slash);
                    pos += 1;
                }
            }
            ':' => {
                if bytes.get(pos + 1) == Some(&b':') {
                    out.push(Token::DoubleColon);
                    pos += 2;
                } else if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Assign);
                    pos += 2;
                } else {
                    return Err(ParseError::new(pos, "unexpected ':'"));
                }
            }
            '=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            '!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(ParseError::new(pos, "unexpected '!'"));
                }
            }
            '<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    pos += 2;
                } else {
                    out.push(Token::Lt);
                    pos += 1;
                }
            }
            '>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            '$' => {
                let start = pos + 1;
                let end = scan_name(bytes, start);
                if end == start {
                    return Err(ParseError::new(pos, "expected variable name after '$'"));
                }
                out.push(Token::Variable(input[start..end].to_string()));
                pos = end;
            }
            '"' | '\'' => {
                let quote = c;
                let start = pos + 1;
                let mut i = start;
                while i < bytes.len() && bytes[i] as char != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError::new(pos, "unterminated string literal"));
                }
                out.push(Token::StringLit(input[start..i].to_string()));
                pos = i + 1;
            }
            '.' => {
                // Distinguish "." (context item) from a decimal like ".5".
                if bytes
                    .get(pos + 1)
                    .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    let (tok, next) = scan_number(input, pos)?;
                    out.push(tok);
                    pos = next;
                } else {
                    out.push(Token::Dot);
                    pos += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = scan_number(input, pos)?;
                out.push(tok);
                pos = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let end = scan_name(bytes, pos);
                out.push(Token::Name(input[pos..end].to_string()));
                pos = end;
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn scan_name(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
            // A name must not swallow a trailing ".." or "." followed by
            // non-name characters; names in our workloads never contain '.'
            // so simply stop at '.' to keep "person0.name" unambiguous.
            if c == '.' {
                break;
            }
            i += 1;
        } else {
            break;
        }
    }
    i
}

fn scan_number(input: &str, start: usize) -> Result<(Token, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut seen_dot = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !seen_dot {
            seen_dot = true;
            i += 1;
        } else {
            break;
        }
    }
    let text = &input[start..i];
    if seen_dot {
        text.parse::<f64>()
            .map(|d| (Token::DecimalLit(d), i))
            .map_err(|_| ParseError::new(start, format!("bad decimal literal {text:?}")))
    } else {
        text.parse::<i64>()
            .map(|n| (Token::IntegerLit(n), i))
            .map_err(|_| ParseError::new(start, format!("bad integer literal {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_q1() {
        let toks = tokenize(r#"doc("auction.xml")/descendant::open_auction[bidder]"#).unwrap();
        assert!(toks.contains(&Token::Name("doc".into())));
        assert!(toks.contains(&Token::StringLit("auction.xml".into())));
        assert!(toks.contains(&Token::DoubleColon));
        assert!(toks.contains(&Token::LBracket));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn tokenizes_variables_and_assign() {
        let toks = tokenize("let $a := doc(\"x\") return $a").unwrap();
        assert!(toks.contains(&Token::Variable("a".into())));
        assert!(toks.contains(&Token::Assign));
    }

    #[test]
    fn tokenizes_comparisons_and_numbers() {
        let toks = tokenize("price > 500 and year <= 19.5").unwrap();
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::IntegerLit(500)));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::DecimalLit(19.5)));
    }

    #[test]
    fn tokenizes_double_slash_and_at() {
        let toks = tokenize("$a//item/@id").unwrap();
        assert!(toks.contains(&Token::DoubleSlash));
        assert!(toks.contains(&Token::At));
    }

    #[test]
    fn skips_comments() {
        let toks = tokenize("(: a (: nested :) comment :) $x").unwrap();
        assert_eq!(toks, vec![Token::Variable("x".into()), Token::Eof]);
    }

    #[test]
    fn reports_errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("(: open").is_err());
    }

    #[test]
    fn dot_vs_decimal() {
        let toks = tokenize(". .5").unwrap();
        assert_eq!(toks[0], Token::Dot);
        assert_eq!(toks[1], Token::DecimalLit(0.5));
    }
}
