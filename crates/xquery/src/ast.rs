//! Abstract syntax of the supported XQuery fragment.
//!
//! The grammar is the fragment of Fig. 1 extended — as the paper itself does
//! for Query Q2 and the TurboXPath query set of Table VIII — with `let`
//! bindings, `where` clauses (desugared by the parser), path predicates
//! `e[p]`, general comparisons between two path expressions, `and`/`or`, and
//! comma sequences in `return` clauses.

use xqjg_xml::{Axis, NodeTest};

/// Literals appearing in general comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A string literal.
    String(String),
    /// An integer literal.
    Integer(i64),
    /// A decimal literal.
    Decimal(f64),
}

impl Literal {
    /// The literal as an untyped string (used for string-valued comparison).
    pub fn as_string(&self) -> String {
        match self {
            Literal::String(s) => s.clone(),
            Literal::Integer(i) => i.to_string(),
            Literal::Decimal(d) => d.to_string(),
        }
    }

    /// The literal as a decimal, when it is numeric.
    pub fn as_decimal(&self) -> Option<f64> {
        match self {
            Literal::String(_) => None,
            Literal::Integer(i) => Some(*i as f64),
            Literal::Decimal(d) => Some(*d),
        }
    }
}

/// General comparison operators (`GeneralComp` in Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenCmp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl GenCmp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            GenCmp::Eq => "=",
            GenCmp::Ne => "!=",
            GenCmp::Lt => "<",
            GenCmp::Le => "<=",
            GenCmp::Gt => ">",
            GenCmp::Ge => ">=",
        }
    }

    /// Apply the comparison to an ordering.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            GenCmp::Eq => ord == Equal,
            GenCmp::Ne => ord != Equal,
            GenCmp::Lt => ord == Less,
            GenCmp::Le => ord != Greater,
            GenCmp::Gt => ord == Greater,
            GenCmp::Ge => ord != Less,
        }
    }
}

/// A surface-syntax XQuery expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `for $var in seq return body`
    For {
        /// Bound variable (without the `$`).
        var: String,
        /// The iterated sequence.
        seq: Box<Expr>,
        /// The loop body.
        body: Box<Expr>,
    },
    /// `let $var := value return body`
    Let {
        /// Bound variable (without the `$`).
        var: String,
        /// The bound expression.
        value: Box<Expr>,
        /// The in-scope body.
        body: Box<Expr>,
    },
    /// `if (cond) then then_branch else else_branch`
    If {
        /// Condition (its effective boolean value is taken).
        cond: Box<Expr>,
        /// The `then` branch.
        then: Box<Expr>,
        /// The `else` branch (the fragment requires `()`).
        else_: Box<Expr>,
    },
    /// `$var`
    Var(String),
    /// `doc("uri")`
    Doc(String),
    /// `/` — the root of the context document.
    Root,
    /// `.` — the context item.
    ContextItem,
    /// `input / axis::test`
    Step {
        /// The step's context expression.
        input: Box<Expr>,
        /// The axis.
        axis: Axis,
        /// The node test.
        test: NodeTest,
    },
    /// `input[pred]`
    Filter {
        /// The filtered expression.
        input: Box<Expr>,
        /// The predicate (relative paths are rooted at the context item).
        pred: Box<Expr>,
    },
    /// `lhs op rhs` — general comparison.
    Compare {
        /// Left operand.
        lhs: Box<Expr>,
        /// Operator.
        op: GenCmp,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `a and b`
    And(Box<Expr>, Box<Expr>),
    /// `a or b`
    Or(Box<Expr>, Box<Expr>),
    /// A literal.
    Literal(Literal),
    /// `e1, e2, …` — a comma sequence.
    Sequence(Vec<Expr>),
    /// `()` — the empty sequence.
    Empty,
}

impl Expr {
    /// Convenience constructor for a child step.
    pub fn child(self, name: &str) -> Expr {
        Expr::Step {
            input: Box::new(self),
            axis: Axis::Child,
            test: NodeTest::name(name),
        }
    }

    /// Convenience constructor for a descendant step.
    pub fn descendant(self, name: &str) -> Expr {
        Expr::Step {
            input: Box::new(self),
            axis: Axis::Descendant,
            test: NodeTest::name(name),
        }
    }

    /// Convenience constructor for an attribute step.
    pub fn attribute(self, name: &str) -> Expr {
        Expr::Step {
            input: Box::new(self),
            axis: Axis::Attribute,
            test: NodeTest::name(name),
        }
    }

    /// Free variables of the expression (variables used but not bound).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.free_vars_rec(&mut Vec::new(), &mut out);
        out
    }

    fn free_vars_rec(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::For { var, seq, body }
            | Expr::Let {
                var,
                value: seq,
                body,
            } => {
                seq.free_vars_rec(bound, out);
                bound.push(var.clone());
                body.free_vars_rec(bound, out);
                bound.pop();
            }
            Expr::If { cond, then, else_ } => {
                cond.free_vars_rec(bound, out);
                then.free_vars_rec(bound, out);
                else_.free_vars_rec(bound, out);
            }
            Expr::Step { input, .. } => input.free_vars_rec(bound, out),
            Expr::Filter { input, pred } => {
                input.free_vars_rec(bound, out);
                pred.free_vars_rec(bound, out);
            }
            Expr::Compare { lhs, rhs, .. } => {
                lhs.free_vars_rec(bound, out);
                rhs.free_vars_rec(bound, out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.free_vars_rec(bound, out);
                b.free_vars_rec(bound, out);
            }
            Expr::Sequence(es) => {
                for e in es {
                    e.free_vars_rec(bound, out);
                }
            }
            Expr::Doc(_) | Expr::Root | Expr::ContextItem | Expr::Literal(_) | Expr::Empty => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_views() {
        assert_eq!(Literal::Integer(5).as_string(), "5");
        assert_eq!(Literal::Integer(5).as_decimal(), Some(5.0));
        assert_eq!(Literal::String("x".into()).as_decimal(), None);
        assert_eq!(Literal::Decimal(1.5).as_string(), "1.5");
    }

    #[test]
    fn gencmp_eval() {
        use std::cmp::Ordering::*;
        assert!(GenCmp::Le.eval(Equal));
        assert!(GenCmp::Gt.eval(Greater));
        assert!(!GenCmp::Eq.eval(Less));
        assert_eq!(GenCmp::Ne.symbol(), "!=");
    }

    #[test]
    fn free_variables() {
        // for $x in $a//b return $x/c   — free: $a
        let e = Expr::For {
            var: "x".into(),
            seq: Box::new(Expr::Var("a".into()).descendant("b")),
            body: Box::new(Expr::Var("x".into()).child("c")),
        };
        assert_eq!(e.free_vars(), vec!["a".to_string()]);
    }

    #[test]
    fn builder_helpers() {
        let e = Expr::Doc("d.xml".into()).descendant("item").attribute("id");
        match e {
            Expr::Step { axis, .. } => assert_eq!(axis, Axis::Attribute),
            _ => panic!("expected step"),
        }
    }
}
