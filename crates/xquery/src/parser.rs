//! Recursive-descent parser for the XQuery fragment.
//!
//! Produces the surface AST of [`crate::ast`].  Path abbreviations are
//! desugared during parsing: `//n` becomes a `descendant::n` step, `@n`
//! becomes `attribute::n`, a leading `/` roots the path at [`Expr::Root`],
//! and a relative path inside a predicate is rooted at
//! [`Expr::ContextItem`].  `where` clauses are desugared into `if` wrappers
//! around the `return` body (the X Query Core treatment).

use crate::ast::{Expr, GenCmp, Literal};
use crate::lexer::{tokenize, ParseError, Token};
use xqjg_xml::{Axis, NodeTest};

/// Parse a complete XQuery expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_expr()?;
    p.expect(Token::Eof)?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn expect(&mut self, token: Token) -> Result<(), ParseError> {
        if *self.peek() == token {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {token}, found {}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, message)
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Name(n) if n == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}', found {}", self.peek())))
        }
    }

    // Expr := ExprSingle ("," ExprSingle)*
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_expr_single()?;
        if *self.peek() != Token::Comma {
            return Ok(first);
        }
        let mut items = vec![first];
        while *self.peek() == Token::Comma {
            self.advance();
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn parse_expr_single(&mut self) -> Result<Expr, ParseError> {
        if self.at_keyword("for") || self.at_keyword("let") {
            return self.parse_flwor();
        }
        if self.at_keyword("if") && *self.peek2() == Token::LParen {
            return self.parse_if();
        }
        self.parse_or_expr()
    }

    // FLWOR := (ForClause | LetClause)+ ("where" ExprSingle)? "return" ExprSingle
    fn parse_flwor(&mut self) -> Result<Expr, ParseError> {
        // Each binding is (is_let, var, expr); bindings nest left-to-right.
        let mut bindings: Vec<(bool, String, Expr)> = Vec::new();
        loop {
            if self.eat_keyword("for") {
                loop {
                    let var = self.parse_variable()?;
                    self.expect_keyword("in")?;
                    let seq = self.parse_expr_single()?;
                    bindings.push((false, var, seq));
                    if *self.peek() == Token::Comma && matches!(self.peek2(), Token::Variable(_)) {
                        self.advance();
                        continue;
                    }
                    break;
                }
            } else if self.eat_keyword("let") {
                loop {
                    let var = self.parse_variable()?;
                    self.expect(Token::Assign)?;
                    let value = self.parse_expr_single()?;
                    bindings.push((true, var, value));
                    if *self.peek() == Token::Comma && matches!(self.peek2(), Token::Variable(_)) {
                        self.advance();
                        continue;
                    }
                    break;
                }
            } else {
                break;
            }
        }
        if bindings.is_empty() {
            return Err(self.err("FLWOR expression without for/let clause"));
        }
        let where_cond = if self.eat_keyword("where") {
            Some(self.parse_expr_single()?)
        } else {
            None
        };
        self.expect_keyword("return")?;
        let mut body = self.parse_expr_single()?;
        // where c return e  ≡  return if (c) then e else ()
        if let Some(cond) = where_cond {
            body = Expr::If {
                cond: Box::new(cond),
                then: Box::new(body),
                else_: Box::new(Expr::Empty),
            };
        }
        // Fold bindings from the innermost outwards.
        for (is_let, var, expr) in bindings.into_iter().rev() {
            body = if is_let {
                Expr::Let {
                    var,
                    value: Box::new(expr),
                    body: Box::new(body),
                }
            } else {
                Expr::For {
                    var,
                    seq: Box::new(expr),
                    body: Box::new(body),
                }
            };
        }
        Ok(body)
    }

    fn parse_if(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword("if")?;
        self.expect(Token::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(Token::RParen)?;
        self.expect_keyword("then")?;
        let then = self.parse_expr_single()?;
        self.expect_keyword("else")?;
        let else_ = self.parse_expr_single()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            else_: Box::new(else_),
        })
    }

    fn parse_variable(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Token::Variable(v) => Ok(v),
            other => Err(self.err(format!("expected variable, found {other}"))),
        }
    }

    fn parse_or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and_expr()?;
        while self.at_keyword("or") {
            self.advance();
            let rhs = self.parse_and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_comparison_expr()?;
        while self.at_keyword("and") {
            self.advance();
            let rhs = self.parse_comparison_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_comparison_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_path_expr()?;
        let op = match self.peek() {
            Token::Eq => GenCmp::Eq,
            Token::Ne => GenCmp::Ne,
            Token::Lt => GenCmp::Lt,
            Token::Le => GenCmp::Le,
            Token::Gt => GenCmp::Gt,
            Token::Ge => GenCmp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.parse_path_expr()?;
        Ok(Expr::Compare {
            lhs: Box::new(lhs),
            op,
            rhs: Box::new(rhs),
        })
    }

    // PathExpr := ("/" RelativePath?) | ("//" RelativePath) | PrimaryPath
    fn parse_path_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Slash => {
                self.advance();
                if self.starts_step() {
                    self.parse_relative_path(Expr::Root, false)
                } else {
                    Ok(Expr::Root)
                }
            }
            Token::DoubleSlash => {
                self.advance();
                self.parse_relative_path(Expr::Root, true)
            }
            _ => {
                let primary = self.parse_primary()?;
                self.parse_path_continuation(primary)
            }
        }
    }

    fn parse_path_continuation(&mut self, mut current: Expr) -> Result<Expr, ParseError> {
        loop {
            match self.peek() {
                Token::Slash => {
                    self.advance();
                    current = self.parse_one_step(current, false)?;
                }
                Token::DoubleSlash => {
                    self.advance();
                    current = self.parse_one_step(current, true)?;
                }
                _ => return Ok(current),
            }
        }
    }

    fn parse_relative_path(&mut self, root: Expr, descendant: bool) -> Result<Expr, ParseError> {
        let first = self.parse_one_step(root, descendant)?;
        self.parse_path_continuation(first)
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek(),
            Token::Name(_) | Token::At | Token::Star | Token::Dot
        )
    }

    /// Parse one step (axis + node test + predicates) applied to `input`.
    /// `via_double_slash` signals that the step was reached via `//`.
    fn parse_one_step(&mut self, input: Expr, via_double_slash: bool) -> Result<Expr, ParseError> {
        let (axis, test) = self.parse_axis_and_test()?;
        let base = if via_double_slash {
            if axis == Axis::Child {
                // `e//n` with the default child axis is exactly
                // `e/descendant::n` for the predicate-free steps we support.
                Expr::Step {
                    input: Box::new(input),
                    axis: Axis::Descendant,
                    test,
                }
            } else {
                let dos = Expr::Step {
                    input: Box::new(input),
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyKind,
                };
                Expr::Step {
                    input: Box::new(dos),
                    axis,
                    test,
                }
            }
        } else {
            Expr::Step {
                input: Box::new(input),
                axis,
                test,
            }
        };
        self.parse_predicates(base)
    }

    fn parse_axis_and_test(&mut self) -> Result<(Axis, NodeTest), ParseError> {
        match self.peek().clone() {
            Token::At => {
                self.advance();
                match self.advance() {
                    Token::Name(n) => Ok((Axis::Attribute, NodeTest::name(n))),
                    Token::Star => Ok((Axis::Attribute, NodeTest::any_name())),
                    other => Err(self.err(format!("expected attribute name, found {other}"))),
                }
            }
            Token::Star => {
                self.advance();
                Ok((Axis::Child, NodeTest::any_name()))
            }
            Token::Dot => {
                self.advance();
                Ok((Axis::SelfAxis, NodeTest::AnyKind))
            }
            Token::Name(name) => {
                // Explicit axis?
                if *self.peek2() == Token::DoubleColon {
                    let axis = Axis::from_name(&name)
                        .ok_or_else(|| self.err(format!("unknown axis {name:?}")))?;
                    self.advance();
                    self.advance();
                    let test = self.parse_node_test(axis)?;
                    Ok((axis, test))
                } else {
                    let test = self.parse_node_test(Axis::Child)?;
                    Ok((Axis::Child, test))
                }
            }
            other => Err(self.err(format!("expected a location step, found {other}"))),
        }
    }

    fn parse_node_test(&mut self, axis: Axis) -> Result<NodeTest, ParseError> {
        match self.advance() {
            Token::Star => Ok(NodeTest::any_name()),
            Token::At => match self.advance() {
                Token::Name(n) => Ok(NodeTest::Attribute(Some(n))),
                Token::Star => Ok(NodeTest::Attribute(None)),
                other => Err(self.err(format!("expected attribute name, found {other}"))),
            },
            Token::Name(n) => {
                if *self.peek() == Token::LParen {
                    // Kind test.
                    self.advance();
                    self.expect(Token::RParen)?;
                    match n.as_str() {
                        "text" => Ok(NodeTest::Text),
                        "node" => Ok(NodeTest::AnyKind),
                        "comment" => Ok(NodeTest::Comment),
                        "processing-instruction" => Ok(NodeTest::Pi),
                        "element" => Ok(NodeTest::Element(None)),
                        "attribute" => Ok(NodeTest::Attribute(None)),
                        "document-node" => Ok(NodeTest::DocumentNode),
                        other => Err(self.err(format!("unknown kind test {other}()"))),
                    }
                } else {
                    let _ = axis;
                    Ok(NodeTest::name(n))
                }
            }
            other => Err(self.err(format!("expected a node test, found {other}"))),
        }
    }

    fn parse_predicates(&mut self, mut input: Expr) -> Result<Expr, ParseError> {
        while *self.peek() == Token::LBracket {
            self.advance();
            let pred = self.parse_expr()?;
            self.expect(Token::RBracket)?;
            input = Expr::Filter {
                input: Box::new(input),
                pred: Box::new(pred),
            };
        }
        Ok(input)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Variable(v) => {
                self.advance();
                let var = Expr::Var(v);
                self.parse_predicates(var)
            }
            Token::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            Token::IntegerLit(i) => {
                self.advance();
                Ok(Expr::Literal(Literal::Integer(i)))
            }
            Token::DecimalLit(d) => {
                self.advance();
                Ok(Expr::Literal(Literal::Decimal(d)))
            }
            Token::LParen => {
                self.advance();
                if *self.peek() == Token::RParen {
                    self.advance();
                    return Ok(Expr::Empty);
                }
                let e = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Dot => {
                self.advance();
                let ctx = Expr::ContextItem;
                self.parse_predicates(ctx)
            }
            Token::Name(name) if name == "doc" && *self.peek2() == Token::LParen => {
                self.advance();
                self.advance();
                let uri = match self.advance() {
                    Token::StringLit(s) => s,
                    other => {
                        return Err(
                            self.err(format!("doc() expects a string literal, found {other}"))
                        )
                    }
                };
                self.expect(Token::RParen)?;
                Ok(Expr::Doc(uri))
            }
            Token::Name(name) if name == "data" && *self.peek2() == Token::LParen => {
                // data(e) — atomization is implicit in general comparisons;
                // accept and return the argument unchanged.
                self.advance();
                self.advance();
                let e = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Name(_) | Token::At | Token::Star => {
                // A relative path: rooted at the context item.
                self.parse_one_step(Expr::ContextItem, false)
            }
            other => Err(self.err(format!("unexpected token {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q = parse(r#"doc("auction.xml")/descendant::open_auction[bidder]"#).unwrap();
        match q {
            Expr::Filter { input, pred } => {
                match *input {
                    Expr::Step { axis, ref test, .. } => {
                        assert_eq!(axis, Axis::Descendant);
                        assert_eq!(*test, NodeTest::name("open_auction"));
                    }
                    ref other => panic!("expected step, got {other:?}"),
                }
                match *pred {
                    Expr::Step {
                        axis, ref input, ..
                    } => {
                        assert_eq!(axis, Axis::Child);
                        assert_eq!(**input, Expr::ContextItem);
                    }
                    ref other => panic!("expected relative step predicate, got {other:?}"),
                }
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn parses_q2_shape() {
        let q2 = r#"
            let $a := doc("auction.xml")
            for $ca in $a//closed_auction[price > 500],
                $i in $a//item,
                $c in $a//category
            where $ca/itemref/@item = $i/@id
              and $i/incategory/@category = $c/@id
            return $c/name
        "#;
        let e = parse(q2).unwrap();
        // Outermost binding is the let.
        match e {
            Expr::Let { var, body, .. } => {
                assert_eq!(var, "a");
                // Next: for $ca
                match *body {
                    Expr::For { ref var, .. } => assert_eq!(var, "ca"),
                    ref other => panic!("expected for, got {other:?}"),
                }
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn parses_absolute_and_double_slash_paths() {
        let q3 = parse(r#"/site/people/person[@id = "person0"]/name/text()"#).unwrap();
        // Outermost is the text() step.
        match q3 {
            Expr::Step { axis, test, .. } => {
                assert_eq!(axis, Axis::Child);
                assert_eq!(test, NodeTest::Text);
            }
            other => panic!("expected step, got {other:?}"),
        }
        let q4 = parse("//closed_auction/price/text()").unwrap();
        // Innermost step must be descendant::closed_auction from Root.
        fn innermost(e: &Expr) -> &Expr {
            match e {
                Expr::Step { input, .. } | Expr::Filter { input, .. } => innermost(input),
                other => other,
            }
        }
        assert_eq!(*innermost(&q4), Expr::Root);
        let q4_first = {
            fn first_step(e: &Expr) -> Option<(&Axis, &NodeTest)> {
                match e {
                    Expr::Step { input, axis, test } => first_step(input).or(Some((axis, test))),
                    Expr::Filter { input, .. } => first_step(input),
                    _ => None,
                }
            }
            first_step(&q4).unwrap()
        };
        assert_eq!(*q4_first.0, Axis::Descendant);
    }

    #[test]
    fn parses_predicate_conjunction() {
        let q5 = parse(r#"/dblp/*[@key = "conf/vldb2001" and editor and title]/title"#).unwrap();
        // Find the filter node and check its predicate is an And chain.
        fn find_filter(e: &Expr) -> Option<&Expr> {
            match e {
                Expr::Filter { pred, .. } => Some(pred),
                Expr::Step { input, .. } => find_filter(input),
                _ => None,
            }
        }
        let pred = find_filter(&q5).expect("filter present");
        assert!(matches!(pred, Expr::And(_, _)));
    }

    #[test]
    fn parses_sequence_return() {
        let q6 = parse(
            r#"for $t in /dblp/phdthesis[year < "1994" and author and title]
               return $t/title, $t/author, $t/year"#,
        )
        .unwrap();
        // Comma binds looser than `return`, so this parses as a top-level
        // sequence whose first item is the FLWOR (XQuery's actual grammar);
        // the harness uses parentheses when the whole sequence should be
        // inside the loop.
        assert!(matches!(q6, Expr::Sequence(ref items) if items.len() == 3));
        let q6b = parse(
            r#"for $t in /dblp/phdthesis[year < "1994" and author and title]
               return ($t/title, $t/author, $t/year)"#,
        )
        .unwrap();
        match q6b {
            Expr::For { body, .. } => {
                assert!(matches!(*body, Expr::Sequence(ref i) if i.len() == 3))
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_then_else_empty() {
        let e = parse("if ($x/bidder) then $x else ()").unwrap();
        match e {
            Expr::If { else_, .. } => assert_eq!(*else_, Expr::Empty),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_explicit_axes() {
        let e = parse("$x/ancestor::open_auction/parent::node()").unwrap();
        match e {
            Expr::Step { axis, test, input } => {
                assert_eq!(axis, Axis::Parent);
                assert_eq!(test, NodeTest::AnyKind);
                match *input {
                    Expr::Step { axis, .. } => assert_eq!(axis, Axis::Ancestor),
                    other => panic!("expected step, got {other:?}"),
                }
            }
            other => panic!("expected step, got {other:?}"),
        }
    }

    #[test]
    fn parses_attribute_abbreviation() {
        let e = parse("$i/@id").unwrap();
        match e {
            Expr::Step { axis, test, .. } => {
                assert_eq!(axis, Axis::Attribute);
                assert_eq!(test, NodeTest::name("id"));
            }
            other => panic!("expected attribute step, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("for $x in").is_err());
        assert!(parse("doc(42)").is_err());
        assert!(parse("$x/unknown::y").is_err());
        assert!(parse("if ($x then 1 else 2").is_err());
        assert!(parse("$x [").is_err());
    }

    #[test]
    fn keyword_names_usable_as_element_names() {
        // `item` and `name` are ordinary element names even though they look
        // like common identifiers.
        let e = parse("$a/item/name").unwrap();
        match e {
            Expr::Step { test, .. } => assert_eq!(test, NodeTest::name("name")),
            other => panic!("expected step, got {other:?}"),
        }
    }

    #[test]
    fn data_call_is_transparent() {
        let e = parse("data($x/@id) = \"person0\"").unwrap();
        assert!(matches!(e, Expr::Compare { .. }));
    }

    #[test]
    fn multiple_for_bindings_nest() {
        let e = parse("for $a in doc(\"d\")/a, $b in doc(\"d\")/b return $b").unwrap();
        match e {
            Expr::For { var, body, .. } => {
                assert_eq!(var, "a");
                assert!(matches!(*body, Expr::For { ref var, .. } if var == "b"));
            }
            other => panic!("expected nested for, got {other:?}"),
        }
    }
}
